//! Declarative fault plans and their compilation into timed operations.
//!
//! A [`FaultPlan`] is data: a list of faults with virtual start times and
//! durations. [`FaultPlan::compile`] lowers it into a sorted sequence of
//! primitive [`Op`]s (apply + revert) that the harness interleaves with
//! the simulator's event loop. Keeping plans declarative makes them
//! hashable, printable on failure, and shrinkable by the minimizer.

use stabilizer_netsim::SimDuration;
use std::fmt;

/// One fault category. Durations are relative to the fault's start.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Cut every link between `side` and its complement (both
    /// directions); heal after `heal_after`.
    Partition {
        /// One side of the cut (non-empty, proper subset).
        side: Vec<usize>,
        /// Time until the partition heals.
        heal_after: SimDuration,
    },
    /// Independent per-message loss on the directed link `from -> to`
    /// only — the reverse direction stays clean (asymmetric loss).
    AsymmetricLoss {
        /// Sender side of the lossy direction.
        from: usize,
        /// Receiver side.
        to: usize,
        /// Loss probability in `[0, 1]`.
        probability: f64,
        /// Time until the loss clears.
        clear_after: SimDuration,
    },
    /// Collapse a node's egress NIC to a trickle, then restore it.
    BandwidthCollapse {
        /// The throttled node.
        node: usize,
        /// Collapsed rate in bytes/second.
        bytes_per_sec: f64,
        /// Time until the NIC recovers.
        restore_after: SimDuration,
    },
    /// Crash a node (snapshot its control plane, cut its links) and
    /// restart it from the snapshot after `down_for`.
    CrashRestart {
        /// The crashing node.
        node: usize,
        /// Downtime before the restart.
        down_for: SimDuration,
    },
    /// Add extra one-way delay on the directed link `from -> to` — a
    /// skewed control plane or a flapped route; clears after
    /// `clear_after`.
    DelaySkew {
        /// Sender side of the skewed direction.
        from: usize,
        /// Receiver side.
        to: usize,
        /// Extra one-way delay.
        extra: SimDuration,
        /// Time until the skew clears.
        clear_after: SimDuration,
    },
    /// Membership change: `node` is absent from the cluster at boot and
    /// joins live at the event time — it boots *fresh* (no snapshot, no
    /// history), receives the cluster configuration, and catches up on
    /// every stream via §III-E state transfer. At most one join per
    /// node, and the node cannot crash before it has joined.
    Join {
        /// The late-joining node.
        node: usize,
    },
    /// Scale one node's timer cadence: every protocol timer (ACK flush,
    /// heartbeat, failure detector, retransmit, §III-E transfer pacing)
    /// fires at `factor ×` its configured interval. `factor < 1` is a
    /// fast local clock (timers fire early); `factor > 1` is a slow one
    /// (timers fire late, heartbeats thin out, retransmits lag). Restores
    /// the nominal cadence after `clear_after`.
    ClockSkew {
        /// The node whose clock is skewed.
        node: usize,
        /// Multiplier applied to every timer interval (must be positive
        /// and finite).
        factor: f64,
        /// Time until the skew clears.
        clear_after: SimDuration,
    },
    /// Duplicate and reorder control-plane frames on the directed link
    /// `from -> to`: each frame is independently duplicated with
    /// `dup_probability` and swapped past its successor with
    /// `reorder_probability` (breaking the link's FIFO property). The
    /// protocol must tolerate both — duplicates are idempotent and the
    /// receive buffer re-sequences — so no invariant may trip. Clears
    /// after `clear_after`.
    DupReorder {
        /// Sender side of the corrupted direction.
        from: usize,
        /// Receiver side.
        to: usize,
        /// Per-frame duplication probability in `[0, 1]`.
        dup_probability: f64,
        /// Per-frame reorder (swap-with-next) probability in `[0, 1]`.
        reorder_probability: f64,
        /// Time until the link behaves again.
        clear_after: SimDuration,
    },
    /// A correlated failure: every node in `nodes` crashes within one
    /// window — the k-th crash lands at `at + k·spread` — and the
    /// restarts are staggered (the k-th node comes back after `down_for
    /// + k·stagger`). At least one node must survive.
    CorrelatedCrash {
        /// The crashing nodes (distinct, a proper subset).
        nodes: Vec<usize>,
        /// Gap between consecutive crashes.
        spread: SimDuration,
        /// Base downtime of each node.
        down_for: SimDuration,
        /// Extra downtime added per position in the crash order.
        stagger: SimDuration,
    },
    /// A Byzantine adversary: at the event time, `node` forges one ACK
    /// batch to every peer claiming its RECEIVED columns run `ahead`
    /// sequence numbers beyond what it has actually recorded — without
    /// touching its own recorder. This is the PR-2 mutation test promoted
    /// into the fault vocabulary: the invariant checker is *expected* to
    /// flag `belief-beyond-truth` at a receiving peer (see
    /// [`FaultPlan::expected_violation`]).
    ByzantineAck {
        /// The forging node.
        node: usize,
        /// How far beyond its true RECEIVED state the forged columns
        /// claim (must be positive).
        ahead: u64,
    },
}

/// A fault with its virtual start time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Start time, relative to the run's start.
    pub at: SimDuration,
    /// The fault.
    pub fault: Fault,
}

/// A declarative schedule of faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults (any order; compilation sorts).
    pub events: Vec<FaultEvent>,
}

/// A plan that cannot be executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(pub String);

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// A primitive operation the harness applies to the simulator at a
/// specific virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Set the given directed links up or down.
    SetLinks {
        /// Directed `(from, to)` pairs.
        pairs: Vec<(usize, usize)>,
        /// Up (`true`) or down (`false`).
        up: bool,
    },
    /// Set loss probability on one directed link.
    SetLoss {
        /// Sender side.
        from: usize,
        /// Receiver side.
        to: usize,
        /// Probability in `[0, 1]` (0 clears).
        probability: f64,
    },
    /// Set a node's egress rate (restore passes a huge rate).
    SetEgress {
        /// The node.
        node: usize,
        /// Bytes per second.
        bytes_per_sec: f64,
    },
    /// Set extra one-way delay on one directed link (ZERO clears).
    SetDelay {
        /// Sender side.
        from: usize,
        /// Receiver side.
        to: usize,
        /// The extra delay.
        extra: SimDuration,
    },
    /// Snapshot and cut off a node.
    Crash {
        /// The crashing node.
        node: usize,
    },
    /// Restore the node from its crash snapshot and reconnect it.
    Restart {
        /// The restarting node.
        node: usize,
    },
    /// Boot a fresh (history-less) node into the running cluster and
    /// start §III-E catch-up.
    Join {
        /// The joining node.
        node: usize,
    },
    /// Scale a node's timer cadence (1.0 restores nominal).
    SetTimerScale {
        /// The node.
        node: usize,
        /// Interval multiplier.
        scale: f64,
    },
    /// Set duplicate/reorder probabilities on one directed link
    /// (0.0/0.0 clears).
    SetDupReorder {
        /// Sender side.
        from: usize,
        /// Receiver side.
        to: usize,
        /// Per-frame duplication probability.
        dup: f64,
        /// Per-frame swap-with-next probability.
        reorder: f64,
    },
    /// Make `node` forge one ACK batch to every peer, claiming RECEIVED
    /// columns `ahead` beyond its recorder's truth.
    ForgeAck {
        /// The forging node.
        node: usize,
        /// Forged lead over the true columns.
        ahead: u64,
    },
}

/// An [`Op`] scheduled at a virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedOp {
    /// When to apply, relative to the run's start.
    pub at: SimDuration,
    /// What to apply.
    pub op: Op,
}

/// The egress rate used to "restore" a collapsed NIC (effectively
/// unlimited; the simulator has no explicit un-limit knob).
pub const EGRESS_RESTORED: f64 = 1e12;

fn cut_pairs(side: &[usize], n: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for &a in side {
        for b in 0..n {
            if !side.contains(&b) {
                pairs.push((a, b));
                pairs.push((b, a));
            }
        }
    }
    pairs
}

fn node_pairs(node: usize, n: usize) -> Vec<(usize, usize)> {
    (0..n)
        .filter(|&x| x != node)
        .flat_map(|x| [(node, x), (x, node)])
        .collect()
}

impl FaultPlan {
    /// Check the plan against a cluster of `n` nodes.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found: out-of-range nodes,
    /// bad probabilities, degenerate partitions, overlapping crash
    /// windows on the same node (a node cannot crash while down),
    /// duplicate joins, or a crash scheduled before its node joins.
    pub fn validate(&self, n: usize) -> Result<(), PlanError> {
        let mut crash_windows: Vec<(usize, SimDuration, SimDuration)> = Vec::new();
        let mut joins: Vec<(usize, SimDuration)> = Vec::new();
        for (i, ev) in self.events.iter().enumerate() {
            let bad = |msg: String| Err(PlanError(format!("event {i}: {msg}")));
            match &ev.fault {
                Fault::Partition {
                    side,
                    heal_after: _,
                } => {
                    if side.is_empty() || side.len() >= n {
                        return bad(format!(
                            "partition side must be a non-empty proper subset, got {side:?}"
                        ));
                    }
                    if side.iter().any(|&x| x >= n) {
                        return bad(format!("partition side {side:?} out of range (n={n})"));
                    }
                }
                Fault::AsymmetricLoss {
                    from,
                    to,
                    probability,
                    ..
                } => {
                    if *from >= n || *to >= n || from == to {
                        return bad(format!("bad loss link {from}->{to} (n={n})"));
                    }
                    if !(0.0..=1.0).contains(probability) {
                        return bad(format!("loss probability {probability} outside [0,1]"));
                    }
                }
                Fault::BandwidthCollapse {
                    node,
                    bytes_per_sec,
                    ..
                } => {
                    if *node >= n {
                        return bad(format!("node {node} out of range (n={n})"));
                    }
                    if *bytes_per_sec <= 0.0 {
                        return bad(format!("collapse rate {bytes_per_sec} must be positive"));
                    }
                }
                Fault::CrashRestart { node, down_for } => {
                    if *node >= n {
                        return bad(format!("node {node} out of range (n={n})"));
                    }
                    if *down_for == SimDuration::ZERO {
                        return bad("crash downtime must be positive".into());
                    }
                    let (start, end) = (ev.at, ev.at + *down_for);
                    for &(other, s, e) in &crash_windows {
                        if other == *node && start < e && s < end {
                            return bad(format!(
                                "crash windows overlap on node {node} ([{s}, {e}] vs [{start}, {end}])"
                            ));
                        }
                    }
                    crash_windows.push((*node, start, end));
                }
                Fault::DelaySkew { from, to, .. } => {
                    if *from >= n || *to >= n || from == to {
                        return bad(format!("bad skew link {from}->{to} (n={n})"));
                    }
                }
                Fault::Join { node } => {
                    if *node >= n {
                        return bad(format!("node {node} out of range (n={n})"));
                    }
                    if joins.iter().any(|&(j, _)| j == *node) {
                        return bad(format!("node {node} joins twice"));
                    }
                    joins.push((*node, ev.at));
                }
                Fault::ClockSkew { node, factor, .. } => {
                    if *node >= n {
                        return bad(format!("node {node} out of range (n={n})"));
                    }
                    if !factor.is_finite() || *factor <= 0.0 {
                        return bad(format!("clock skew factor {factor} must be positive"));
                    }
                }
                Fault::DupReorder {
                    from,
                    to,
                    dup_probability,
                    reorder_probability,
                    ..
                } => {
                    if *from >= n || *to >= n || from == to {
                        return bad(format!("bad dup/reorder link {from}->{to} (n={n})"));
                    }
                    for p in [dup_probability, reorder_probability] {
                        if !(0.0..=1.0).contains(p) {
                            return bad(format!("dup/reorder probability {p} outside [0,1]"));
                        }
                    }
                }
                Fault::CorrelatedCrash {
                    nodes,
                    spread,
                    down_for,
                    stagger,
                } => {
                    if nodes.is_empty() || nodes.len() >= n {
                        return bad(format!(
                            "correlated crash set must be a non-empty proper subset, got {nodes:?}"
                        ));
                    }
                    if nodes.iter().any(|&x| x >= n) {
                        return bad(format!(
                            "correlated crash set {nodes:?} out of range (n={n})"
                        ));
                    }
                    for (a, &x) in nodes.iter().enumerate() {
                        if nodes[..a].contains(&x) {
                            return bad(format!("node {x} appears twice in the crash set"));
                        }
                    }
                    if *down_for == SimDuration::ZERO {
                        return bad("correlated crash downtime must be positive".into());
                    }
                    for (k, &node) in nodes.iter().enumerate() {
                        let start = ev.at + spread.saturating_mul(k as u64);
                        let end = start + *down_for + stagger.saturating_mul(k as u64);
                        for &(other, s, e) in &crash_windows {
                            if other == node && start < e && s < end {
                                return bad(format!(
                                    "crash windows overlap on node {node} ([{s}, {e}] vs [{start}, {end}])"
                                ));
                            }
                        }
                        crash_windows.push((node, start, end));
                    }
                }
                Fault::ByzantineAck { node, ahead } => {
                    if *node >= n {
                        return bad(format!("node {node} out of range (n={n})"));
                    }
                    if *ahead == 0 {
                        return bad("forged ack lead must be positive".into());
                    }
                }
            }
        }
        // A node that joins late cannot crash before the join: its crash
        // windows must start strictly after the join time.
        for &(node, join_at) in &joins {
            for &(other, s, _) in &crash_windows {
                if other == node && s <= join_at {
                    return Err(PlanError(format!(
                        "node {node} has a crash window starting at {s} but only joins at {join_at}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The nodes this plan boots *absent* (they enter via
    /// [`Fault::Join`]), with their join times. Harnesses use this to
    /// keep those nodes offline from the start of the run.
    pub fn join_nodes(&self) -> Vec<(usize, SimDuration)> {
        self.events
            .iter()
            .filter_map(|ev| match ev.fault {
                Fault::Join { node } => Some((node, ev.at)),
                _ => None,
            })
            .collect()
    }

    /// Lower into primitive timed operations, sorted by time (stable on
    /// ties, so compilation is deterministic).
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::validate`] failures.
    pub fn compile(&self, n: usize) -> Result<Vec<TimedOp>, PlanError> {
        self.validate(n)?;
        let mut ops = Vec::new();
        for ev in &self.events {
            match &ev.fault {
                Fault::Partition { side, heal_after } => {
                    let pairs = cut_pairs(side, n);
                    ops.push(TimedOp {
                        at: ev.at,
                        op: Op::SetLinks {
                            pairs: pairs.clone(),
                            up: false,
                        },
                    });
                    ops.push(TimedOp {
                        at: ev.at + *heal_after,
                        op: Op::SetLinks { pairs, up: true },
                    });
                }
                Fault::AsymmetricLoss {
                    from,
                    to,
                    probability,
                    clear_after,
                } => {
                    ops.push(TimedOp {
                        at: ev.at,
                        op: Op::SetLoss {
                            from: *from,
                            to: *to,
                            probability: *probability,
                        },
                    });
                    ops.push(TimedOp {
                        at: ev.at + *clear_after,
                        op: Op::SetLoss {
                            from: *from,
                            to: *to,
                            probability: 0.0,
                        },
                    });
                }
                Fault::BandwidthCollapse {
                    node,
                    bytes_per_sec,
                    restore_after,
                } => {
                    ops.push(TimedOp {
                        at: ev.at,
                        op: Op::SetEgress {
                            node: *node,
                            bytes_per_sec: *bytes_per_sec,
                        },
                    });
                    ops.push(TimedOp {
                        at: ev.at + *restore_after,
                        op: Op::SetEgress {
                            node: *node,
                            bytes_per_sec: EGRESS_RESTORED,
                        },
                    });
                }
                Fault::CrashRestart { node, down_for } => {
                    ops.push(TimedOp {
                        at: ev.at,
                        op: Op::Crash { node: *node },
                    });
                    ops.push(TimedOp {
                        at: ev.at + *down_for,
                        op: Op::Restart { node: *node },
                    });
                }
                Fault::DelaySkew {
                    from,
                    to,
                    extra,
                    clear_after,
                } => {
                    ops.push(TimedOp {
                        at: ev.at,
                        op: Op::SetDelay {
                            from: *from,
                            to: *to,
                            extra: *extra,
                        },
                    });
                    ops.push(TimedOp {
                        at: ev.at + *clear_after,
                        op: Op::SetDelay {
                            from: *from,
                            to: *to,
                            extra: SimDuration::ZERO,
                        },
                    });
                }
                Fault::Join { node } => {
                    ops.push(TimedOp {
                        at: ev.at,
                        op: Op::Join { node: *node },
                    });
                }
                Fault::ClockSkew {
                    node,
                    factor,
                    clear_after,
                } => {
                    ops.push(TimedOp {
                        at: ev.at,
                        op: Op::SetTimerScale {
                            node: *node,
                            scale: *factor,
                        },
                    });
                    ops.push(TimedOp {
                        at: ev.at + *clear_after,
                        op: Op::SetTimerScale {
                            node: *node,
                            scale: 1.0,
                        },
                    });
                }
                Fault::DupReorder {
                    from,
                    to,
                    dup_probability,
                    reorder_probability,
                    clear_after,
                } => {
                    ops.push(TimedOp {
                        at: ev.at,
                        op: Op::SetDupReorder {
                            from: *from,
                            to: *to,
                            dup: *dup_probability,
                            reorder: *reorder_probability,
                        },
                    });
                    ops.push(TimedOp {
                        at: ev.at + *clear_after,
                        op: Op::SetDupReorder {
                            from: *from,
                            to: *to,
                            dup: 0.0,
                            reorder: 0.0,
                        },
                    });
                }
                Fault::CorrelatedCrash {
                    nodes,
                    spread,
                    down_for,
                    stagger,
                } => {
                    // Lowers entirely onto the existing crash/restart
                    // primitives, so both harnesses execute it unchanged.
                    for (k, &node) in nodes.iter().enumerate() {
                        let start = ev.at + spread.saturating_mul(k as u64);
                        ops.push(TimedOp {
                            at: start,
                            op: Op::Crash { node },
                        });
                        ops.push(TimedOp {
                            at: start + *down_for + stagger.saturating_mul(k as u64),
                            op: Op::Restart { node },
                        });
                    }
                }
                Fault::ByzantineAck { node, ahead } => {
                    ops.push(TimedOp {
                        at: ev.at,
                        op: Op::ForgeAck {
                            node: *node,
                            ahead: *ahead,
                        },
                    });
                }
            }
        }
        ops.sort_by_key(|op| op.at);
        Ok(ops)
    }

    /// The invariant the checker is *expected* to flag for this plan, if
    /// any. Benign plans return `None`; a plan containing a
    /// [`Fault::ByzantineAck`] adversary returns
    /// `Some("belief-beyond-truth")` — a run of such a plan that finishes
    /// *clean* means the checker lost its teeth.
    pub fn expected_violation(&self) -> Option<&'static str> {
        self.events
            .iter()
            .any(|ev| matches!(ev.fault, Fault::ByzantineAck { .. }))
            .then_some("belief-beyond-truth")
    }

    /// Links touched by `Crash`/`Restart` ops for `node` (used by the
    /// harness; exposed for tests).
    pub fn crash_pairs(node: usize, n: usize) -> Vec<(usize, usize)> {
        node_pairs(node, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn compile_sorts_and_pairs_reverts() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    at: ms(500),
                    fault: Fault::AsymmetricLoss {
                        from: 0,
                        to: 1,
                        probability: 0.3,
                        clear_after: ms(100),
                    },
                },
                FaultEvent {
                    at: ms(100),
                    fault: Fault::Partition {
                        side: vec![0],
                        heal_after: ms(200),
                    },
                },
            ],
        };
        let ops = plan.compile(3).unwrap();
        let times: Vec<u64> = ops.iter().map(|o| o.at.as_nanos() / 1_000_000).collect();
        assert_eq!(times, vec![100, 300, 500, 600]);
        assert!(matches!(ops[0].op, Op::SetLinks { up: false, .. }));
        assert!(matches!(ops[1].op, Op::SetLinks { up: true, .. }));
    }

    #[test]
    fn partition_cuts_both_directions_across_the_cut_only() {
        let pairs = cut_pairs(&[0, 2], 4);
        assert!(pairs.contains(&(0, 1)) && pairs.contains(&(1, 0)));
        assert!(pairs.contains(&(2, 3)) && pairs.contains(&(3, 2)));
        assert!(!pairs.contains(&(0, 2)) && !pairs.contains(&(1, 3)));
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let bad = |fault| {
            FaultPlan {
                events: vec![FaultEvent { at: ms(0), fault }],
            }
            .validate(4)
        };
        assert!(bad(Fault::Partition {
            side: vec![0, 1, 2, 3],
            heal_after: ms(1)
        })
        .is_err());
        assert!(bad(Fault::AsymmetricLoss {
            from: 0,
            to: 0,
            probability: 0.5,
            clear_after: ms(1)
        })
        .is_err());
        assert!(bad(Fault::AsymmetricLoss {
            from: 0,
            to: 1,
            probability: 1.5,
            clear_after: ms(1)
        })
        .is_err());
        assert!(bad(Fault::CrashRestart {
            node: 9,
            down_for: ms(1)
        })
        .is_err());
        // Overlapping crashes on one node are rejected; disjoint pass.
        let overlap = FaultPlan {
            events: vec![
                FaultEvent {
                    at: ms(0),
                    fault: Fault::CrashRestart {
                        node: 1,
                        down_for: ms(500),
                    },
                },
                FaultEvent {
                    at: ms(300),
                    fault: Fault::CrashRestart {
                        node: 1,
                        down_for: ms(500),
                    },
                },
            ],
        };
        assert!(overlap.validate(4).is_err());
        let disjoint = FaultPlan {
            events: vec![
                FaultEvent {
                    at: ms(0),
                    fault: Fault::CrashRestart {
                        node: 1,
                        down_for: ms(200),
                    },
                },
                FaultEvent {
                    at: ms(300),
                    fault: Fault::CrashRestart {
                        node: 1,
                        down_for: ms(200),
                    },
                },
            ],
        };
        assert!(disjoint.validate(4).is_ok());
    }

    #[test]
    fn join_validation_and_compilation() {
        let join = |node, at| FaultEvent {
            at,
            fault: Fault::Join { node },
        };
        // Out of range.
        assert!(FaultPlan {
            events: vec![join(9, ms(100))]
        }
        .validate(4)
        .is_err());
        // Double join.
        assert!(FaultPlan {
            events: vec![join(1, ms(100)), join(1, ms(400))]
        }
        .validate(4)
        .is_err());
        // A crash before (or at) the join time is impossible.
        let crash_before_join = FaultPlan {
            events: vec![
                FaultEvent {
                    at: ms(50),
                    fault: Fault::CrashRestart {
                        node: 2,
                        down_for: ms(100),
                    },
                },
                join(2, ms(300)),
            ],
        };
        assert!(crash_before_join.validate(4).is_err());
        // A crash after the join is fine, and compiles to Join + the
        // crash pair, in time order.
        let ok = FaultPlan {
            events: vec![
                join(2, ms(100)),
                FaultEvent {
                    at: ms(400),
                    fault: Fault::CrashRestart {
                        node: 2,
                        down_for: ms(100),
                    },
                },
            ],
        };
        assert_eq!(ok.join_nodes(), vec![(2, ms(100))]);
        let ops = ok.compile(4).unwrap();
        assert!(matches!(ops[0].op, Op::Join { node: 2 }));
        assert!(matches!(ops[1].op, Op::Crash { node: 2 }));
        assert!(matches!(ops[2].op, Op::Restart { node: 2 }));
    }

    #[test]
    fn clock_skew_compiles_to_scale_and_restore() {
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at: ms(100),
                fault: Fault::ClockSkew {
                    node: 1,
                    factor: 3.0,
                    clear_after: ms(400),
                },
            }],
        };
        let ops = plan.compile(3).unwrap();
        assert_eq!(ops.len(), 2);
        assert!(matches!(
            ops[0].op,
            Op::SetTimerScale { node: 1, scale } if scale == 3.0
        ));
        assert!(matches!(
            ops[1].op,
            Op::SetTimerScale { node: 1, scale } if scale == 1.0
        ));
        assert_eq!(ops[1].at, ms(500));
        // Non-positive and non-finite factors are rejected.
        for factor in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let bad = FaultPlan {
                events: vec![FaultEvent {
                    at: ms(0),
                    fault: Fault::ClockSkew {
                        node: 0,
                        factor,
                        clear_after: ms(1),
                    },
                }],
            };
            assert!(bad.validate(3).is_err(), "factor {factor} must be rejected");
        }
    }

    #[test]
    fn dup_reorder_compiles_to_set_and_clear() {
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at: ms(50),
                fault: Fault::DupReorder {
                    from: 0,
                    to: 2,
                    dup_probability: 0.2,
                    reorder_probability: 0.3,
                    clear_after: ms(200),
                },
            }],
        };
        let ops = plan.compile(3).unwrap();
        assert!(matches!(
            ops[0].op,
            Op::SetDupReorder { from: 0, to: 2, dup, reorder } if dup == 0.2 && reorder == 0.3
        ));
        assert!(matches!(
            ops[1].op,
            Op::SetDupReorder { from: 0, to: 2, dup, reorder } if dup == 0.0 && reorder == 0.0
        ));
        let self_link = FaultPlan {
            events: vec![FaultEvent {
                at: ms(0),
                fault: Fault::DupReorder {
                    from: 1,
                    to: 1,
                    dup_probability: 0.1,
                    reorder_probability: 0.1,
                    clear_after: ms(1),
                },
            }],
        };
        assert!(self_link.validate(3).is_err());
    }

    #[test]
    fn correlated_crash_staggers_and_respects_windows() {
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at: ms(100),
                fault: Fault::CorrelatedCrash {
                    nodes: vec![1, 3],
                    spread: ms(20),
                    down_for: ms(200),
                    stagger: ms(50),
                },
            }],
        };
        let ops = plan.compile(5).unwrap();
        let crash_times: Vec<_> = ops
            .iter()
            .filter_map(|o| match o.op {
                Op::Crash { node } => Some((node, o.at)),
                _ => None,
            })
            .collect();
        let restart_times: Vec<_> = ops
            .iter()
            .filter_map(|o| match o.op {
                Op::Restart { node } => Some((node, o.at)),
                _ => None,
            })
            .collect();
        assert_eq!(crash_times, vec![(1, ms(100)), (3, ms(120))]);
        assert_eq!(restart_times, vec![(1, ms(300)), (3, ms(370))]);
        // All nodes crashing at once leaves no survivor: rejected.
        let total = FaultPlan {
            events: vec![FaultEvent {
                at: ms(0),
                fault: Fault::CorrelatedCrash {
                    nodes: vec![0, 1, 2],
                    spread: ms(10),
                    down_for: ms(100),
                    stagger: ms(0),
                },
            }],
        };
        assert!(total.validate(3).is_err());
        // Overlap with a plain CrashRestart window on a member: rejected.
        let overlap = FaultPlan {
            events: vec![
                FaultEvent {
                    at: ms(0),
                    fault: Fault::CrashRestart {
                        node: 1,
                        down_for: ms(500),
                    },
                },
                FaultEvent {
                    at: ms(100),
                    fault: Fault::CorrelatedCrash {
                        nodes: vec![1, 2],
                        spread: ms(10),
                        down_for: ms(50),
                        stagger: ms(0),
                    },
                },
            ],
        };
        assert!(overlap.validate(4).is_err());
        // Duplicate member: rejected.
        let dup = FaultPlan {
            events: vec![FaultEvent {
                at: ms(0),
                fault: Fault::CorrelatedCrash {
                    nodes: vec![1, 1],
                    spread: ms(10),
                    down_for: ms(50),
                    stagger: ms(0),
                },
            }],
        };
        assert!(dup.validate(4).is_err());
    }

    #[test]
    fn byzantine_ack_is_one_shot_and_expected_to_trip() {
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at: ms(150),
                fault: Fault::ByzantineAck { node: 2, ahead: 40 },
            }],
        };
        assert_eq!(plan.expected_violation(), Some("belief-beyond-truth"));
        let ops = plan.compile(3).unwrap();
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0].op, Op::ForgeAck { node: 2, ahead: 40 }));
        // A zero lead forges nothing: rejected.
        let zero = FaultPlan {
            events: vec![FaultEvent {
                at: ms(0),
                fault: Fault::ByzantineAck { node: 0, ahead: 0 },
            }],
        };
        assert!(zero.validate(3).is_err());
        // Benign plans expect no violation.
        assert_eq!(FaultPlan::default().expected_violation(), None);
    }
}
