//! Declarative fault plans and their compilation into timed operations.
//!
//! A [`FaultPlan`] is data: a list of faults with virtual start times and
//! durations. [`FaultPlan::compile`] lowers it into a sorted sequence of
//! primitive [`Op`]s (apply + revert) that the harness interleaves with
//! the simulator's event loop. Keeping plans declarative makes them
//! hashable, printable on failure, and shrinkable by the minimizer.

use stabilizer_netsim::SimDuration;
use std::fmt;

/// One fault category. Durations are relative to the fault's start.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Cut every link between `side` and its complement (both
    /// directions); heal after `heal_after`.
    Partition {
        /// One side of the cut (non-empty, proper subset).
        side: Vec<usize>,
        /// Time until the partition heals.
        heal_after: SimDuration,
    },
    /// Independent per-message loss on the directed link `from -> to`
    /// only — the reverse direction stays clean (asymmetric loss).
    AsymmetricLoss {
        /// Sender side of the lossy direction.
        from: usize,
        /// Receiver side.
        to: usize,
        /// Loss probability in `[0, 1]`.
        probability: f64,
        /// Time until the loss clears.
        clear_after: SimDuration,
    },
    /// Collapse a node's egress NIC to a trickle, then restore it.
    BandwidthCollapse {
        /// The throttled node.
        node: usize,
        /// Collapsed rate in bytes/second.
        bytes_per_sec: f64,
        /// Time until the NIC recovers.
        restore_after: SimDuration,
    },
    /// Crash a node (snapshot its control plane, cut its links) and
    /// restart it from the snapshot after `down_for`.
    CrashRestart {
        /// The crashing node.
        node: usize,
        /// Downtime before the restart.
        down_for: SimDuration,
    },
    /// Add extra one-way delay on the directed link `from -> to` — a
    /// skewed control plane or a flapped route; clears after
    /// `clear_after`.
    DelaySkew {
        /// Sender side of the skewed direction.
        from: usize,
        /// Receiver side.
        to: usize,
        /// Extra one-way delay.
        extra: SimDuration,
        /// Time until the skew clears.
        clear_after: SimDuration,
    },
    /// Membership change: `node` is absent from the cluster at boot and
    /// joins live at the event time — it boots *fresh* (no snapshot, no
    /// history), receives the cluster configuration, and catches up on
    /// every stream via §III-E state transfer. At most one join per
    /// node, and the node cannot crash before it has joined.
    Join {
        /// The late-joining node.
        node: usize,
    },
}

/// A fault with its virtual start time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Start time, relative to the run's start.
    pub at: SimDuration,
    /// The fault.
    pub fault: Fault,
}

/// A declarative schedule of faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults (any order; compilation sorts).
    pub events: Vec<FaultEvent>,
}

/// A plan that cannot be executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(pub String);

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// A primitive operation the harness applies to the simulator at a
/// specific virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Set the given directed links up or down.
    SetLinks {
        /// Directed `(from, to)` pairs.
        pairs: Vec<(usize, usize)>,
        /// Up (`true`) or down (`false`).
        up: bool,
    },
    /// Set loss probability on one directed link.
    SetLoss {
        /// Sender side.
        from: usize,
        /// Receiver side.
        to: usize,
        /// Probability in `[0, 1]` (0 clears).
        probability: f64,
    },
    /// Set a node's egress rate (restore passes a huge rate).
    SetEgress {
        /// The node.
        node: usize,
        /// Bytes per second.
        bytes_per_sec: f64,
    },
    /// Set extra one-way delay on one directed link (ZERO clears).
    SetDelay {
        /// Sender side.
        from: usize,
        /// Receiver side.
        to: usize,
        /// The extra delay.
        extra: SimDuration,
    },
    /// Snapshot and cut off a node.
    Crash {
        /// The crashing node.
        node: usize,
    },
    /// Restore the node from its crash snapshot and reconnect it.
    Restart {
        /// The restarting node.
        node: usize,
    },
    /// Boot a fresh (history-less) node into the running cluster and
    /// start §III-E catch-up.
    Join {
        /// The joining node.
        node: usize,
    },
}

/// An [`Op`] scheduled at a virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedOp {
    /// When to apply, relative to the run's start.
    pub at: SimDuration,
    /// What to apply.
    pub op: Op,
}

/// The egress rate used to "restore" a collapsed NIC (effectively
/// unlimited; the simulator has no explicit un-limit knob).
pub const EGRESS_RESTORED: f64 = 1e12;

fn cut_pairs(side: &[usize], n: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for &a in side {
        for b in 0..n {
            if !side.contains(&b) {
                pairs.push((a, b));
                pairs.push((b, a));
            }
        }
    }
    pairs
}

fn node_pairs(node: usize, n: usize) -> Vec<(usize, usize)> {
    (0..n)
        .filter(|&x| x != node)
        .flat_map(|x| [(node, x), (x, node)])
        .collect()
}

impl FaultPlan {
    /// Check the plan against a cluster of `n` nodes.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found: out-of-range nodes,
    /// bad probabilities, degenerate partitions, overlapping crash
    /// windows on the same node (a node cannot crash while down),
    /// duplicate joins, or a crash scheduled before its node joins.
    pub fn validate(&self, n: usize) -> Result<(), PlanError> {
        let mut crash_windows: Vec<(usize, SimDuration, SimDuration)> = Vec::new();
        let mut joins: Vec<(usize, SimDuration)> = Vec::new();
        for (i, ev) in self.events.iter().enumerate() {
            let bad = |msg: String| Err(PlanError(format!("event {i}: {msg}")));
            match &ev.fault {
                Fault::Partition {
                    side,
                    heal_after: _,
                } => {
                    if side.is_empty() || side.len() >= n {
                        return bad(format!(
                            "partition side must be a non-empty proper subset, got {side:?}"
                        ));
                    }
                    if side.iter().any(|&x| x >= n) {
                        return bad(format!("partition side {side:?} out of range (n={n})"));
                    }
                }
                Fault::AsymmetricLoss {
                    from,
                    to,
                    probability,
                    ..
                } => {
                    if *from >= n || *to >= n || from == to {
                        return bad(format!("bad loss link {from}->{to} (n={n})"));
                    }
                    if !(0.0..=1.0).contains(probability) {
                        return bad(format!("loss probability {probability} outside [0,1]"));
                    }
                }
                Fault::BandwidthCollapse {
                    node,
                    bytes_per_sec,
                    ..
                } => {
                    if *node >= n {
                        return bad(format!("node {node} out of range (n={n})"));
                    }
                    if *bytes_per_sec <= 0.0 {
                        return bad(format!("collapse rate {bytes_per_sec} must be positive"));
                    }
                }
                Fault::CrashRestart { node, down_for } => {
                    if *node >= n {
                        return bad(format!("node {node} out of range (n={n})"));
                    }
                    if *down_for == SimDuration::ZERO {
                        return bad("crash downtime must be positive".into());
                    }
                    let (start, end) = (ev.at, ev.at + *down_for);
                    for &(other, s, e) in &crash_windows {
                        if other == *node && start < e && s < end {
                            return bad(format!(
                                "crash windows overlap on node {node} ([{s}, {e}] vs [{start}, {end}])"
                            ));
                        }
                    }
                    crash_windows.push((*node, start, end));
                }
                Fault::DelaySkew { from, to, .. } => {
                    if *from >= n || *to >= n || from == to {
                        return bad(format!("bad skew link {from}->{to} (n={n})"));
                    }
                }
                Fault::Join { node } => {
                    if *node >= n {
                        return bad(format!("node {node} out of range (n={n})"));
                    }
                    if joins.iter().any(|&(j, _)| j == *node) {
                        return bad(format!("node {node} joins twice"));
                    }
                    joins.push((*node, ev.at));
                }
            }
        }
        // A node that joins late cannot crash before the join: its crash
        // windows must start strictly after the join time.
        for &(node, join_at) in &joins {
            for &(other, s, _) in &crash_windows {
                if other == node && s <= join_at {
                    return Err(PlanError(format!(
                        "node {node} has a crash window starting at {s} but only joins at {join_at}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The nodes this plan boots *absent* (they enter via
    /// [`Fault::Join`]), with their join times. Harnesses use this to
    /// keep those nodes offline from the start of the run.
    pub fn join_nodes(&self) -> Vec<(usize, SimDuration)> {
        self.events
            .iter()
            .filter_map(|ev| match ev.fault {
                Fault::Join { node } => Some((node, ev.at)),
                _ => None,
            })
            .collect()
    }

    /// Lower into primitive timed operations, sorted by time (stable on
    /// ties, so compilation is deterministic).
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::validate`] failures.
    pub fn compile(&self, n: usize) -> Result<Vec<TimedOp>, PlanError> {
        self.validate(n)?;
        let mut ops = Vec::new();
        for ev in &self.events {
            match &ev.fault {
                Fault::Partition { side, heal_after } => {
                    let pairs = cut_pairs(side, n);
                    ops.push(TimedOp {
                        at: ev.at,
                        op: Op::SetLinks {
                            pairs: pairs.clone(),
                            up: false,
                        },
                    });
                    ops.push(TimedOp {
                        at: ev.at + *heal_after,
                        op: Op::SetLinks { pairs, up: true },
                    });
                }
                Fault::AsymmetricLoss {
                    from,
                    to,
                    probability,
                    clear_after,
                } => {
                    ops.push(TimedOp {
                        at: ev.at,
                        op: Op::SetLoss {
                            from: *from,
                            to: *to,
                            probability: *probability,
                        },
                    });
                    ops.push(TimedOp {
                        at: ev.at + *clear_after,
                        op: Op::SetLoss {
                            from: *from,
                            to: *to,
                            probability: 0.0,
                        },
                    });
                }
                Fault::BandwidthCollapse {
                    node,
                    bytes_per_sec,
                    restore_after,
                } => {
                    ops.push(TimedOp {
                        at: ev.at,
                        op: Op::SetEgress {
                            node: *node,
                            bytes_per_sec: *bytes_per_sec,
                        },
                    });
                    ops.push(TimedOp {
                        at: ev.at + *restore_after,
                        op: Op::SetEgress {
                            node: *node,
                            bytes_per_sec: EGRESS_RESTORED,
                        },
                    });
                }
                Fault::CrashRestart { node, down_for } => {
                    ops.push(TimedOp {
                        at: ev.at,
                        op: Op::Crash { node: *node },
                    });
                    ops.push(TimedOp {
                        at: ev.at + *down_for,
                        op: Op::Restart { node: *node },
                    });
                }
                Fault::DelaySkew {
                    from,
                    to,
                    extra,
                    clear_after,
                } => {
                    ops.push(TimedOp {
                        at: ev.at,
                        op: Op::SetDelay {
                            from: *from,
                            to: *to,
                            extra: *extra,
                        },
                    });
                    ops.push(TimedOp {
                        at: ev.at + *clear_after,
                        op: Op::SetDelay {
                            from: *from,
                            to: *to,
                            extra: SimDuration::ZERO,
                        },
                    });
                }
                Fault::Join { node } => {
                    ops.push(TimedOp {
                        at: ev.at,
                        op: Op::Join { node: *node },
                    });
                }
            }
        }
        ops.sort_by_key(|op| op.at);
        Ok(ops)
    }

    /// Links touched by `Crash`/`Restart` ops for `node` (used by the
    /// harness; exposed for tests).
    pub fn crash_pairs(node: usize, n: usize) -> Vec<(usize, usize)> {
        node_pairs(node, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn compile_sorts_and_pairs_reverts() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    at: ms(500),
                    fault: Fault::AsymmetricLoss {
                        from: 0,
                        to: 1,
                        probability: 0.3,
                        clear_after: ms(100),
                    },
                },
                FaultEvent {
                    at: ms(100),
                    fault: Fault::Partition {
                        side: vec![0],
                        heal_after: ms(200),
                    },
                },
            ],
        };
        let ops = plan.compile(3).unwrap();
        let times: Vec<u64> = ops.iter().map(|o| o.at.as_nanos() / 1_000_000).collect();
        assert_eq!(times, vec![100, 300, 500, 600]);
        assert!(matches!(ops[0].op, Op::SetLinks { up: false, .. }));
        assert!(matches!(ops[1].op, Op::SetLinks { up: true, .. }));
    }

    #[test]
    fn partition_cuts_both_directions_across_the_cut_only() {
        let pairs = cut_pairs(&[0, 2], 4);
        assert!(pairs.contains(&(0, 1)) && pairs.contains(&(1, 0)));
        assert!(pairs.contains(&(2, 3)) && pairs.contains(&(3, 2)));
        assert!(!pairs.contains(&(0, 2)) && !pairs.contains(&(1, 3)));
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let bad = |fault| {
            FaultPlan {
                events: vec![FaultEvent { at: ms(0), fault }],
            }
            .validate(4)
        };
        assert!(bad(Fault::Partition {
            side: vec![0, 1, 2, 3],
            heal_after: ms(1)
        })
        .is_err());
        assert!(bad(Fault::AsymmetricLoss {
            from: 0,
            to: 0,
            probability: 0.5,
            clear_after: ms(1)
        })
        .is_err());
        assert!(bad(Fault::AsymmetricLoss {
            from: 0,
            to: 1,
            probability: 1.5,
            clear_after: ms(1)
        })
        .is_err());
        assert!(bad(Fault::CrashRestart {
            node: 9,
            down_for: ms(1)
        })
        .is_err());
        // Overlapping crashes on one node are rejected; disjoint pass.
        let overlap = FaultPlan {
            events: vec![
                FaultEvent {
                    at: ms(0),
                    fault: Fault::CrashRestart {
                        node: 1,
                        down_for: ms(500),
                    },
                },
                FaultEvent {
                    at: ms(300),
                    fault: Fault::CrashRestart {
                        node: 1,
                        down_for: ms(500),
                    },
                },
            ],
        };
        assert!(overlap.validate(4).is_err());
        let disjoint = FaultPlan {
            events: vec![
                FaultEvent {
                    at: ms(0),
                    fault: Fault::CrashRestart {
                        node: 1,
                        down_for: ms(200),
                    },
                },
                FaultEvent {
                    at: ms(300),
                    fault: Fault::CrashRestart {
                        node: 1,
                        down_for: ms(200),
                    },
                },
            ],
        };
        assert!(disjoint.validate(4).is_ok());
    }

    #[test]
    fn join_validation_and_compilation() {
        let join = |node, at| FaultEvent {
            at,
            fault: Fault::Join { node },
        };
        // Out of range.
        assert!(FaultPlan {
            events: vec![join(9, ms(100))]
        }
        .validate(4)
        .is_err());
        // Double join.
        assert!(FaultPlan {
            events: vec![join(1, ms(100)), join(1, ms(400))]
        }
        .validate(4)
        .is_err());
        // A crash before (or at) the join time is impossible.
        let crash_before_join = FaultPlan {
            events: vec![
                FaultEvent {
                    at: ms(50),
                    fault: Fault::CrashRestart {
                        node: 2,
                        down_for: ms(100),
                    },
                },
                join(2, ms(300)),
            ],
        };
        assert!(crash_before_join.validate(4).is_err());
        // A crash after the join is fine, and compiles to Join + the
        // crash pair, in time order.
        let ok = FaultPlan {
            events: vec![
                join(2, ms(100)),
                FaultEvent {
                    at: ms(400),
                    fault: Fault::CrashRestart {
                        node: 2,
                        down_for: ms(100),
                    },
                },
            ],
        };
        assert_eq!(ok.join_nodes(), vec![(2, ms(100))]);
        let ops = ok.compile(4).unwrap();
        assert!(matches!(ops[0].op, Op::Join { node: 2 }));
        assert!(matches!(ops[1].op, Op::Crash { node: 2 }));
        assert!(matches!(ops[2].op, Op::Restart { node: 2 }));
    }
}
