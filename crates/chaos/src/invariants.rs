//! Cross-crate invariant checking: a shadow-state checker that runs
//! after every simulator step and verifies the safety properties the
//! paper's design rests on, independently of any particular predicate:
//!
//! 1. **ACK monotonicity** — every `(stream, node, type)` cell of every
//!    node's recorder only ever grows (§III-A's overwrite semantics).
//! 2. **Belief ≤ truth** — node `n`'s view of how far node `m` has
//!    acknowledged a stream never exceeds `m`'s own recorder cell.
//!    Acks only propagate *from* the acking node, so a remote view can
//!    never run ahead; this holds under any predicate, any partition,
//!    and across exclusion/reinstatement.
//! 3. **Delivered ⇒ received** — a node's own DELIVERED cell never
//!    exceeds its RECEIVED cell, and never exceeds the high-water mark
//!    of deliveries it actually up-called.
//! 4. **Delivery is an origin prefix** — per `(node, origin)`,
//!    deliveries are consecutive: `1, 2, 3, …` with no gap or repeat
//!    (within one incarnation; a restart resumes from its snapshot).
//! 5. **Frontier never regresses within a generation** — predicate
//!    changes, auto-exclusion, and restore bump the generation; inside
//!    one generation the frontier is monotone, and never exceeds what
//!    the origin actually published.
//! 6. **Suspicion/recovery consistency** — recoveries pair with prior
//!    suspicions, nodes never suspect themselves, and the logs agree
//!    with `StabilizerNode::is_suspected`.
//! 7. **Placement isolation** (only with
//!    [`InvariantChecker::with_placement`]) — a node never delivers a
//!    stream it does not replicate, and never holds a non-zero ACK cell
//!    for a `(stream, node)` pair outside the stream's replica set. The
//!    prefix/FIFO and belief checks are automatically scoped to the
//!    replica set because any out-of-set activity already trips this
//!    invariant.

use stabilizer_core::sim_driver::{AppHooks, SimNode};
use stabilizer_core::{DirtyCell, FrontierUpdate, PlacementMap, StabilizerNode};
use stabilizer_dsl::{AckTypeId, NodeId, SeqNo, DELIVERED, RECEIVED};
use stabilizer_netsim::SimTime;
use std::collections::HashMap;
use std::sync::Arc;

/// Default cadence of the periodic full-table rescan that backstops the
/// incremental dirty-cell path (see
/// [`InvariantChecker::with_rescan_every`]).
pub const DEFAULT_RESCAN_EVERY: u64 = 16;

/// A read-only view of one node's observable state, assembled by
/// [`ChaosObservable::chaos_view`]. The checker consumes one view per
/// node per step.
pub struct NodeView<'a> {
    /// The protocol state machine.
    pub node: &'a StabilizerNode,
    /// Timestamped frontier log.
    pub frontier_log: &'a [(SimTime, FrontierUpdate)],
    /// Timestamped delivery log.
    pub delivery_log: &'a [(SimTime, NodeId, SeqNo, usize)],
    /// Suspicion log.
    pub suspected_log: &'a [(SimTime, NodeId)],
    /// Recovery log.
    pub recovered_log: &'a [(SimTime, NodeId)],
    /// Out-of-band stream fast-forwards from §III-E state transfer:
    /// `(time, stream, seq)` — delivery of `stream` resumes *after*
    /// `seq`. The prefix check merges this log with the delivery log by
    /// timestamp (catch-ups first on ties: the fast-forward happens
    /// before the deliveries it releases).
    pub catchup_log: &'a [(SimTime, NodeId, SeqNo)],
    /// Whether the delivery log is populated.
    pub records_deliveries: bool,
    /// Recorder cells written since the previous check, drained from the
    /// node's dirty-cell journal (see
    /// [`StabilizerNode::take_ack_journal`]). `Some(cells)` makes the
    /// ACK checks incremental — only those cells are examined, so the
    /// journal must cover **every** write since the last check (or
    /// [`InvariantChecker::note_restart`] resync). `None` falls back to
    /// a full `n² · types` rescan.
    pub dirty: Option<Vec<DirtyCell>>,
}

/// Anything the checker can observe. Implemented for [`SimNode`] so the
/// kvstore/pubsub/quorum harnesses (which embed or expose `SimNode`s)
/// reuse the checker unchanged.
pub trait ChaosObservable {
    /// Assemble the checker's view of this node.
    fn chaos_view(&self) -> NodeView<'_>;
}

impl<H: AppHooks> ChaosObservable for SimNode<H> {
    fn chaos_view(&self) -> NodeView<'_> {
        NodeView {
            node: self.inner(),
            frontier_log: &self.frontier_log,
            delivery_log: &self.delivery_log,
            suspected_log: &self.suspected_log,
            recovered_log: &self.recovered_log,
            catchup_log: &self.catchup_log,
            records_deliveries: self.records_deliveries(),
            dirty: None,
        }
    }
}

/// A detected invariant violation: which property broke, where, and a
/// human-readable account with the offending values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Virtual time of the check that tripped.
    pub at: SimTime,
    /// The node whose state violated the property.
    pub node: u16,
    /// Short property name (stable, used by tests).
    pub property: &'static str,
    /// Full account.
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:?}] node {}: {} violated: {}",
            self.at, self.node, self.property, self.detail
        )
    }
}

/// The shadow-state invariant checker. Feed it every node's view after
/// every simulator step; it incrementally consumes the logs (cursors)
/// and the recorder tables: when a view carries a drained dirty-cell
/// journal ([`NodeView::dirty`]) only the written cells are examined,
/// otherwise it falls back to rescanning the dense table
/// (`n² · types` cells/node).
pub struct InvariantChecker {
    n: usize,
    types: usize,
    /// Shadow copy of each node's recorder table, flat
    /// `[node][(stream*n + peer)*types + ty]`.
    shadow_acks: Vec<Vec<SeqNo>>,
    /// Per-node cursor into `frontier_log`.
    frontier_cursor: Vec<usize>,
    /// Last `(generation, seq)` seen per `(node, stream, key)`.
    frontier_shadow: HashMap<(u16, u16, String), (u32, SeqNo)>,
    /// Per-node cursor into `delivery_log`.
    delivery_cursor: Vec<usize>,
    /// Per-node cursor into `catchup_log`.
    catchup_cursor: Vec<usize>,
    /// Last delivered seq per `(node, origin)` in the current
    /// incarnation (prefix check).
    last_delivered: HashMap<(u16, u16), SeqNo>,
    /// All-time high-water mark of deliveries per `(node, origin)`
    /// (survives restarts; bounds the DELIVERED self-cell).
    delivered_high: HashMap<(u16, u16), SeqNo>,
    /// Per-node cursors into the suspicion/recovery logs.
    suspected_cursor: Vec<usize>,
    recovered_cursor: Vec<usize>,
    /// Shadow suspicion sets: `suspects[n][p]`.
    suspects: Vec<Vec<bool>>,
    /// Stream placement, when partial replication is in play
    /// (invariant 7); `None` checks nothing extra (full replication).
    placement: Option<Arc<PlacementMap>>,
    /// Number of [`InvariantChecker::check`] calls so far.
    checks: u64,
    /// Every `rescan_every`-th check ignores the dirty-cell journals and
    /// rescans every node's full recorder table. The incremental path is
    /// only sound if **every** write is journaled; this fallback bounds
    /// the damage of a journal hole (a forged or buggy write that
    /// bypasses the journal) to at most `rescan_every - 1` checks before
    /// it is examined.
    rescan_every: u64,
}

impl InvariantChecker {
    /// Checker for an `n`-node cluster tracking `types` ACK types.
    pub fn new(n: usize, types: usize) -> Self {
        InvariantChecker {
            n,
            types,
            shadow_acks: vec![vec![0; n * n * types]; n],
            frontier_cursor: vec![0; n],
            frontier_shadow: HashMap::new(),
            delivery_cursor: vec![0; n],
            catchup_cursor: vec![0; n],
            last_delivered: HashMap::new(),
            delivered_high: HashMap::new(),
            suspected_cursor: vec![0; n],
            recovered_cursor: vec![0; n],
            suspects: vec![vec![false; n]; n],
            placement: None,
            checks: 0,
            rescan_every: DEFAULT_RESCAN_EVERY,
        }
    }

    /// Make the checker placement-aware (invariant 7): deliveries and
    /// non-zero ACK cells outside a stream's replica set are violations
    /// in their own right. Full-replication maps are accepted and check
    /// nothing extra.
    #[must_use]
    pub fn with_placement(mut self, placement: Arc<PlacementMap>) -> Self {
        assert_eq!(
            placement.num_nodes(),
            self.n,
            "placement map is for a different cluster size"
        );
        self.placement = if placement.is_full_replication() {
            None
        } else {
            Some(placement)
        };
        self
    }

    /// Override the full-rescan cadence (default
    /// [`DEFAULT_RESCAN_EVERY`]): every `k`-th check bypasses the
    /// dirty-cell journals and rescans every recorder table, bounding
    /// how long an unjournaled write can hide. Smaller `k` catches
    /// journal holes sooner at higher cost.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0.
    #[must_use]
    pub fn with_rescan_every(mut self, k: u64) -> Self {
        assert!(k > 0, "rescan cadence must be at least 1");
        self.rescan_every = k;
        self
    }

    /// Cluster size.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Tell the checker node `i` was crash-restarted from a snapshot:
    /// its logs are empty again (fresh `SimNode`), its predicate
    /// generations are fresh, its suspicion state is clear, and its
    /// delivery prefix resumes from the restored DELIVERED self-cells.
    /// Call *after* `replace_actor`, passing the restored machine.
    pub fn note_restart(&mut self, i: usize, restored: &StabilizerNode) {
        self.frontier_cursor[i] = 0;
        self.delivery_cursor[i] = 0;
        self.catchup_cursor[i] = 0;
        self.suspected_cursor[i] = 0;
        self.recovered_cursor[i] = 0;
        self.frontier_shadow
            .retain(|(node, _, _), _| *node as usize != i);
        for p in 0..self.n {
            self.suspects[i][p] = false;
        }
        // The restored recorder may legitimately be behind the crashed
        // zombie's table (in-flight messages processed after the
        // snapshot are lost, as in a real crash): resync the shadow.
        let rec = restored.recorder();
        for s in 0..self.n {
            for m in 0..self.n {
                for t in 0..self.types {
                    self.shadow_acks[i][(s * self.n + m) * self.types + t] =
                        rec.get(NodeId(s as u16), NodeId(m as u16), AckTypeId(t as u16));
                }
            }
            // Delivery resumes from the restored DELIVERED cell (the
            // harness fast-forwards the receive state to exactly there).
            // State transfer recovers that prefix out of band, so it
            // counts toward the upcall high-water mark even though no
            // in-simulation upcall happened for it.
            let resumed = rec.get(NodeId(s as u16), NodeId(i as u16), DELIVERED);
            self.last_delivered.insert((i as u16, s as u16), resumed);
            let high = self.delivered_high.entry((i as u16, s as u16)).or_insert(0);
            *high = (*high).max(resumed);
        }
    }

    /// Run every check against the current views. `views[i]` must be
    /// node `i`'s view. Returns the first violation found, if any.
    ///
    /// # Panics
    ///
    /// Panics if `views.len()` differs from the configured cluster size.
    pub fn check(
        &mut self,
        now: SimTime,
        views: &[NodeView<'_>],
    ) -> Result<(), InvariantViolation> {
        assert_eq!(views.len(), self.n, "one view per node");
        self.checks += 1;
        self.check_deliveries(now, views)?;
        self.check_acks(now, views)?;
        self.check_frontiers(now, views)?;
        self.check_suspicion(now, views)?;
        Ok(())
    }

    /// Invariant 4 (and the high-water input to invariant 3). The
    /// delivery log is merged with the catch-up log by timestamp
    /// (catch-ups first on ties): a §III-E fast-forward to `seq` is the
    /// out-of-band recovery of the prefix `..=seq`, so delivery resumes
    /// at `seq + 1` instead of the last in-band delivery + 1, and the
    /// recovered prefix counts toward the upcall high-water mark.
    fn check_deliveries(
        &mut self,
        now: SimTime,
        views: &[NodeView<'_>],
    ) -> Result<(), InvariantViolation> {
        for (i, view) in views.iter().enumerate() {
            if !view.records_deliveries {
                self.delivery_cursor[i] = view.delivery_log.len();
                self.catchup_cursor[i] = view.catchup_log.len();
                continue;
            }
            let log = &view.delivery_log[self.delivery_cursor[i]..];
            let catchups = &view.catchup_log[self.catchup_cursor[i]..];
            let (mut d, mut c) = (0usize, 0usize);
            while d < log.len() || c < catchups.len() {
                let take_catchup = match (log.get(d), catchups.get(c)) {
                    (Some(&(dat, ..)), Some(&(cat, ..))) => cat <= dat,
                    (None, Some(_)) => true,
                    _ => false,
                };
                if take_catchup {
                    let (at, stream, seq) = catchups[c];
                    c += 1;
                    if let Some(p) = &self.placement {
                        if !p.is_replica(stream, NodeId(i as u16)) {
                            return Err(InvariantViolation {
                                at: now,
                                node: i as u16,
                                property: "non-replica-delivery",
                                detail: format!(
                                    "caught up stream {stream:?} to {seq} at {at:?} \
                                     without being one of its replicas"
                                ),
                            });
                        }
                    }
                    let key = (i as u16, stream.0);
                    let entry = self.last_delivered.entry(key).or_insert(0);
                    *entry = (*entry).max(seq);
                    let high = self.delivered_high.entry(key).or_insert(0);
                    *high = (*high).max(seq);
                    continue;
                }
                let (at, origin, seq, _len) = log[d];
                d += 1;
                if let Some(p) = &self.placement {
                    if !p.is_replica(origin, NodeId(i as u16)) {
                        return Err(InvariantViolation {
                            at: now,
                            node: i as u16,
                            property: "non-replica-delivery",
                            detail: format!(
                                "delivered ({origin:?}, {seq}) at {at:?} without being \
                                 one of the stream's replicas"
                            ),
                        });
                    }
                }
                let key = (i as u16, origin.0);
                let prev = *self.last_delivered.get(&key).unwrap_or(&0);
                if seq != prev + 1 {
                    return Err(InvariantViolation {
                        at: now,
                        node: i as u16,
                        property: "delivery-prefix",
                        detail: format!(
                            "delivery of ({origin:?}, {seq}) at {at:?} is not consecutive: \
                             previous delivered seq for this origin was {prev}"
                        ),
                    });
                }
                self.last_delivered.insert(key, seq);
                let high = self.delivered_high.entry(key).or_insert(0);
                *high = (*high).max(seq);
            }
            self.delivery_cursor[i] = view.delivery_log.len();
            self.catchup_cursor[i] = view.catchup_log.len();
        }
        Ok(())
    }

    /// Invariants 1–3, incremental per node where a journal is present.
    fn check_acks(
        &mut self,
        now: SimTime,
        views: &[NodeView<'_>],
    ) -> Result<(), InvariantViolation> {
        for (i, view) in views.iter().enumerate() {
            let num_types = view.node.recorder().num_types();
            if num_types > self.types {
                self.grow_types(num_types);
            }
            // The periodic full rescan closes the journal-hole blind
            // spot: a write that bypassed the journal (forged state, a
            // journaling bug) is examined here at the latest.
            let rescan = self.checks.is_multiple_of(self.rescan_every);
            match &view.dirty {
                Some(cells) if !rescan => self.check_acks_dirty(now, i, cells, views)?,
                _ => self.check_acks_full(now, i, views)?,
            }
        }
        Ok(())
    }

    /// One ACK-table cell against the shadow: invariant 1 (monotone) and
    /// invariant 2 (belief ≤ truth).
    fn check_one_cell(
        &mut self,
        now: SimTime,
        i: usize,
        stream: NodeId,
        peer: NodeId,
        ty: AckTypeId,
        views: &[NodeView<'_>],
    ) -> Result<(), InvariantViolation> {
        let (s, m, t) = (stream.0 as usize, peer.0 as usize, ty.0 as usize);
        let cur = views[i].node.recorder().get(stream, peer, ty);
        if cur > 0 {
            if let Some(p) = &self.placement {
                if !p.is_replica(stream, NodeId(i as u16)) || !p.is_replica(stream, peer) {
                    return Err(InvariantViolation {
                        at: now,
                        node: i as u16,
                        property: "non-replica-ack",
                        detail: format!(
                            "cell (stream {s}, node {m}, type {t}) = {cur} involves a \
                             non-replica of the stream"
                        ),
                    });
                }
            }
        }
        let idx = (s * self.n + m) * self.types + t;
        let shadow = &mut self.shadow_acks[i];
        if cur < shadow[idx] {
            return Err(InvariantViolation {
                at: now,
                node: i as u16,
                property: "ack-monotonicity",
                detail: format!(
                    "cell (stream {s}, node {m}, type {t}) regressed {} -> {cur}",
                    shadow[idx]
                ),
            });
        }
        shadow[idx] = cur;
        if m != i {
            let truth = views[m].node.recorder().get(stream, peer, ty);
            if cur > truth {
                return Err(InvariantViolation {
                    at: now,
                    node: i as u16,
                    property: "belief-beyond-truth",
                    detail: format!(
                        "believes node {m} acked stream {s} type {t} up to {cur}, \
                         but node {m}'s own cell is {truth}"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Invariant 3 on node `i`'s own cells for one stream.
    fn check_own_cells(
        &mut self,
        now: SimTime,
        i: usize,
        stream: NodeId,
        view: &NodeView<'_>,
    ) -> Result<(), InvariantViolation> {
        let s = stream.0 as usize;
        let me = NodeId(i as u16);
        let rec = view.node.recorder();
        let received = rec.get(stream, me, RECEIVED);
        let delivered = rec.get(stream, me, DELIVERED);
        if delivered > received {
            return Err(InvariantViolation {
                at: now,
                node: i as u16,
                property: "delivered-beyond-received",
                detail: format!(
                    "stream {s}: DELIVERED cell {delivered} > RECEIVED cell {received}"
                ),
            });
        }
        if view.records_deliveries && s != i {
            let high = *self.delivered_high.get(&(i as u16, s as u16)).unwrap_or(&0);
            if delivered > high {
                return Err(InvariantViolation {
                    at: now,
                    node: i as u16,
                    property: "delivered-without-upcall",
                    detail: format!(
                        "stream {s}: DELIVERED cell claims {delivered} but only \
                         {high} deliveries were ever up-called"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Incremental ACK checks for node `i`: examine exactly the cells
    /// its journal reports written since the previous check. Sound
    /// because every checked property can only newly fail at a cell
    /// when *that node's copy of that cell* changes: unwritten cells
    /// keep their shadow (invariant 1); a remote truth cell only grows,
    /// so an unwritten belief that satisfied `belief ≤ truth` still
    /// does (invariant 2); and the upcall high-water mark only grows,
    /// so invariant 3 needs re-checking only when an own RECEIVED /
    /// DELIVERED cell moved.
    fn check_acks_dirty(
        &mut self,
        now: SimTime,
        i: usize,
        cells: &[DirtyCell],
        views: &[NodeView<'_>],
    ) -> Result<(), InvariantViolation> {
        let me = NodeId(i as u16);
        for &(stream, peer, ty) in cells {
            self.check_one_cell(now, i, stream, peer, ty, views)?;
            if peer == me && (ty == RECEIVED || ty == DELIVERED) {
                self.check_own_cells(now, i, stream, &views[i])?;
            }
        }
        Ok(())
    }

    /// Full rescan of node `i`'s recorder table (no journal available).
    fn check_acks_full(
        &mut self,
        now: SimTime,
        i: usize,
        views: &[NodeView<'_>],
    ) -> Result<(), InvariantViolation> {
        for s in 0..self.n {
            let stream = NodeId(s as u16);
            for m in 0..self.n {
                for t in 0..self.types {
                    self.check_one_cell(
                        now,
                        i,
                        stream,
                        NodeId(m as u16),
                        AckTypeId(t as u16),
                        views,
                    )?;
                }
            }
            self.check_own_cells(now, i, stream, &views[i])?;
        }
        Ok(())
    }

    /// Invariant 5.
    fn check_frontiers(
        &mut self,
        now: SimTime,
        views: &[NodeView<'_>],
    ) -> Result<(), InvariantViolation> {
        for (i, view) in views.iter().enumerate() {
            let log = view.frontier_log;
            for (at, update) in &log[self.frontier_cursor[i]..] {
                let last_published = views[update.stream.0 as usize].node.last_published();
                if update.seq > last_published {
                    return Err(InvariantViolation {
                        at: now,
                        node: i as u16,
                        property: "frontier-beyond-published",
                        detail: format!(
                            "frontier for (stream {:?}, key {:?}) reached {} at {at:?}, \
                             but the origin only published {last_published}",
                            update.stream, update.key, update.seq
                        ),
                    });
                }
                let key = (i as u16, update.stream.0, update.key.clone());
                if let Some(&(gen, seq)) = self.frontier_shadow.get(&key) {
                    if update.generation == gen && update.seq < seq {
                        return Err(InvariantViolation {
                            at: now,
                            node: i as u16,
                            property: "frontier-regression",
                            detail: format!(
                                "frontier for (stream {:?}, key {:?}) regressed {seq} -> {} \
                                 within generation {gen}",
                                update.stream, update.key, update.seq
                            ),
                        });
                    }
                }
                self.frontier_shadow
                    .insert(key, (update.generation, update.seq));
            }
            self.frontier_cursor[i] = log.len();
        }
        Ok(())
    }

    /// Invariant 6.
    fn check_suspicion(
        &mut self,
        now: SimTime,
        views: &[NodeView<'_>],
    ) -> Result<(), InvariantViolation> {
        for (i, view) in views.iter().enumerate() {
            for &(at, peer) in &view.suspected_log[self.suspected_cursor[i]..] {
                if peer.0 as usize == i {
                    return Err(InvariantViolation {
                        at: now,
                        node: i as u16,
                        property: "self-suspicion",
                        detail: format!("suspected itself at {at:?}"),
                    });
                }
                self.suspects[i][peer.0 as usize] = true;
            }
            self.suspected_cursor[i] = view.suspected_log.len();
            for &(at, peer) in &view.recovered_log[self.recovered_cursor[i]..] {
                if !self.suspects[i][peer.0 as usize] {
                    return Err(InvariantViolation {
                        at: now,
                        node: i as u16,
                        property: "unpaired-recovery",
                        detail: format!(
                            "recovery of {peer:?} at {at:?} without a preceding suspicion"
                        ),
                    });
                }
                self.suspects[i][peer.0 as usize] = false;
            }
            self.recovered_cursor[i] = view.recovered_log.len();
            for p in 0..self.n {
                let actual = view.node.is_suspected(NodeId(p as u16));
                if actual != self.suspects[i][p] {
                    return Err(InvariantViolation {
                        at: now,
                        node: i as u16,
                        property: "suspicion-log-disagreement",
                        detail: format!(
                            "is_suspected({p}) = {actual} but the suspicion/recovery logs \
                             imply {}",
                            self.suspects[i][p]
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    fn grow_types(&mut self, types: usize) {
        let n = self.n;
        for shadow in &mut self.shadow_acks {
            let mut new = vec![0; n * n * types];
            for cell in 0..n * n {
                for t in 0..self.types {
                    new[cell * types + t] = shadow[cell * self.types + t];
                }
            }
            *shadow = new;
        }
        self.types = types;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use stabilizer_core::ClusterConfig;
    use stabilizer_dsl::AckTypeRegistry;
    use std::sync::Arc;

    fn two_nodes() -> Vec<StabilizerNode> {
        let cfg = ClusterConfig::parse("az A 0 1\n").unwrap();
        let acks = Arc::new(AckTypeRegistry::new());
        (0..2)
            .map(|i| StabilizerNode::new(cfg.clone(), NodeId(i), Arc::clone(&acks)).unwrap())
            .collect()
    }

    fn view(node: &StabilizerNode) -> NodeView<'_> {
        NodeView {
            node,
            frontier_log: &[],
            delivery_log: &[],
            suspected_log: &[],
            recovered_log: &[],
            catchup_log: &[],
            records_deliveries: false,
            dirty: None,
        }
    }

    #[test]
    fn clean_cluster_passes() {
        let mut nodes = two_nodes();
        let _ = nodes[0].publish(Bytes::from_static(b"x")).unwrap();
        let mut checker = InvariantChecker::new(2, 3);
        let views: Vec<NodeView<'_>> = nodes.iter().map(view).collect();
        checker.check(SimTime::ZERO, &views).unwrap();
    }

    #[test]
    fn belief_beyond_truth_is_caught() {
        let mut nodes = two_nodes();
        let mut checker = InvariantChecker::new(2, 3);
        // Forge node 0's belief through the wire path: an AckBatch from
        // node 1 claiming it received stream 0 up to seq 7, while node
        // 1's own recorder still says 0.
        use stabilizer_core::{Ack, WireMsg};
        nodes[0].on_message(
            0,
            NodeId(1),
            WireMsg::AckBatch(vec![Ack {
                stream: NodeId(0),
                ty: RECEIVED,
                seq: 7,
            }]),
        );
        let views: Vec<NodeView<'_>> = nodes.iter().map(view).collect();
        let err = checker.check(SimTime::ZERO, &views).unwrap_err();
        assert_eq!(err.property, "belief-beyond-truth");
    }

    #[test]
    fn delivery_gap_is_caught() {
        let nodes = two_nodes();
        let mut checker = InvariantChecker::new(2, 3);
        let gap_log = [(SimTime::ZERO, NodeId(1), 2u64, 0usize)]; // seq 1 missing
        let views = vec![
            NodeView {
                delivery_log: &gap_log,
                records_deliveries: true,
                ..view(&nodes[0])
            },
            view(&nodes[1]),
        ];
        let err = checker.check(SimTime::ZERO, &views).unwrap_err();
        assert_eq!(err.property, "delivery-prefix");
    }

    #[test]
    fn catch_up_bridges_the_delivery_prefix() {
        // A §III-E fast-forward to seq 5 at t=10 makes the next in-band
        // delivery seq 6 legal even though seqs 1..=5 were never
        // up-called; without the catch-up the same log is a violation.
        let nodes = two_nodes();
        let delivery = [(SimTime(20), NodeId(1), 6u64, 0usize)];
        let catchup = [(SimTime(10), NodeId(1), 5u64)];
        let mut checker = InvariantChecker::new(2, 3);
        let views = vec![
            NodeView {
                delivery_log: &delivery,
                catchup_log: &catchup,
                records_deliveries: true,
                ..view(&nodes[0])
            },
            view(&nodes[1]),
        ];
        checker.check(SimTime(20), &views).unwrap();

        let mut checker = InvariantChecker::new(2, 3);
        let views = vec![
            NodeView {
                delivery_log: &delivery,
                records_deliveries: true,
                ..view(&nodes[0])
            },
            view(&nodes[1]),
        ];
        let err = checker.check(SimTime(20), &views).unwrap_err();
        assert_eq!(err.property, "delivery-prefix");
    }

    #[test]
    fn catch_up_after_a_gapped_delivery_does_not_excuse_it() {
        // The merge is timestamp-ordered: a fast-forward at t=30 cannot
        // retroactively legalize a gapped delivery at t=20.
        let nodes = two_nodes();
        let delivery = [(SimTime(20), NodeId(1), 6u64, 0usize)];
        let catchup = [(SimTime(30), NodeId(1), 5u64)];
        let mut checker = InvariantChecker::new(2, 3);
        let views = vec![
            NodeView {
                delivery_log: &delivery,
                catchup_log: &catchup,
                records_deliveries: true,
                ..view(&nodes[0])
            },
            view(&nodes[1]),
        ];
        let err = checker.check(SimTime(30), &views).unwrap_err();
        assert_eq!(err.property, "delivery-prefix");
    }

    #[test]
    fn frontier_regression_within_generation_is_caught() {
        let mut nodes = two_nodes();
        for _ in 0..5 {
            nodes[0].publish(Bytes::from_static(b"p")).unwrap();
        }
        let mk = |seq, generation| FrontierUpdate {
            stream: NodeId(0),
            key: "k".to_string(),
            seq,
            generation,
        };
        let log = [
            (SimTime::ZERO, mk(3, 0)),
            (SimTime::ZERO, mk(2, 0)), // regression, same generation
        ];
        let mut checker = InvariantChecker::new(2, 3);
        let views = vec![
            NodeView {
                frontier_log: &log,
                ..view(&nodes[0])
            },
            view(&nodes[1]),
        ];
        let err = checker.check(SimTime::ZERO, &views).unwrap_err();
        assert_eq!(err.property, "frontier-regression");
    }

    #[test]
    fn journaled_writes_drive_the_incremental_ack_checks() {
        let mut nodes = two_nodes();
        nodes[0].enable_ack_journal();
        use stabilizer_core::{Ack, WireMsg};
        nodes[0].on_message(
            0,
            NodeId(1),
            WireMsg::AckBatch(vec![Ack {
                stream: NodeId(0),
                ty: RECEIVED,
                seq: 7,
            }]),
        );
        let dirty = nodes[0].take_ack_journal();
        assert!(!dirty.is_empty(), "the forged ack write was journaled");
        let mut checker = InvariantChecker::new(2, 3);
        let views = vec![
            NodeView {
                dirty: Some(dirty),
                ..view(&nodes[0])
            },
            NodeView {
                dirty: Some(Vec::new()),
                ..view(&nodes[1])
            },
        ];
        let err = checker.check(SimTime::ZERO, &views).unwrap_err();
        assert_eq!(err.property, "belief-beyond-truth");
    }

    #[test]
    fn unjournaled_write_is_caught_by_periodic_rescan() {
        // A forged belief that is NOT in the journal slips past the
        // purely incremental checks (the contract is that every recorder
        // write is journaled) — but only until the next periodic full
        // rescan. This asserts the former blind spot is closed: the hole
        // survives at most `rescan_every - 1` checks.
        let mut nodes = two_nodes();
        use stabilizer_core::{Ack, WireMsg};
        nodes[0].on_message(
            0,
            NodeId(1),
            WireMsg::AckBatch(vec![Ack {
                stream: NodeId(0),
                ty: RECEIVED,
                seq: 7,
            }]),
        );
        fn silent(nodes: &[StabilizerNode]) -> Vec<NodeView<'_>> {
            nodes
                .iter()
                .map(|n| NodeView {
                    dirty: Some(Vec::new()), // journal silent about the write
                    ..view(n)
                })
                .collect()
        }
        let rescan_every = 4;
        let mut checker = InvariantChecker::new(2, 3).with_rescan_every(rescan_every);
        // The incremental checks miss the forgery...
        for _ in 0..rescan_every - 1 {
            checker.check(SimTime::ZERO, &silent(&nodes)).unwrap();
        }
        // ...but the k-th check full-rescans and trips on it.
        let err = checker.check(SimTime::ZERO, &silent(&nodes)).unwrap_err();
        assert_eq!(err.property, "belief-beyond-truth");

        // The default cadence closes the hole too, within its window.
        let mut checker = InvariantChecker::new(2, 3);
        let caught = (0..DEFAULT_RESCAN_EVERY)
            .any(|_| checker.check(SimTime::ZERO, &silent(&nodes)).is_err());
        assert!(caught, "default rescan cadence must examine the forgery");
    }

    #[test]
    fn non_replica_delivery_is_a_violation() {
        // Four nodes; stream 0 lives on {0, 1}. A delivery of stream 0
        // logged at node 2 trips invariant 7 on its own, even though it
        // is a perfectly consecutive prefix.
        let cfg = ClusterConfig::parse("az A 0 1\naz B 2 3\nreplicate 0 0 1\n").unwrap();
        let acks = Arc::new(AckTypeRegistry::new());
        let nodes: Vec<StabilizerNode> = (0..4)
            .map(|i| StabilizerNode::new(cfg.clone(), NodeId(i), Arc::clone(&acks)).unwrap())
            .collect();
        let placement = cfg.placement().clone();
        let rogue_log = [(SimTime::ZERO, NodeId(0), 1u64, 0usize)];
        let mut checker = InvariantChecker::new(4, 3).with_placement(placement.clone());
        let views = vec![
            view(&nodes[0]),
            view(&nodes[1]),
            NodeView {
                delivery_log: &rogue_log,
                records_deliveries: true,
                ..view(&nodes[2])
            },
            view(&nodes[3]),
        ];
        let err = checker.check(SimTime::ZERO, &views).unwrap_err();
        assert_eq!(err.property, "non-replica-delivery");

        // The same log at replica 1 is fine.
        let mut checker = InvariantChecker::new(4, 3).with_placement(placement);
        let views = vec![
            view(&nodes[0]),
            NodeView {
                delivery_log: &rogue_log,
                records_deliveries: true,
                ..view(&nodes[1])
            },
            view(&nodes[2]),
            view(&nodes[3]),
        ];
        checker.check(SimTime::ZERO, &views).unwrap();
    }

    #[test]
    fn non_replica_ack_cell_is_a_violation() {
        // A recorded ack crediting non-replica 2 on stream 0 must trip
        // invariant 7. The placement-guarded wire path drops such acks,
        // so forge the cell by running node 0 on a full-replication
        // config while the checker holds the partial map — exactly the
        // drift this invariant exists to catch.
        let partial = ClusterConfig::parse("az A 0 1\naz B 2 3\nreplicate 0 0 1\n").unwrap();
        let full = ClusterConfig::parse("az A 0 1\naz B 2 3\n").unwrap();
        let acks = Arc::new(AckTypeRegistry::new());
        let mut nodes: Vec<StabilizerNode> = (0..4)
            .map(|i| StabilizerNode::new(full.clone(), NodeId(i), Arc::clone(&acks)).unwrap())
            .collect();
        let placement = partial.placement().clone();
        use stabilizer_core::{Ack, WireMsg};
        nodes[0].on_message(
            0,
            NodeId(2),
            WireMsg::AckBatch(vec![Ack {
                stream: NodeId(0),
                ty: RECEIVED,
                seq: 3,
            }]),
        );
        let mut checker = InvariantChecker::new(4, 3).with_placement(placement);
        let views: Vec<NodeView<'_>> = nodes.iter().map(view).collect();
        let err = checker.check(SimTime::ZERO, &views).unwrap_err();
        assert_eq!(err.property, "non-replica-ack");
    }

    #[test]
    fn frontier_drop_across_generations_is_allowed() {
        let mut nodes = two_nodes();
        for _ in 0..5 {
            nodes[0].publish(Bytes::from_static(b"p")).unwrap();
        }
        let mk = |seq, generation| FrontierUpdate {
            stream: NodeId(0),
            key: "k".to_string(),
            seq,
            generation,
        };
        let log = [(SimTime::ZERO, mk(3, 0)), (SimTime::ZERO, mk(1, 1))];
        let mut checker = InvariantChecker::new(2, 3);
        let views = vec![
            NodeView {
                frontier_log: &log,
                ..view(&nodes[0])
            },
            view(&nodes[1]),
        ];
        checker.check(SimTime::ZERO, &views).unwrap();
    }
}
