//! A fault-injecting TCP proxy: the real-socket counterpart of the
//! simulator's link controls.
//!
//! Every directed link `i -> j` of the cluster gets its own proxy
//! listener; node `i`'s transport is told that peer `j` lives at that
//! listener, and the proxy forwards each accepted connection onward to
//! node `j`'s *current* real address. Because the node addresses are a
//! mutable table ([`ProxyNet::set_dest`]), a crash-restarted node can
//! come back on a fresh port without any peer reconfiguring — exactly
//! the indirection the harness needs to restart nodes mid-run.
//!
//! Connections are forwarded **frame-at-a-time** (the transport's
//! `u32`-length-prefixed framing) but without decoding the body, so the
//! proxy can drop, delay, or throttle at message granularity — the same
//! granularity as the simulator — while staying oblivious to the wire
//! schema. Fault semantics per link:
//!
//! - **down** ([`ProxyNet::set_link_up`]): the connection is *held*, not
//!   killed — the conn thread stops reading, so frames pile up in kernel
//!   buffers and in the writer's channel, and flow again on heal. This
//!   mirrors the simulator's partition (messages vanish, the endpoint
//!   keeps its socket) without triggering the transport's reconnect
//!   repair storm on every partition edge.
//! - **loss** ([`ProxyNet::set_loss`]): each frame after the hello is
//!   dropped with probability `p`, from a seeded per-connection RNG. The
//!   hello (frame 0) is exempt: real loss happens *below* TCP, so the
//!   stream either exists or does not — per-frame loss models the
//!   paper's lossy-WAN behaviors (forcing retransmission) and dropping
//!   the hello would model a different fault (connection failure),
//!   already covered by link-down.
//! - **rate** ([`ProxyNet::set_rate`]): each frame pays its
//!   serialization delay at the configured bytes/sec before forwarding —
//!   a collapsed NIC stretches a burst into a trickle.
//! - **delay** ([`ProxyNet::set_delay`]): fixed extra one-way latency
//!   per frame. Applied in-line, so per-link FIFO is preserved (TCP
//!   ordering is part of the transport's contract).
//! - **epoch kill** ([`ProxyNet::kill_links_of`]): every connection on
//!   the node's links is torn down and any held frames are discarded.
//!   This is the crash primitive: combined with link-down it guarantees
//!   nothing the crashed incarnation wrote after the cut ever reaches a
//!   peer — the ordering the belief-≤-truth invariant depends on.
//!
//! All knobs are lock-free atomics read per-frame, so the harness can
//! flip them at fault-plan times without handshaking with conn threads.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Maximum frame body the proxy will forward; mirrors the transport's
/// framing limit so an insane length prefix kills the connection instead
/// of allocating unboundedly.
const MAX_FRAME: usize = 16 * 1024 * 1024;

/// How long a conn thread sleeps when its link is held down.
const HOLD_POLL: Duration = Duration::from_millis(2);

/// Read timeout on proxied sockets: the granularity at which conn
/// threads notice epoch kills and shutdown.
const READ_TIMEOUT: Duration = Duration::from_millis(20);

/// Loss probabilities are stored as parts-per-million in an atomic.
const PPM: f64 = 1_000_000.0;

fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mutable fault state of one directed link, shared between the harness
/// (writers) and the link's conn threads (readers).
struct LinkState {
    /// Link passes traffic (held when false).
    up: AtomicBool,
    /// Per-frame drop probability, parts per million.
    loss_ppm: AtomicU32,
    /// Per-frame duplication probability, parts per million.
    dup_ppm: AtomicU32,
    /// Per-frame reorder (swap-with-next) probability, parts per
    /// million.
    reorder_ppm: AtomicU32,
    /// Egress rate in bytes/sec (`f64` bits; 0.0 = unlimited).
    rate_bits: AtomicU64,
    /// Extra one-way delay per frame, nanoseconds.
    delay_nanos: AtomicU64,
    /// Bumped to kill every live connection on this link.
    epoch: AtomicU64,
    /// Live conn threads (for crash-time drain).
    active: AtomicU64,
    /// Frames dropped by loss on this link.
    dropped: AtomicU64,
    /// Base seed for per-connection loss RNGs.
    seed: u64,
}

impl LinkState {
    fn new(seed: u64) -> Self {
        LinkState {
            up: AtomicBool::new(true),
            loss_ppm: AtomicU32::new(0),
            dup_ppm: AtomicU32::new(0),
            reorder_ppm: AtomicU32::new(0),
            rate_bits: AtomicU64::new(0f64.to_bits()),
            delay_nanos: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            active: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            seed,
        }
    }
}

struct ProxyShared {
    n: usize,
    /// Directed links, `[from * n + to]` (diagonal unused).
    links: Vec<LinkState>,
    /// Proxy listener address per directed link.
    proxy_addrs: Vec<Option<SocketAddr>>,
    /// Current real address of each node (`None` until registered;
    /// updated on restart).
    dests: Mutex<Vec<Option<SocketAddr>>>,
    running: AtomicBool,
}

/// The proxy mesh for an `n`-node cluster. See the module docs.
pub struct ProxyNet {
    shared: Arc<ProxyShared>,
}

impl ProxyNet {
    /// Bind one proxy listener per directed link and start its acceptor
    /// thread. Node destinations start unset; register them with
    /// [`ProxyNet::set_dest`] before traffic flows.
    ///
    /// # Errors
    ///
    /// Propagates listener-bind failures.
    pub fn new(n: usize, seed: u64) -> std::io::Result<ProxyNet> {
        let mut links = Vec::with_capacity(n * n);
        for from in 0..n {
            for to in 0..n {
                let mut s = seed ^ ((from as u64) << 32) ^ ((to as u64) << 16) ^ 0xc2b2_ae35;
                links.push(LinkState::new(splitmix_next(&mut s)));
            }
        }
        let mut listeners: Vec<Option<TcpListener>> = Vec::with_capacity(n * n);
        let mut proxy_addrs = Vec::with_capacity(n * n);
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    listeners.push(None);
                    proxy_addrs.push(None);
                    continue;
                }
                let l = TcpListener::bind("127.0.0.1:0")?;
                proxy_addrs.push(Some(l.local_addr()?));
                listeners.push(Some(l));
            }
        }
        let shared = Arc::new(ProxyShared {
            n,
            links,
            proxy_addrs,
            dests: Mutex::new(vec![None; n]),
            running: AtomicBool::new(true),
        });
        for from in 0..n {
            for to in 0..n {
                let Some(listener) = listeners[from * n + to].take() else {
                    continue;
                };
                let shared2 = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("proxy-{from}-{to}"))
                    .spawn(move || accept_loop(shared2, listener, from, to))
                    .expect("spawn proxy acceptor");
            }
        }
        Ok(ProxyNet { shared })
    }

    /// Cluster size.
    pub fn num_nodes(&self) -> usize {
        self.shared.n
    }

    /// The address node `from` should dial to reach node `to`.
    ///
    /// # Panics
    ///
    /// Panics on `from == to` or out-of-range nodes.
    pub fn proxy_addr(&self, from: usize, to: usize) -> SocketAddr {
        self.shared.proxy_addrs[from * self.shared.n + to].expect("no self-link")
    }

    /// Register (or update, after a restart) node `node`'s real address.
    pub fn set_dest(&self, node: usize, addr: SocketAddr) {
        self.shared.dests.lock().unwrap()[node] = Some(addr);
    }

    fn link(&self, from: usize, to: usize) -> &LinkState {
        &self.shared.links[from * self.shared.n + to]
    }

    /// Pass (`true`) or hold (`false`) traffic on `from -> to`.
    pub fn set_link_up(&self, from: usize, to: usize, up: bool) {
        self.link(from, to).up.store(up, Ordering::SeqCst);
    }

    /// Per-frame drop probability on `from -> to` (clamped to `[0, 1]`).
    pub fn set_loss(&self, from: usize, to: usize, probability: f64) {
        let ppm = (probability.clamp(0.0, 1.0) * PPM) as u32;
        self.link(from, to).loss_ppm.store(ppm, Ordering::SeqCst);
    }

    /// Throttle every outgoing link of `node` to `bytes_per_sec`
    /// (values ≥ 1e11 are treated as unlimited).
    pub fn set_rate(&self, node: usize, bytes_per_sec: f64) {
        let effective = if bytes_per_sec >= 1e11 {
            0.0
        } else {
            bytes_per_sec
        };
        for to in 0..self.shared.n {
            if to != node {
                self.link(node, to)
                    .rate_bits
                    .store(effective.to_bits(), Ordering::SeqCst);
            }
        }
    }

    /// Per-frame duplicate/reorder probabilities on `from -> to`
    /// (clamped to `[0, 1]`; `0.0, 0.0` clears). A duplicated frame is
    /// written twice back-to-back; a reordered frame is held and swapped
    /// past its successor (released on read-idle if no successor comes),
    /// so nothing is ever lost — the transport's decoder and the
    /// protocol's receive buffer must absorb both. The hello (frame 0)
    /// is exempt, as with loss.
    pub fn set_dup_reorder(&self, from: usize, to: usize, dup: f64, reorder: f64) {
        let link = self.link(from, to);
        link.dup_ppm
            .store((dup.clamp(0.0, 1.0) * PPM) as u32, Ordering::SeqCst);
        link.reorder_ppm
            .store((reorder.clamp(0.0, 1.0) * PPM) as u32, Ordering::SeqCst);
    }

    /// Extra one-way delay per frame on `from -> to` (0 clears).
    pub fn set_delay(&self, from: usize, to: usize, extra_nanos: u64) {
        self.link(from, to)
            .delay_nanos
            .store(extra_nanos, Ordering::SeqCst);
    }

    /// Tear down every live connection on `node`'s links, both
    /// directions, discarding held frames. New connections are accepted
    /// immediately (under the current up/down state).
    pub fn kill_links_of(&self, node: usize) {
        for other in 0..self.shared.n {
            if other == node {
                continue;
            }
            self.link(node, other).epoch.fetch_add(1, Ordering::SeqCst);
            self.link(other, node).epoch.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Wait (bounded) until no conn thread from a pre-kill epoch is
    /// still live on `node`'s links; returns whether the drain finished.
    /// Call after [`ProxyNet::kill_links_of`]: once true, nothing more
    /// can escape from or reach the node through old connections.
    pub fn drain_links_of(&self, node: usize, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let live: u64 = (0..self.shared.n)
                .filter(|&o| o != node)
                .map(|o| {
                    self.link(node, o).active.load(Ordering::SeqCst)
                        + self.link(o, node).active.load(Ordering::SeqCst)
                })
                .sum();
            if live == 0 {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Total frames dropped by injected loss, all links.
    pub fn dropped(&self) -> u64 {
        self.shared
            .links
            .iter()
            .map(|l| l.dropped.load(Ordering::SeqCst))
            .sum()
    }

    /// Stop acceptors and tear down all connections.
    pub fn shutdown(&self) {
        self.shared.running.store(false, Ordering::SeqCst);
        for l in &self.shared.links {
            l.epoch.fetch_add(1, Ordering::SeqCst);
        }
    }
}

impl Drop for ProxyNet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: Arc<ProxyShared>, listener: TcpListener, from: usize, to: usize) {
    listener.set_nonblocking(true).ok();
    while shared.running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((upstream, _)) => {
                let link = &shared.links[from * shared.n + to];
                let epoch = link.epoch.load(Ordering::SeqCst);
                // Per-connection RNG: vary by epoch so a reconnect after a
                // kill does not replay the previous connection's drops.
                let mut s = link.seed ^ epoch.wrapping_mul(0x9e37_79b9);
                let rng = splitmix_next(&mut s);
                link.active.fetch_add(1, Ordering::SeqCst);
                let shared2 = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("proxy-{from}-{to}-c"))
                    .spawn(move || {
                        conn_loop(&shared2, upstream, from, to, epoch, rng);
                        shared2.links[from * shared2.n + to]
                            .active
                            .fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawn proxy conn");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

/// Accumulates raw bytes and yields complete length-prefixed frames, so
/// short reads under a read timeout never desynchronize the stream.
struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    fn new() -> Self {
        FrameBuf { buf: Vec::new() }
    }

    fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame (prefix + body) if one is buffered.
    /// `Err` means the stream is corrupt (oversized frame).
    fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ()> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME {
            return Err(());
        }
        let total = 4 + len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = self.buf[..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(frame))
    }
}

/// Write one frame toward node `to`, dialing the destination lazily on
/// first use (a connection accepted while the destination was down must
/// dial the *restarted* address, which is only known later). Returns
/// `false` when the conn should die: destination unregistered, dial
/// failure (the sender reconnects), or broken pipe.
fn write_downstream(
    shared: &ProxyShared,
    downstream: &mut Option<TcpStream>,
    to: usize,
    frame: &[u8],
) -> bool {
    let stream = match downstream {
        Some(s) => s,
        None => {
            let dest = shared.dests.lock().unwrap()[to];
            let Some(dest) = dest else {
                return false; // destination never registered
            };
            match TcpStream::connect_timeout(&dest, Duration::from_millis(500)) {
                Ok(s) => {
                    s.set_nodelay(true).ok();
                    *downstream = Some(s);
                    downstream.as_mut().expect("just set")
                }
                // Destination gone (e.g. crashed before drain): drop the
                // conn; the sender reconnects.
                Err(_) => return false,
            }
        }
    };
    stream.write_all(frame).is_ok()
}

/// Forward frames from one accepted connection to the destination node,
/// applying the link's fault state per frame. Exits (closing both
/// sockets) on EOF, IO error, epoch kill, or proxy shutdown.
fn conn_loop(
    shared: &ProxyShared,
    upstream: TcpStream,
    from: usize,
    to: usize,
    my_epoch: u64,
    mut rng: u64,
) {
    let link = &shared.links[from * shared.n + to];
    let killed = |l: &LinkState| {
        l.epoch.load(Ordering::SeqCst) != my_epoch || !shared.running.load(Ordering::SeqCst)
    };
    upstream.set_read_timeout(Some(READ_TIMEOUT)).ok();

    let mut downstream: Option<TcpStream> = None;
    let mut frames_forwarded: u64 = 0;
    let mut buf = FrameBuf::new();
    let mut chunk = [0u8; 8192];
    // A frame held back by the reorder fault, waiting to swap past its
    // successor.
    let mut held: Option<Vec<u8>> = None;
    loop {
        if killed(link) {
            return;
        }
        if !link.up.load(Ordering::SeqCst) {
            // Held: no reads, no forwards; kernel buffers absorb the
            // sender until heal.
            std::thread::sleep(HOLD_POLL);
            continue;
        }
        match upstream.suspend_safe_read(&mut chunk) {
            ReadOutcome::Data(n) => buf.extend(&chunk[..n]),
            ReadOutcome::TimedOut => {
                // Read-idle with a reorder-held frame: no successor is
                // coming right behind it, so release it — reorder must
                // never become loss.
                if let Some(h) = held.take() {
                    if !write_downstream(shared, &mut downstream, to, &h) {
                        return;
                    }
                }
            }
            ReadOutcome::Closed => {
                if let Some(h) = held.take() {
                    let _ = write_downstream(shared, &mut downstream, to, &h);
                }
                return;
            }
        }
        loop {
            let frame = match buf.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(()) => return, // corrupt length prefix: kill the conn
            };
            // Loss: seeded per-frame coin flip; the hello is exempt (see
            // module docs).
            let ppm = link.loss_ppm.load(Ordering::SeqCst);
            if frames_forwarded > 0
                && ppm > 0
                && (splitmix_next(&mut rng) % PPM as u64) < u64::from(ppm)
            {
                link.dropped.fetch_add(1, Ordering::SeqCst);
                continue;
            }
            // Delay skew: fixed extra one-way latency, in-line to keep
            // FIFO.
            let delay = link.delay_nanos.load(Ordering::SeqCst);
            if delay > 0 {
                std::thread::sleep(Duration::from_nanos(delay));
            }
            // Bandwidth: pay the serialization delay at the configured
            // rate.
            let rate = f64::from_bits(link.rate_bits.load(Ordering::SeqCst));
            if rate > 0.0 {
                let nanos = (frame.len() as f64 / rate * 1e9) as u64;
                std::thread::sleep(Duration::from_nanos(nanos.min(1_000_000_000)));
            }
            // The link may have been cut or killed while this frame
            // waited its turn: hold (not drop) until it may pass.
            while !link.up.load(Ordering::SeqCst) {
                if killed(link) {
                    return;
                }
                std::thread::sleep(HOLD_POLL);
            }
            if killed(link) {
                return;
            }
            // Reorder: hold this frame back one slot so the next frame
            // overtakes it (hello exempt; at most one frame held).
            let reorder_ppm = link.reorder_ppm.load(Ordering::SeqCst);
            if frames_forwarded > 0
                && held.is_none()
                && reorder_ppm > 0
                && (splitmix_next(&mut rng) % PPM as u64) < u64::from(reorder_ppm)
            {
                held = Some(frame);
                frames_forwarded += 1;
                continue;
            }
            if !write_downstream(shared, &mut downstream, to, &frame) {
                return;
            }
            // Duplicate: the copy follows immediately (hello exempt).
            let dup_ppm = link.dup_ppm.load(Ordering::SeqCst);
            if frames_forwarded > 0
                && dup_ppm > 0
                && (splitmix_next(&mut rng) % PPM as u64) < u64::from(dup_ppm)
                && !write_downstream(shared, &mut downstream, to, &frame)
            {
                return;
            }
            frames_forwarded += 1;
            // A held frame swaps out right after its successor.
            if let Some(h) = held.take() {
                if !write_downstream(shared, &mut downstream, to, &h) {
                    return;
                }
            }
        }
    }
}

/// Outcome of one read attempt under a read timeout.
enum ReadOutcome {
    Data(usize),
    TimedOut,
    Closed,
}

trait SuspendSafeRead {
    fn suspend_safe_read(&self, chunk: &mut [u8]) -> ReadOutcome;
}

impl SuspendSafeRead for TcpStream {
    fn suspend_safe_read(&self, chunk: &mut [u8]) -> ReadOutcome {
        match (&mut &*self).read(chunk) {
            Ok(0) => ReadOutcome::Closed,
            Ok(n) => ReadOutcome::Data(n),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                ReadOutcome::TimedOut
            }
            Err(_) => ReadOutcome::Closed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(body: &[u8]) -> Vec<u8> {
        let mut f = (body.len() as u32).to_le_bytes().to_vec();
        f.extend_from_slice(body);
        f
    }

    #[test]
    fn frame_buf_reassembles_split_frames() {
        let mut b = FrameBuf::new();
        let f1 = frame(b"hello");
        let f2 = frame(b"world!");
        let joined: Vec<u8> = f1.iter().chain(f2.iter()).copied().collect();
        // Feed one byte at a time: only complete frames pop out.
        let mut out = Vec::new();
        for byte in joined {
            b.extend(&[byte]);
            while let Some(f) = b.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out, vec![f1, f2]);
    }

    #[test]
    fn frame_buf_rejects_oversized_prefix() {
        let mut b = FrameBuf::new();
        b.extend(&(u32::MAX).to_le_bytes());
        assert!(b.next_frame().is_err());
    }

    #[test]
    fn proxy_forwards_frames_end_to_end() {
        let proxy = ProxyNet::new(2, 1).unwrap();
        let dest = TcpListener::bind("127.0.0.1:0").unwrap();
        proxy.set_dest(1, dest.local_addr().unwrap());
        let mut up = TcpStream::connect(proxy.proxy_addr(0, 1)).unwrap();
        up.write_all(&frame(b"one")).unwrap();
        up.write_all(&frame(b"two")).unwrap();
        let (mut got, _) = dest.accept().unwrap();
        got.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let mut buf = [0u8; 64];
        let mut received = Vec::new();
        while received.len() < 14 {
            let n = got.read(&mut buf).unwrap();
            assert!(n > 0, "stream closed early");
            received.extend_from_slice(&buf[..n]);
        }
        let expected: Vec<u8> = frame(b"one").into_iter().chain(frame(b"two")).collect();
        assert_eq!(received, expected);
        proxy.shutdown();
    }

    #[test]
    fn held_link_delays_but_preserves_frames() {
        let proxy = ProxyNet::new(2, 2).unwrap();
        let dest = TcpListener::bind("127.0.0.1:0").unwrap();
        proxy.set_dest(1, dest.local_addr().unwrap());
        proxy.set_link_up(0, 1, false);
        let mut up = TcpStream::connect(proxy.proxy_addr(0, 1)).unwrap();
        up.write_all(&frame(b"held")).unwrap();
        dest.set_nonblocking(true).ok();
        std::thread::sleep(Duration::from_millis(100));
        // Nothing arrives while the link is down (not even a connection).
        assert!(dest.accept().is_err(), "held link must not forward");
        proxy.set_link_up(0, 1, true);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut got = loop {
            match dest.accept() {
                Ok((s, _)) => break s,
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("heal did not release the frame: {e}"),
            }
        };
        got.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let mut received = Vec::new();
        let mut buf = [0u8; 64];
        while received.len() < 8 {
            let n = got.read(&mut buf).unwrap();
            assert!(n > 0);
            received.extend_from_slice(&buf[..n]);
        }
        assert_eq!(received, frame(b"held"));
        proxy.shutdown();
    }

    /// Read framed messages from `got` until `want` frames have arrived.
    fn read_frames(got: &mut TcpStream, want: usize) -> Vec<Vec<u8>> {
        got.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let mut fb = FrameBuf::new();
        let mut out = Vec::new();
        let mut buf = [0u8; 256];
        while out.len() < want {
            let n = got.read(&mut buf).expect("read");
            assert!(n > 0, "stream closed early");
            fb.extend(&buf[..n]);
            while let Some(f) = fb.next_frame().unwrap() {
                // Strip the length prefix back off for comparison.
                out.push(f[4..].to_vec());
            }
        }
        out
    }

    #[test]
    fn dup_link_duplicates_frames_after_hello() {
        let proxy = ProxyNet::new(2, 4).unwrap();
        let dest = TcpListener::bind("127.0.0.1:0").unwrap();
        proxy.set_dest(1, dest.local_addr().unwrap());
        proxy.set_dup_reorder(0, 1, 1.0, 0.0);
        let mut up = TcpStream::connect(proxy.proxy_addr(0, 1)).unwrap();
        up.write_all(&frame(b"hello")).unwrap();
        up.write_all(&frame(b"a")).unwrap();
        up.write_all(&frame(b"b")).unwrap();
        let (mut got, _) = dest.accept().unwrap();
        // Hello exempt; the two data frames each arrive twice, in order.
        let frames = read_frames(&mut got, 5);
        assert_eq!(
            frames,
            vec![
                b"hello".to_vec(),
                b"a".to_vec(),
                b"a".to_vec(),
                b"b".to_vec(),
                b"b".to_vec()
            ]
        );
        proxy.shutdown();
    }

    #[test]
    fn reorder_link_swaps_adjacent_frames_without_loss() {
        let proxy = ProxyNet::new(2, 5).unwrap();
        let dest = TcpListener::bind("127.0.0.1:0").unwrap();
        proxy.set_dest(1, dest.local_addr().unwrap());
        proxy.set_dup_reorder(0, 1, 0.0, 1.0);
        let mut up = TcpStream::connect(proxy.proxy_addr(0, 1)).unwrap();
        for body in [&b"hello"[..], b"a", b"b", b"c", b"d"] {
            up.write_all(&frame(body)).unwrap();
        }
        let (mut got, _) = dest.accept().unwrap();
        // With p=1.0, each data frame is held until its successor passes:
        // a is held, b passes, a releases; c is held, d passes, c releases.
        let frames = read_frames(&mut got, 5);
        assert_eq!(
            frames,
            vec![
                b"hello".to_vec(),
                b"b".to_vec(),
                b"a".to_vec(),
                b"d".to_vec(),
                b"c".to_vec()
            ]
        );
        proxy.shutdown();
    }

    #[test]
    fn reorder_held_frame_released_on_idle() {
        let proxy = ProxyNet::new(2, 6).unwrap();
        let dest = TcpListener::bind("127.0.0.1:0").unwrap();
        proxy.set_dest(1, dest.local_addr().unwrap());
        proxy.set_dup_reorder(0, 1, 0.0, 1.0);
        let mut up = TcpStream::connect(proxy.proxy_addr(0, 1)).unwrap();
        up.write_all(&frame(b"hello")).unwrap();
        up.write_all(&frame(b"tail")).unwrap();
        let (mut got, _) = dest.accept().unwrap();
        // No successor ever comes: the read-idle path must release the
        // held frame rather than turn reorder into loss.
        let frames = read_frames(&mut got, 2);
        assert_eq!(frames, vec![b"hello".to_vec(), b"tail".to_vec()]);
        proxy.shutdown();
    }

    #[test]
    fn kill_links_tears_down_connections() {
        let proxy = ProxyNet::new(2, 3).unwrap();
        let dest = TcpListener::bind("127.0.0.1:0").unwrap();
        proxy.set_dest(1, dest.local_addr().unwrap());
        let mut up = TcpStream::connect(proxy.proxy_addr(0, 1)).unwrap();
        up.write_all(&frame(b"x")).unwrap();
        let (_down, _) = dest.accept().unwrap();
        proxy.kill_links_of(1);
        assert!(proxy.drain_links_of(1, Duration::from_secs(5)));
        // The upstream socket is closed: writes eventually fail.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if up.write_all(&frame(b"y")).is_err() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "kill did not close the upstream socket"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        proxy.shutdown();
    }
}
