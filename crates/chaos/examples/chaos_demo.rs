//! Run one randomized chaos scenario from the command line.
//!
//! ```text
//! cargo run -p stabilizer-chaos --example chaos_demo -- <seed> [--metrics-out <path>]
//! ```
//!
//! Expands the seed into a `(topology, workload, fault plan)` triple,
//! runs it with the invariant checker after every step, and prints the
//! determinism fingerprint. Running the same seed twice must print the
//! same trace hash. On a violation, prints the replay command and the
//! minimized fault plan.
//!
//! With `--metrics-out <path>`, the run is instrumented with a
//! deterministic telemetry hub and the final metrics snapshot —
//! counters, gauges, and the publish→deliver / publish→stable latency
//! histograms — is written to `path` as JSON (plus a Prometheus text
//! rendering next to it at `<path>.prom`). Same seed, same bytes.

use stabilizer_chaos::{minimize_plan, Scenario};
use stabilizer_telemetry::Telemetry;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!("usage: chaos_demo <seed> [--metrics-out <path>]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: Option<u64> = None;
    let mut metrics_out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics-out" => match it.next() {
                Some(path) => metrics_out = Some(path),
                None => usage(),
            },
            _ => match arg.parse() {
                Ok(v) if seed.is_none() => seed = Some(v),
                _ => {
                    eprintln!("error: {arg:?} is not a u64 seed");
                    usage();
                }
            },
        }
    }
    let Some(seed) = seed else { usage() };

    let scenario = Scenario::from_seed(seed);
    println!("scenario: {}", scenario.summary());
    let telemetry = metrics_out
        .as_ref()
        .map(|_| Arc::new(Telemetry::new_sim_with_trace(4096)));
    let result = match &telemetry {
        Some(t) => scenario.run_with_telemetry(Arc::clone(t)),
        None => scenario.run(),
    };
    match result {
        Ok(report) => {
            println!(
                "ok: trace_hash={:016x} events={} steps={} dropped={} final_time={:?}",
                report.trace_hash,
                report.trace_events,
                report.steps,
                report.dropped,
                report.final_time
            );
            if let (Some(path), Some(t)) = (&metrics_out, &telemetry) {
                if let Err(e) = std::fs::write(path, t.render_json()) {
                    eprintln!("error: writing {path}: {e}");
                    std::process::exit(1);
                }
                let prom = format!("{path}.prom");
                if let Err(e) = std::fs::write(&prom, t.render_prometheus()) {
                    eprintln!("error: writing {prom}: {e}");
                    std::process::exit(1);
                }
                println!("metrics: {path} (json), {prom} (prometheus text)");
            }
        }
        Err(failure) => {
            eprintln!("{failure}");
            let minimal = minimize_plan(&failure.plan, |candidate| {
                scenario.run_with_plan(candidate).is_err()
            });
            eprintln!("minimized fault plan: {minimal:?}");
            std::process::exit(1);
        }
    }
}
