//! Run one randomized chaos scenario from the command line.
//!
//! ```text
//! cargo run -p stabilizer-chaos --example chaos_demo -- <seed> \
//!     [--metrics-out <path>] [--freeze-at <millis>] [--serve <addr>]
//! ```
//!
//! Expands the seed into a `(topology, workload, fault plan)` triple,
//! runs it with the invariant checker after every step, and prints the
//! determinism fingerprint. Running the same seed twice must print the
//! same trace hash. On a violation, prints the replay command and the
//! minimized fault plan.
//!
//! With `--metrics-out <path>`, the run is instrumented with a
//! deterministic telemetry hub and the final metrics snapshot —
//! counters, gauges, and the publish→deliver / publish→stable latency
//! histograms — is written to `path` as JSON (plus a Prometheus text
//! rendering next to it at `<path>.prom`). Same seed, same bytes.
//!
//! With `--freeze-at <millis>`, the virtual clock stops there instead of
//! the scenario horizon and every node's frontier blame diagnosis is
//! printed — the way to inspect *mid-fault* stalls that have healed by
//! the horizon (try seed 503 frozen at 438ms).
//!
//! With `--serve <addr>`, after the run completes the telemetry hub is
//! kept alive behind a live HTTP endpoint (`/metrics`, `/metrics.json`,
//! `/trace`, `/stall` — the stall route serves the frozen end-of-run
//! diagnosis) until the process is killed. Point `stabtop` at it.

use stabilizer_chaos::{minimize_plan, ChaosHarness, Scenario};
use stabilizer_core::{ClusterConfig, StallReport};
use stabilizer_netsim::SimDuration;
use stabilizer_telemetry::{ServerRoutes, StallProvider, Telemetry, TelemetryServer};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: chaos_demo <seed> [--metrics-out <path>] [--freeze-at <millis>] [--serve <addr>]"
    );
    std::process::exit(2);
}

/// `/stall` body for node-tagged simulator reports: like the runtime
/// endpoint's `{"reports":[...]}`, with a leading `"observer"` field
/// carrying the node whose recorder produced each diagnosis.
fn stall_json(reports: &[(u16, StallReport)]) -> String {
    let mut s = String::from("{\"reports\":[");
    for (i, (node, r)) in reports.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let body = r.to_json();
        s.push_str(&format!("{{\"observer\":{node},{}", &body[1..]));
    }
    s.push_str("]}");
    s
}

fn write_metrics(path: &str, t: &Telemetry) {
    if let Err(e) = std::fs::write(path, t.render_json()) {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(1);
    }
    let prom = format!("{path}.prom");
    if let Err(e) = std::fs::write(&prom, t.render_prometheus()) {
        eprintln!("error: writing {prom}: {e}");
        std::process::exit(1);
    }
    println!("metrics: {path} (json), {prom} (prometheus text)");
}

/// Hold the endpoint open until the process is killed.
fn serve_forever(addr: &str, telemetry: Arc<Telemetry>, stall_body: String) -> ! {
    let stall: StallProvider = Arc::new(move || stall_body.clone());
    let routes = ServerRoutes::new(telemetry).with_stall(stall);
    let server = match TelemetryServer::bind(addr, routes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: serving on {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "serving http://{} — /metrics /metrics.json /trace /stall (Ctrl-C to exit)",
        server.local_addr()
    );
    loop {
        std::thread::park();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: Option<u64> = None;
    let mut metrics_out: Option<String> = None;
    let mut freeze_at: Option<u64> = None;
    let mut serve: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics-out" => match it.next() {
                Some(path) => metrics_out = Some(path),
                None => usage(),
            },
            "--freeze-at" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => freeze_at = Some(ms),
                None => usage(),
            },
            "--serve" => match it.next() {
                Some(addr) => serve = Some(addr),
                None => usage(),
            },
            _ => match arg.parse() {
                Ok(v) if seed.is_none() => seed = Some(v),
                _ => {
                    eprintln!("error: {arg:?} is not a u64 seed");
                    usage();
                }
            },
        }
    }
    let Some(seed) = seed else { usage() };

    let scenario = Scenario::from_seed(seed);
    println!("scenario: {}", scenario.summary());
    let telemetry =
        (metrics_out.is_some() || serve.is_some()).then(|| Telemetry::new_sim_with_trace(4096));

    if freeze_at.is_some() || serve.is_some() {
        // The diagnosing path drives the harness directly so the
        // recorders stay inspectable after the clock stops.
        let cfg = ClusterConfig::parse(&scenario.cfg_text).expect("generated config parses");
        let mut harness = ChaosHarness::new_with_telemetry(
            &cfg,
            scenario.topology.build(),
            seed,
            &scenario.plan,
            scenario.workload.clone(),
            telemetry.clone(),
        )
        .expect("generated scenario is valid");
        let horizon = freeze_at.map_or(scenario.horizon, SimDuration::from_millis);
        match harness.run(horizon) {
            Ok(report) => println!(
                "ok: trace_hash={:016x} events={} steps={} dropped={} final_time={:?}",
                report.trace_hash,
                report.trace_events,
                report.steps,
                report.dropped,
                report.final_time
            ),
            Err(violation) => {
                eprintln!("{violation}");
                std::process::exit(1);
            }
        }
        let reports = harness.stall_reports();
        let stalled: Vec<&(u16, StallReport)> = reports.iter().filter(|(_, r)| r.stalled).collect();
        println!(
            "frontiers at {horizon}: {} ok, {} stalled",
            reports.len() - stalled.len(),
            stalled.len()
        );
        for (node, r) in stalled {
            println!("  node {node} sees: {}", r.render_human());
        }
        if let (Some(path), Some(t)) = (&metrics_out, &telemetry) {
            write_metrics(path, t);
        }
        if let Some(addr) = serve {
            serve_forever(
                &addr,
                telemetry.expect("hub exists when serving"),
                stall_json(&reports),
            );
        }
        return;
    }

    let result = match &telemetry {
        Some(t) => scenario.run_with_telemetry(Arc::clone(t)),
        None => scenario.run(),
    };
    match result {
        Ok(report) => {
            println!(
                "ok: trace_hash={:016x} events={} steps={} dropped={} final_time={:?}",
                report.trace_hash,
                report.trace_events,
                report.steps,
                report.dropped,
                report.final_time
            );
            if let (Some(path), Some(t)) = (&metrics_out, &telemetry) {
                write_metrics(path, t);
            }
        }
        Err(failure) => {
            eprintln!("{failure}");
            let minimal = minimize_plan(&failure.plan, |candidate| {
                scenario.run_with_plan(candidate).is_err()
            });
            eprintln!("minimized fault plan: {minimal:?}");
            std::process::exit(1);
        }
    }
}
