//! Run one randomized chaos scenario from the command line.
//!
//! ```text
//! cargo run -p stabilizer-chaos --example chaos_demo -- <seed>
//! ```
//!
//! Expands the seed into a `(topology, workload, fault plan)` triple,
//! runs it with the invariant checker after every step, and prints the
//! determinism fingerprint. Running the same seed twice must print the
//! same trace hash. On a violation, prints the replay command and the
//! minimized fault plan.

use stabilizer_chaos::{minimize_plan, Scenario};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: chaos_demo <seed>");
        std::process::exit(2);
    });
    let seed: u64 = arg.parse().unwrap_or_else(|e| {
        eprintln!("error: seed {arg:?} is not a u64: {e}");
        std::process::exit(2);
    });

    let scenario = Scenario::from_seed(seed);
    println!("scenario: {}", scenario.summary());
    match scenario.run() {
        Ok(report) => {
            println!(
                "ok: trace_hash={:016x} events={} steps={} dropped={} final_time={:?}",
                report.trace_hash,
                report.trace_events,
                report.steps,
                report.dropped,
                report.final_time
            );
        }
        Err(failure) => {
            eprintln!("{failure}");
            let minimal = minimize_plan(&failure.plan, |candidate| {
                scenario.run_with_plan(candidate).is_err()
            });
            eprintln!("minimized fault plan: {minimal:?}");
            std::process::exit(1);
        }
    }
}
