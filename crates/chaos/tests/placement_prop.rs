//! Property tests for partial replication: randomized per-stream
//! replica sets must preserve every safety invariant on every step
//! (including invariant 7 — a frame or ack cell reaching a non-replica
//! is itself a violation), stabilize every stream among its replicas
//! once faults clear, and keep non-replicas fully isolated from
//! streams they do not host. A replicate-free config must behave
//! byte-for-byte like one that spells out the full node set for every
//! stream — the placement subsystem costs nothing when unused. And the
//! same placement-aware fault plan must drive the netsim cluster and
//! the real TCP cluster to identical converged state.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stabilizer_chaos::{
    ChaosHarness, ChaosTcpCluster, Fault, FaultEvent, FaultPlan, TimedWork, WorkItem,
};
use stabilizer_core::ClusterConfig;
use stabilizer_dsl::{NodeId, SeqNo, RECEIVED};
use stabilizer_netsim::{NetTopology, SimDuration};
use std::time::Duration;

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// Draw an n-node config whose streams are pinned to random replica
/// sets of 3-4 members (origin always included). With n >= 6 every
/// draw is genuinely partial: some node is a non-replica of some
/// stream.
fn random_placement_cfg(rng: &mut SmallRng, n: usize) -> String {
    let mut cfg = String::new();
    for (az, range) in [("A", 0..n / 2), ("B", n / 2..n)] {
        cfg.push_str(&format!("az {az}"));
        for i in range {
            cfg.push_str(&format!(" n{i}"));
        }
        cfg.push('\n');
    }
    for i in 0..n {
        let want = 3 + usize::from(rng.gen_bool(0.3));
        let mut members = vec![i];
        while members.len() < want {
            let m = rng.gen_range(0..n);
            if !members.contains(&m) {
                members.push(m);
            }
        }
        cfg.push_str(&format!("replicate n{i}"));
        for m in members {
            cfg.push_str(&format!(" n{m}"));
        }
        cfg.push('\n');
    }
    cfg.push_str(
        "predicate All MIN($ALLWNODES-$MYWNODE)\n\
         option ack_flush_micros 2000\n\
         option heartbeat_millis 50\n\
         option retransmit_millis 100\n",
    );
    cfg
}

/// A benign fault for the randomized runs: cleared or healed well
/// before the publish window ends, so liveness must hold afterwards.
fn random_benign_plan(rng: &mut SmallRng, n: usize) -> FaultPlan {
    let mut events = Vec::new();
    match rng.gen_range(0..4u8) {
        0 => {} // fault-free draw
        1 => {
            let from = rng.gen_range(0..n);
            let to = (from + rng.gen_range(1..n)) % n;
            events.push(FaultEvent {
                at: ms(30),
                fault: Fault::AsymmetricLoss {
                    from,
                    to,
                    probability: 0.8,
                    clear_after: ms(250),
                },
            });
        }
        2 => {
            events.push(FaultEvent {
                at: ms(60),
                fault: Fault::CrashRestart {
                    node: rng.gen_range(0..n),
                    down_for: ms(150),
                },
            });
        }
        _ => {
            events.push(FaultEvent {
                at: ms(40),
                fault: Fault::Partition {
                    side: vec![rng.gen_range(0..n)],
                    heal_after: ms(200),
                },
            });
        }
    }
    FaultPlan { events }
}

#[test]
fn random_replica_sets_are_safe_stable_and_isolated() {
    for seed in 0..20u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(6..=9);
        let cfg_text = random_placement_cfg(&mut rng, n);
        let cfg = ClusterConfig::parse(&cfg_text).expect("generated config parses");
        assert!(
            !cfg.placement().is_full_replication(),
            "seed {seed}: 3-4 member sets over {n} nodes must be partial"
        );
        let plan = random_benign_plan(&mut rng, n);
        let workload: Vec<TimedWork> = (0..n)
            .flat_map(|node| {
                let msgs = rng.gen_range(3..=6);
                (0..msgs)
                    .map(|i| TimedWork {
                        at: ms(rng.gen_range(10..400) + i * 5),
                        item: WorkItem::Publish {
                            node,
                            len: rng.gen_range(16..128),
                        },
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let net = NetTopology::full_mesh(n, ms(5), 1e9);
        let mut h = ChaosHarness::new(&cfg, net, seed, &plan, workload)
            .expect("generated scenario is valid");
        // Safety on every step: invariant 7 makes any leak to a
        // non-replica a violation in its own right.
        h.run(ms(2000))
            .unwrap_or_else(|v| panic!("seed {seed} safety: {v}\ncfg:\n{cfg_text}"));
        // Eventual stability: every stream's frontier covers its
        // publishes using replica acks alone.
        h.verify_liveness(SimDuration::from_secs(30))
            .unwrap_or_else(|v| panic!("seed {seed} liveness: {v}\ncfg:\n{cfg_text}"));
        // Non-replica isolation, asserted directly on the final state:
        // a node hosting no copy of a stream saw none of it.
        let placement = cfg.placement();
        for s in 0..n {
            let stream = NodeId(s as u16);
            for i in 0..n {
                if i == s || placement.is_replica(stream, NodeId(i as u16)) {
                    continue;
                }
                let received =
                    h.sim()
                        .actor(i)
                        .inner()
                        .recorder()
                        .get(stream, NodeId(i as u16), RECEIVED);
                assert_eq!(
                    received, 0,
                    "seed {seed}: non-replica n{i} holds part of stream {s}"
                );
                let delivered = h
                    .sim()
                    .actor(i)
                    .delivery_log
                    .iter()
                    .filter(|(_, o, _, _)| *o == stream)
                    .count();
                assert_eq!(
                    delivered, 0,
                    "seed {seed}: non-replica n{i} delivered from stream {s}"
                );
            }
        }
    }
}

/// Pinned determinism fingerprint for the no-placement baseline below.
/// If this moves, code outside the placement subsystem changed observable
/// behavior for configs that never mention `replicate` — exactly what
/// partial replication promised not to do.
const BASELINE_TRACE_HASH: u64 = 0x0642_e364_0392_d206;

fn baseline_run(replicate_lines: &str) -> (u64, usize) {
    let cfg = ClusterConfig::parse(&format!(
        "az A n0 n1\naz B n2 n3\n\
         {replicate_lines}\
         predicate All MIN($ALLWNODES-$MYWNODE)\n\
         option ack_flush_micros 2000\n\
         option heartbeat_millis 50\n\
         option retransmit_millis 100\n"
    ))
    .unwrap();
    let plan = FaultPlan {
        events: vec![FaultEvent {
            at: ms(50),
            fault: Fault::Partition {
                side: vec![3],
                heal_after: ms(150),
            },
        }],
    };
    let workload: Vec<TimedWork> = (0..8)
        .map(|i| TimedWork {
            at: ms(10 + i * 30),
            item: WorkItem::Publish {
                node: (i % 4) as usize,
                len: 64 + i as usize,
            },
        })
        .collect();
    let net = NetTopology::full_mesh(4, ms(5), 1e9);
    let mut h = ChaosHarness::new(&cfg, net, 1234, &plan, workload).unwrap();
    let report = h.run(ms(1500)).unwrap();
    (report.trace_hash, report.trace_events)
}

#[test]
fn replicate_free_config_is_byte_identical_to_explicit_full_sets() {
    // Same topology, workload, faults, and seed; the only difference is
    // whether the full replica set is implicit or spelled out. The two
    // traces — every send, delivery, ack, frontier advance, in order —
    // must hash identically, and match the pinned pre-placement value.
    let (implicit_hash, implicit_events) = baseline_run("");
    let (explicit_hash, explicit_events) = baseline_run(
        "replicate n0 n0 n1 n2 n3\n\
         replicate n1 n0 n1 n2 n3\n\
         replicate n2 n0 n1 n2 n3\n\
         replicate n3 n0 n1 n2 n3\n",
    );
    assert_eq!(implicit_events, explicit_events);
    assert_eq!(
        implicit_hash, explicit_hash,
        "an explicit full-mesh `replicate` changed observable behavior"
    );
    assert_eq!(
        implicit_hash, BASELINE_TRACE_HASH,
        "a replicate-free config no longer replays to the pinned trace"
    );
}

// ---------------------------------------------------------------------
// Sim-vs-TCP differential under a placement-aware fault plan.
// ---------------------------------------------------------------------

const N: usize = 4;
const KEY: &str = "All";
const SEED: u64 = 2024;

/// Four nodes, each stream pinned to a ring of three, so every stream
/// has exactly one non-replica (stream 0's is n3, stream 1's is n0, ...).
fn ring_cfg() -> ClusterConfig {
    ClusterConfig::parse(
        "az East n0 n1\naz West n2 n3\n\
         replicate n0 n0 n1 n2\n\
         replicate n1 n1 n2 n3\n\
         replicate n2 n2 n3 n0\n\
         replicate n3 n3 n0 n1\n\
         predicate All MIN($ALLWNODES-$MYWNODE)\n\
         option ack_flush_micros 2000\n\
         option heartbeat_millis 20\n\
         option retransmit_millis 40\n\
         option failure_timeout_millis 150\n\
         option retain_log_bytes 262144\n\
         option transfer_millis 20\n",
    )
    .unwrap()
}

/// The fault plan is placement-aware by construction: the lossy link
/// n0 -> n1 is a replica edge of stream 0 (so retransmission must heal
/// a replica, not a bystander), and the crashed node n2 is a replica of
/// streams 0, 1, and 2 but NOT of stream 3 — its §III-E recovery must
/// catch up exactly the streams it hosts.
fn placement_plan() -> FaultPlan {
    FaultPlan {
        events: vec![
            FaultEvent {
                at: ms(20),
                fault: Fault::AsymmetricLoss {
                    from: 0,
                    to: 1,
                    probability: 0.5,
                    clear_after: ms(280),
                },
            },
            FaultEvent {
                at: ms(500),
                fault: Fault::CrashRestart {
                    node: 2,
                    down_for: ms(200),
                },
            },
        ],
    }
}

/// Publishes quiesce before the crash window opens (see sim_vs_tcp.rs:
/// in-flight traffic at a crash boundary is decided by racy transport
/// timing, which the final-state comparison must not depend on).
fn placement_workload() -> Vec<TimedWork> {
    let mut w: Vec<TimedWork> = (0..10)
        .map(|i| TimedWork {
            at: ms(10 + i * 20),
            item: WorkItem::Publish { node: 0, len: 48 },
        })
        .collect();
    w.extend((0..5).map(|i| TimedWork {
        at: ms(15 + i * 35),
        item: WorkItem::Publish { node: 3, len: 96 },
    }));
    w.sort_by_key(|w| w.at);
    w
}

#[derive(Debug, PartialEq, Eq)]
struct FinalState {
    deliveries: Vec<Vec<Vec<SeqNo>>>, // [node][origin] -> delivered seqs in order
    received: Vec<Vec<SeqNo>>,        // [node][stream]
    frontiers: Vec<SeqNo>,            // [origin] own-stream frontier under KEY
}

fn sim_run() -> FinalState {
    let net = NetTopology::full_mesh(N, ms(5), 1e9);
    let mut h = ChaosHarness::new(
        &ring_cfg(),
        net,
        SEED,
        &placement_plan(),
        placement_workload(),
    )
    .unwrap();
    h.run(SimDuration::from_secs(10))
        .unwrap_or_else(|v| panic!("sim run violated an invariant: {v}"));
    h.verify_liveness(SimDuration::from_secs(10))
        .unwrap_or_else(|v| panic!("sim run did not stabilize: {v}"));
    let deliveries = (0..N)
        .map(|i| {
            (0..N)
                .map(|origin| {
                    h.sim()
                        .actor(i)
                        .delivery_log
                        .iter()
                        .filter(|(_, o, _, _)| o.0 as usize == origin)
                        .map(|&(_, _, seq, _)| seq)
                        .collect()
                })
                .collect()
        })
        .collect();
    let received = (0..N)
        .map(|i| {
            let node = h.sim().actor(i).inner();
            (0..N)
                .map(|s| node.recorder().get(NodeId(s as u16), node.me(), RECEIVED))
                .collect()
        })
        .collect();
    let frontiers = (0..N)
        .map(|s| {
            h.sim()
                .actor(s)
                .inner()
                .stability_frontier(NodeId(s as u16), KEY)
                .map(|(seq, _)| seq)
                .unwrap_or(0)
        })
        .collect();
    FinalState {
        deliveries,
        received,
        frontiers,
    }
}

fn tcp_run() -> FinalState {
    let mut cluster =
        ChaosTcpCluster::new(&ring_cfg(), SEED, &placement_plan(), placement_workload()).unwrap();
    cluster
        .run(Duration::from_millis(1000))
        .unwrap_or_else(|v| panic!("tcp run violated an invariant: {v}"));
    cluster
        .verify_liveness(Duration::from_secs(30))
        .unwrap_or_else(|v| panic!("tcp run did not stabilize: {v}"));
    let deliveries = (0..N)
        .map(|i| {
            (0..N)
                .map(|origin| {
                    cluster
                        .delivery_order(i)
                        .into_iter()
                        .filter(|(o, _)| *o as usize == origin)
                        .map(|(_, seq)| seq)
                        .collect()
                })
                .collect()
        })
        .collect();
    let received = cluster.received_table();
    let frontiers = (0..N)
        .map(|s| cluster.frontier(s, s, KEY).unwrap_or(0))
        .collect();
    cluster.shutdown();
    FinalState {
        deliveries,
        received,
        frontiers,
    }
}

#[test]
fn placement_aware_fault_plan_converges_identically_on_both_runtimes() {
    let sim = sim_run();
    let tcp = tcp_run();
    assert_eq!(
        sim, tcp,
        "partial replication drove the two runtimes to different converged state"
    );
    // Both runtimes did the real work: full streams stable at replicas.
    assert_eq!(sim.frontiers[0], 10);
    assert_eq!(sim.frontiers[3], 5);
    assert_eq!(sim.deliveries[1][0], (1..=10).collect::<Vec<_>>());
    for i in [0usize, 1] {
        assert_eq!(sim.deliveries[i][3], (1..=5).collect::<Vec<_>>());
    }
    // The crashed replica n2 recovered its hosted stream through the
    // §III-E snapshot path (the restart rebuilds the actor, so its
    // delivery log only holds post-restart upcalls — and every publish
    // predates the crash), but its RECEIVED state is whole again...
    assert_eq!(sim.received[2][0], 10);
    // ...while the streams it does NOT host stayed at zero through the
    // same recovery: catch-up is scoped to the replica set.
    assert_eq!(sim.received[2][3], 0);
    // And the non-replicas stayed dark on either runtime: n3 hosts no
    // copy of stream 0, n2 none of stream 3.
    assert!(sim.deliveries[3][0].is_empty());
    assert!(sim.deliveries[2][3].is_empty());
    assert_eq!(sim.received[3][0], 0);
}
