//! Differential tests: the same seeded workload and fault plan executed
//! on both runtimes — the deterministic netsim cluster and the real
//! threaded TCP cluster — must converge to the same protocol state.
//!
//! The two runtimes schedule differently (virtual event loop vs OS
//! threads and wall clock), so transient interleavings differ; what must
//! match is everything the protocol defines: which messages each node
//! delivers and in what per-origin order, every node's final RECEIVED
//! state, and each origin's final stability frontier. A divergence here
//! means the transport drives the sans-IO state machine differently
//! than the simulator — exactly the gap these tests pin shut.
//!
//! Faulted plans are timed so every publish burst quiesces before a
//! crash window opens: in-flight traffic at a crash boundary is decided
//! by racy transport timing, which is exactly the nondeterminism the
//! final-state comparison must not depend on.

use stabilizer_chaos::{
    ChaosHarness, ChaosTcpCluster, Fault, FaultEvent, FaultPlan, TimedWork, WorkItem,
};
use stabilizer_core::ClusterConfig;
use stabilizer_dsl::{NodeId, SeqNo, RECEIVED};
use stabilizer_netsim::{NetTopology, SimDuration};
use std::time::Duration;

const N: usize = 3;
const KEY: &str = "All";
const SEED: u64 = 1337;

fn cfg() -> ClusterConfig {
    // Failure detector and §III-E transfer enabled on both runtimes —
    // every chaos configuration runs with suspicion live.
    ClusterConfig::parse(
        "az East e1 e2\naz West w1\n\
         predicate All MIN($ALLWNODES-$MYWNODE)\n\
         option ack_flush_micros 2000\n\
         option heartbeat_millis 20\n\
         option retransmit_millis 40\n\
         option failure_timeout_millis 150\n\
         option retain_log_bytes 262144\n\
         option transfer_millis 20\n",
    )
    .unwrap()
}

fn workload() -> Vec<TimedWork> {
    let mut w: Vec<TimedWork> = (0..10)
        .map(|i| TimedWork {
            at: SimDuration::from_millis(10 + i * 20),
            item: WorkItem::Publish { node: 0, len: 48 },
        })
        .collect();
    w.extend((0..5).map(|i| TimedWork {
        at: SimDuration::from_millis(15 + i * 35),
        item: WorkItem::Publish { node: 2, len: 96 },
    }));
    w
}

/// Final state of one run: per-node per-origin delivery sequences,
/// the RECEIVED table, and per-origin frontiers.
#[derive(Debug, PartialEq, Eq)]
struct FinalState {
    deliveries: Vec<Vec<Vec<SeqNo>>>, // [node][origin] -> delivered seqs in order
    received: Vec<Vec<SeqNo>>,        // [node][stream]
    frontiers: Vec<SeqNo>,            // [origin] own-stream frontier under KEY
}

fn sim_run(plan: &FaultPlan, workload: Vec<TimedWork>, horizon: SimDuration) -> FinalState {
    let net = NetTopology::full_mesh(N, SimDuration::from_millis(5), 1e9);
    let mut h = ChaosHarness::new(&cfg(), net, SEED, plan, workload).unwrap();
    h.run(horizon)
        .unwrap_or_else(|v| panic!("sim run violated an invariant: {v}"));
    // Virtual-time liveness doubles as convergence: the final state is
    // only comparable once every published message has stabilized.
    h.verify_liveness(SimDuration::from_secs(10))
        .unwrap_or_else(|v| panic!("sim run did not stabilize: {v}"));
    let deliveries = (0..N)
        .map(|i| {
            (0..N)
                .map(|origin| {
                    h.sim()
                        .actor(i)
                        .delivery_log
                        .iter()
                        .filter(|(_, o, _, _)| o.0 as usize == origin)
                        .map(|&(_, _, seq, _)| seq)
                        .collect()
                })
                .collect()
        })
        .collect();
    let received = (0..N)
        .map(|i| {
            let node = h.sim().actor(i).inner();
            (0..N)
                .map(|s| node.recorder().get(NodeId(s as u16), node.me(), RECEIVED))
                .collect()
        })
        .collect();
    let frontiers = (0..N)
        .map(|s| {
            h.sim()
                .actor(s)
                .inner()
                .stability_frontier(NodeId(s as u16), KEY)
                .map(|(seq, _)| seq)
                .unwrap_or(0)
        })
        .collect();
    FinalState {
        deliveries,
        received,
        frontiers,
    }
}

fn tcp_run(plan: &FaultPlan, workload: Vec<TimedWork>, run_for: Duration) -> FinalState {
    let mut cluster = ChaosTcpCluster::new(&cfg(), SEED, plan, workload).unwrap();
    cluster
        .run(run_for)
        .unwrap_or_else(|v| panic!("tcp run violated an invariant: {v}"));
    cluster
        .verify_liveness(Duration::from_secs(30))
        .unwrap_or_else(|v| panic!("tcp run did not stabilize: {v}"));
    let deliveries = (0..N)
        .map(|i| {
            (0..N)
                .map(|origin| {
                    cluster
                        .delivery_order(i)
                        .into_iter()
                        .filter(|(o, _)| *o as usize == origin)
                        .map(|(_, seq)| seq)
                        .collect()
                })
                .collect()
        })
        .collect();
    let received = cluster.received_table();
    let frontiers = (0..N)
        .map(|s| cluster.frontier(s, s, KEY).unwrap_or(0))
        .collect();
    cluster.shutdown();
    FinalState {
        deliveries,
        received,
        frontiers,
    }
}

#[test]
fn netsim_and_tcp_converge_to_identical_final_state() {
    let plan = FaultPlan::default();
    let sim = sim_run(&plan, workload(), SimDuration::from_secs(10));
    let tcp = tcp_run(&plan, workload(), Duration::from_millis(400));
    assert_eq!(
        sim, tcp,
        "the two runtimes drove the same state machine to different outcomes"
    );
    // And both actually did the work: full streams delivered and stable.
    assert_eq!(sim.frontiers[0], 10);
    assert_eq!(sim.frontiers[2], 5);
    for (i, per_origin) in sim.deliveries.iter().enumerate() {
        if i != 0 {
            assert_eq!(per_origin[0], (1..=10).collect::<Vec<_>>());
        }
        if i != 2 {
            assert_eq!(per_origin[2], (1..=5).collect::<Vec<_>>());
        }
    }
}

#[test]
fn dup_reorder_converges_to_identical_final_state() {
    // Duplicate + reorder the busiest link (publisher 0 -> node 1) for
    // the whole publish window. The per-frame coin flips land differently
    // on the two runtimes — what must be identical is the converged
    // protocol state: delivery stays a per-origin prefix, so duplicated
    // and swapped frames change nothing the protocol defines.
    let plan = FaultPlan {
        events: vec![FaultEvent {
            at: SimDuration::from_millis(20),
            fault: Fault::DupReorder {
                from: 0,
                to: 1,
                dup_probability: 0.4,
                reorder_probability: 0.4,
                clear_after: SimDuration::from_millis(300),
            },
        }],
    };
    let sim = sim_run(&plan, workload(), SimDuration::from_secs(10));
    let tcp = tcp_run(&plan, workload(), Duration::from_millis(500));
    assert_eq!(
        sim, tcp,
        "dup/reorder made the runtimes diverge in converged state"
    );
    assert_eq!(sim.frontiers[0], 10);
    assert_eq!(sim.frontiers[2], 5);
    for (i, per_origin) in sim.deliveries.iter().enumerate() {
        if i != 0 {
            assert_eq!(per_origin[0], (1..=10).collect::<Vec<_>>());
        }
    }
}

/// Workload for the correlated-crash differential: a first burst that
/// fully quiesces before the crash window at 500ms, and a second burst
/// well after the last restart, so every delivery is unambiguously on
/// one side of the crash on both runtimes.
fn two_phase_workload() -> Vec<TimedWork> {
    let mut w: Vec<TimedWork> = (0..5)
        .map(|i| TimedWork {
            at: SimDuration::from_millis(10 + i * 20),
            item: WorkItem::Publish { node: 0, len: 48 },
        })
        .collect();
    w.extend((0..3).map(|i| TimedWork {
        at: SimDuration::from_millis(15 + i * 35),
        item: WorkItem::Publish { node: 2, len: 96 },
    }));
    w.extend((0..5).map(|i| TimedWork {
        at: SimDuration::from_millis(1100 + i * 20),
        item: WorkItem::Publish { node: 0, len: 48 },
    }));
    w.extend((0..2).map(|i| TimedWork {
        at: SimDuration::from_millis(1110 + i * 35),
        item: WorkItem::Publish { node: 2, len: 96 },
    }));
    w.sort_by_key(|w| w.at);
    w
}

#[test]
fn correlated_crash_converges_to_identical_final_state() {
    // Nodes 1 and 2 go down together (spread 20ms), restart staggered.
    // Both runtimes must resume delivery from the same snapshot point
    // and converge to the same totals after the second publish burst.
    let plan = FaultPlan {
        events: vec![FaultEvent {
            at: SimDuration::from_millis(500),
            fault: Fault::CorrelatedCrash {
                nodes: vec![1, 2],
                spread: SimDuration::from_millis(20),
                down_for: SimDuration::from_millis(200),
                stagger: SimDuration::from_millis(50),
            },
        }],
    };
    let sim = sim_run(&plan, two_phase_workload(), SimDuration::from_secs(10));
    let tcp = tcp_run(&plan, two_phase_workload(), Duration::from_millis(1400));
    assert_eq!(
        sim, tcp,
        "correlated crash made the runtimes diverge in converged state"
    );
    // Phase-1 deliveries landed before the crash, so the restarted
    // incarnations' logs hold exactly the phase-2 suffix.
    assert_eq!(sim.frontiers[0], 10);
    assert_eq!(sim.frontiers[2], 5);
    for i in [1usize, 2] {
        assert_eq!(
            sim.deliveries[i][0],
            (6..=10).collect::<Vec<_>>(),
            "node {i} should resume stream 0 after the snapshot point"
        );
    }
    assert_eq!(sim.deliveries[0][2], (1..=5).collect::<Vec<_>>());
    assert_eq!(sim.deliveries[1][2], (4..=5).collect::<Vec<_>>());
}
