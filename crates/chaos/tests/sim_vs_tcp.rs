//! Differential test: one fixed seeded workload, no faults, executed on
//! both runtimes — the deterministic netsim cluster and the real
//! threaded TCP cluster — must converge to the same protocol state.
//!
//! The two runtimes schedule differently (virtual event loop vs OS
//! threads and wall clock), so transient interleavings differ; what must
//! match is everything the protocol defines: which messages each node
//! delivers and in what per-origin order, every node's final RECEIVED
//! state, and each origin's final stability frontier. A divergence here
//! means the transport drives the sans-IO state machine differently
//! than the simulator — exactly the gap this test pins shut.

use stabilizer_chaos::{ChaosHarness, ChaosTcpCluster, FaultPlan, TimedWork, WorkItem};
use stabilizer_core::ClusterConfig;
use stabilizer_dsl::{NodeId, SeqNo, RECEIVED};
use stabilizer_netsim::{NetTopology, SimDuration};
use std::time::Duration;

const N: usize = 3;
const KEY: &str = "All";
const SEED: u64 = 1337;

fn cfg() -> ClusterConfig {
    // Failure detector and §III-E transfer enabled on both runtimes —
    // every chaos configuration runs with suspicion live.
    ClusterConfig::parse(
        "az East e1 e2\naz West w1\n\
         predicate All MIN($ALLWNODES-$MYWNODE)\n\
         option ack_flush_micros 2000\n\
         option heartbeat_millis 20\n\
         option retransmit_millis 40\n\
         option failure_timeout_millis 150\n\
         option retain_log_bytes 262144\n\
         option transfer_millis 20\n",
    )
    .unwrap()
}

fn workload() -> Vec<TimedWork> {
    let mut w: Vec<TimedWork> = (0..10)
        .map(|i| TimedWork {
            at: SimDuration::from_millis(10 + i * 20),
            item: WorkItem::Publish { node: 0, len: 48 },
        })
        .collect();
    w.extend((0..5).map(|i| TimedWork {
        at: SimDuration::from_millis(15 + i * 35),
        item: WorkItem::Publish { node: 2, len: 96 },
    }));
    w
}

/// Final state of one run: per-node per-origin delivery sequences,
/// the RECEIVED table, and per-origin frontiers.
#[derive(Debug, PartialEq, Eq)]
struct FinalState {
    deliveries: Vec<Vec<Vec<SeqNo>>>, // [node][origin] -> delivered seqs in order
    received: Vec<Vec<SeqNo>>,        // [node][stream]
    frontiers: Vec<SeqNo>,            // [origin] own-stream frontier under KEY
}

fn sim_run() -> FinalState {
    let net = NetTopology::full_mesh(N, SimDuration::from_millis(5), 1e9);
    let mut h = ChaosHarness::new(&cfg(), net, SEED, &FaultPlan::default(), workload()).unwrap();
    h.run(SimDuration::from_secs(10))
        .unwrap_or_else(|v| panic!("sim run violated an invariant: {v}"));
    let deliveries = (0..N)
        .map(|i| {
            (0..N)
                .map(|origin| {
                    h.sim()
                        .actor(i)
                        .delivery_log
                        .iter()
                        .filter(|(_, o, _, _)| o.0 as usize == origin)
                        .map(|&(_, _, seq, _)| seq)
                        .collect()
                })
                .collect()
        })
        .collect();
    let received = (0..N)
        .map(|i| {
            let node = h.sim().actor(i).inner();
            (0..N)
                .map(|s| node.recorder().get(NodeId(s as u16), node.me(), RECEIVED))
                .collect()
        })
        .collect();
    let frontiers = (0..N)
        .map(|s| {
            h.sim()
                .actor(s)
                .inner()
                .stability_frontier(NodeId(s as u16), KEY)
                .map(|(seq, _)| seq)
                .unwrap_or(0)
        })
        .collect();
    FinalState {
        deliveries,
        received,
        frontiers,
    }
}

fn tcp_run() -> FinalState {
    let mut cluster =
        ChaosTcpCluster::new(&cfg(), SEED, &FaultPlan::default(), workload()).unwrap();
    cluster
        .run(Duration::from_millis(400))
        .unwrap_or_else(|v| panic!("tcp run violated an invariant: {v}"));
    cluster
        .verify_liveness(Duration::from_secs(30))
        .unwrap_or_else(|v| panic!("tcp run did not stabilize: {v}"));
    let deliveries = (0..N)
        .map(|i| {
            (0..N)
                .map(|origin| {
                    cluster
                        .delivery_order(i)
                        .into_iter()
                        .filter(|(o, _)| *o as usize == origin)
                        .map(|(_, seq)| seq)
                        .collect()
                })
                .collect()
        })
        .collect();
    let received = cluster.received_table();
    let frontiers = (0..N)
        .map(|s| cluster.frontier(s, s, KEY).unwrap_or(0))
        .collect();
    cluster.shutdown();
    FinalState {
        deliveries,
        received,
        frontiers,
    }
}

#[test]
fn netsim_and_tcp_converge_to_identical_final_state() {
    let sim = sim_run();
    let tcp = tcp_run();
    assert_eq!(
        sim, tcp,
        "the two runtimes drove the same state machine to different outcomes"
    );
    // And both actually did the work: full streams delivered and stable.
    assert_eq!(sim.frontiers[0], 10);
    assert_eq!(sim.frontiers[2], 5);
    for (i, per_origin) in sim.deliveries.iter().enumerate() {
        if i != 0 {
            assert_eq!(per_origin[0], (1..=10).collect::<Vec<_>>());
        }
        if i != 2 {
            assert_eq!(per_origin[2], (1..=5).collect::<Vec<_>>());
        }
    }
}
