//! Property test for §III-E recovery: randomized crash/rejoin/join
//! schedules over randomized topologies, asserting that every safety
//! invariant holds throughout and that the cluster is *live* — every
//! message published before the last fault clears stabilizes once the
//! network has been quiet long enough.
//!
//! The publisher (node 0) is never faulted, so the full stream is
//! always published; each other node may crash/restart once or join
//! late once. The retained log is kept deliberately small (2 KiB) so
//! crash windows past the failure timeout routinely force the
//! snapshot fast-forward path, not just plain replay.

use proptest::prelude::*;
use stabilizer_chaos::{ChaosHarness, Fault, FaultEvent, FaultPlan, TimedWork, WorkItem};
use stabilizer_core::ClusterConfig;
use stabilizer_dsl::{NodeId, RECEIVED};
use stabilizer_netsim::{NetTopology, SimDuration};

/// One randomized recovery scenario.
#[derive(Debug, Clone)]
struct Schedule {
    seed: u64,
    n: usize,
    publish_count: usize,
    /// `(node, at_ms, crash_down_ms)`; `None` down-time means the node
    /// is absent at boot and joins at `at_ms` instead.
    faults: Vec<(usize, u64, Option<u64>)>,
}

fn cfg(n: usize) -> ClusterConfig {
    // Split the nodes over two azs so the predicate macros see a
    // non-trivial topology regardless of n.
    let split = n / 2;
    let mut text = String::from("az East");
    for i in 0..split {
        text.push_str(&format!(" w{i}"));
    }
    text.push_str("\naz West");
    for i in split..n {
        text.push_str(&format!(" w{i}"));
    }
    text.push_str(
        "\npredicate All MIN($ALLWNODES-$MYWNODE)\n\
         option ack_flush_micros 1000\n\
         option heartbeat_millis 20\n\
         option retransmit_millis 40\n\
         option failure_timeout_millis 120\n\
         option retain_log_bytes 2048\n\
         option transfer_millis 20\n\
         option transfer_window 4\n",
    );
    ClusterConfig::parse(&text).unwrap()
}

fn schedules() -> impl Strategy<Value = Schedule> {
    (3usize..=5).prop_flat_map(|n| {
        (
            any::<u64>(),
            8usize..=20,
            proptest::collection::vec(
                (1..n, 100u64..600, proptest::option::of(150u64..400)),
                1..=2,
            ),
        )
            .prop_map(move |(seed, publish_count, raw)| {
                // At most one fault per node: a node can't join twice,
                // and a joiner can't have crashed before it existed.
                let mut faults: Vec<(usize, u64, Option<u64>)> = Vec::new();
                for f in raw {
                    if !faults.iter().any(|g| g.0 == f.0) {
                        faults.push(f);
                    }
                }
                Schedule {
                    seed,
                    n,
                    publish_count,
                    faults,
                }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn randomized_recovery_schedules_stay_safe_and_live(s in schedules()) {
        let cfg = cfg(s.n);
        let net = NetTopology::full_mesh(s.n, SimDuration::from_millis(5), 1e9);
        let plan = FaultPlan {
            events: s
                .faults
                .iter()
                .map(|&(node, at, down)| FaultEvent {
                    at: SimDuration::from_millis(at),
                    fault: match down {
                        Some(down_ms) => Fault::CrashRestart {
                            node,
                            down_for: SimDuration::from_millis(down_ms),
                        },
                        None => Fault::Join { node },
                    },
                })
                .collect(),
        };
        let workload: Vec<TimedWork> = (0..s.publish_count)
            .map(|i| TimedWork {
                at: SimDuration::from_millis(10 + i as u64 * 20),
                item: WorkItem::Publish { node: 0, len: 64 },
            })
            .collect();

        // Every fault clears by 600 + 400 = 1000 ms and publishing ends
        // by 410 ms; everything after that is quiet time for catch-up.
        let mut h = ChaosHarness::new(&cfg, net, s.seed, &plan, workload).unwrap();
        let report = h.run(SimDuration::from_millis(4500));
        prop_assert!(report.is_ok(), "safety violation in {s:?}: {:?}", report.err());

        // Liveness: the whole published stream is received everywhere
        // and the origin's MIN-of-everyone frontier is fully satisfied.
        let target = s.publish_count as u64;
        for i in 1..s.n {
            let node = h.sim().actor(i).inner();
            let got = node.recorder().get(NodeId(0), node.me(), RECEIVED);
            prop_assert_eq!(
                got, target,
                "node {} stalled at {}/{} in {:?}", i, got, target, &s
            );
        }
        let frontier = h
            .sim()
            .actor(0)
            .inner()
            .stability_frontier(NodeId(0), "All")
            .map(|(seq, _)| seq)
            .unwrap_or(0);
        prop_assert_eq!(frontier, target, "frontier stalled in {:?}", &s);
    }
}
