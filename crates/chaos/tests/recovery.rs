//! The §III-E recovery suite: crash-past-eviction and live-join
//! scenarios on both runtimes, proving snapshot + retained-log catch-up
//! brings a node all the way back into a satisfied stability frontier.
//!
//! Structure:
//! - simulator: crash past the eviction window (small retained log
//!   forces a snapshot fast-forward), resumable transfer across a second
//!   crash, and a live membership join;
//! - TCP: the same crash-past-eviction and join scenarios over real
//!   sockets, plus the pre-fix stall regression pin (`transfer_millis
//!   0` reproduces the permanent stall the detector-off escape hatch
//!   used to hide; enabling transfer resolves it);
//! - differential: the same seeded recovery scenario on both runtimes
//!   must converge to the same post-recovery protocol state.

use stabilizer_chaos::{
    ChaosHarness, ChaosTcpCluster, Fault, FaultEvent, FaultPlan, TimedWork, WorkItem,
};
use stabilizer_core::ClusterConfig;
use stabilizer_dsl::{NodeId, SeqNo, RECEIVED};
use stabilizer_netsim::{NetTopology, SimDuration};
use std::time::Duration;

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// Three nodes, failure detector ON, §III-E transfer armed. The tiny
/// retained log (`retain_log_bytes`) is the point: a crash window longer
/// than `failure_timeout_millis` evicts the suspect from send-buffer
/// retention, the retained log only keeps the tail, and recovery *must*
/// fast-forward over the evicted prefix (a visible catch-up event)
/// before replaying the rest.
fn recovery_cfg(transfer_millis: u64, retain_log_bytes: u64) -> ClusterConfig {
    ClusterConfig::parse(&format!(
        "az East e1 e2\naz West w1\n\
         predicate All MIN($ALLWNODES-$MYWNODE)\n\
         option ack_flush_micros 1000\n\
         option heartbeat_millis 20\n\
         option retransmit_millis 40\n\
         option failure_timeout_millis 120\n\
         option retain_log_bytes {retain_log_bytes}\n\
         option transfer_millis {transfer_millis}\n\
         option transfer_window 4\n"
    ))
    .unwrap()
}

fn publishes(node: usize, count: usize, every_ms: u64, len: usize) -> Vec<TimedWork> {
    (0..count)
        .map(|i| TimedWork {
            at: ms(10 + i as u64 * every_ms),
            item: WorkItem::Publish { node, len },
        })
        .collect()
}

fn crash(node: usize, at: u64, down_for: u64) -> FaultEvent {
    FaultEvent {
        at: ms(at),
        fault: Fault::CrashRestart {
            node,
            down_for: ms(down_for),
        },
    }
}

// ---------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------

#[test]
fn sim_crash_past_eviction_recovers_via_snapshot_catch_up() {
    let cfg = recovery_cfg(20, 600);
    let net = NetTopology::full_mesh(3, ms(5), 1e9);
    let plan = FaultPlan {
        events: vec![crash(2, 100, 600)],
    };
    let mut h = ChaosHarness::new(&cfg, net, 21, &plan, publishes(0, 25, 20, 64)).unwrap();
    h.run(ms(4000))
        .unwrap_or_else(|v| panic!("safety violation: {v}"));

    // The restarted node was fast-forwarded out of band at least once:
    // the donor's retained log (600 bytes) cannot cover the whole
    // eviction gap, so recovery had to jump via the snapshot.
    let catchups = &h.sim().actor(2).catchup_log;
    assert!(
        catchups.iter().any(|&(_, stream, _)| stream == NodeId(0)),
        "no catch-up event for stream 0 on the restarted node: {catchups:?}"
    );

    // Full re-participation: node 2 holds the entire stream again...
    let n2 = h.sim().actor(2).inner();
    assert_eq!(n2.recorder().get(NodeId(0), NodeId(2), RECEIVED), 25);
    // ...and the origin's frontier under the MIN-of-everyone predicate
    // (which needs node 2's acknowledgments) is fully satisfied.
    let frontier = h
        .sim()
        .actor(0)
        .inner()
        .stability_frontier(NodeId(0), "All")
        .map(|(seq, _)| seq)
        .unwrap_or(0);
    assert_eq!(frontier, 25, "origin frontier not satisfied after rejoin");
}

#[test]
fn sim_transfer_resumes_across_a_second_crash() {
    // transfer_window 1 + 5 ms links make the transfer take many
    // round-trips, so the second crash lands mid-transfer; the third
    // incarnation restarts catch-up from its (partially caught-up)
    // snapshot rather than from scratch, and still converges.
    let cfg = ClusterConfig::parse(
        "az East e1 e2\naz West w1\n\
         predicate All MIN($ALLWNODES-$MYWNODE)\n\
         option ack_flush_micros 1000\n\
         option heartbeat_millis 20\n\
         option retransmit_millis 40\n\
         option failure_timeout_millis 120\n\
         option retain_log_bytes 600\n\
         option transfer_millis 20\n\
         option transfer_window 1\n",
    )
    .unwrap();
    let net = NetTopology::full_mesh(3, ms(5), 1e9);
    let plan = FaultPlan {
        events: vec![crash(2, 100, 500), crash(2, 680, 250)],
    };
    let mut h = ChaosHarness::new(&cfg, net, 33, &plan, publishes(0, 25, 18, 64)).unwrap();
    let report = h
        .run(ms(5000))
        .unwrap_or_else(|v| panic!("safety violation: {v}"));
    assert!(report.dropped > 0, "both crash windows should drop traffic");

    let n2 = h.sim().actor(2).inner();
    assert_eq!(
        n2.recorder().get(NodeId(0), NodeId(2), RECEIVED),
        25,
        "stream 0 did not fully recover across the interrupted transfer"
    );
    let frontier = h
        .sim()
        .actor(0)
        .inner()
        .stability_frontier(NodeId(0), "All")
        .map(|(seq, _)| seq)
        .unwrap_or(0);
    assert_eq!(frontier, 25);
}

#[test]
fn sim_live_join_catches_up_and_joins_the_frontier() {
    // Node 2 is absent from boot and joins at 500 ms — after the whole
    // stream was published and (past the failure timeout) evicted from
    // retention for the missing member. The joiner starts from nothing:
    // everything it gets comes through §III-E transfer.
    let cfg = recovery_cfg(20, 600);
    let net = NetTopology::full_mesh(3, ms(5), 1e9);
    let plan = FaultPlan {
        events: vec![FaultEvent {
            at: ms(500),
            fault: Fault::Join { node: 2 },
        }],
    };
    let mut h = ChaosHarness::new(&cfg, net, 55, &plan, publishes(0, 20, 20, 64)).unwrap();
    h.run(ms(4000))
        .unwrap_or_else(|v| panic!("safety violation: {v}"));

    let n2 = h.sim().actor(2).inner();
    assert_eq!(
        n2.recorder().get(NodeId(0), NodeId(2), RECEIVED),
        20,
        "the joiner did not catch up on stream 0"
    );
    assert!(
        !h.sim().actor(2).catchup_log.is_empty(),
        "a fresh joiner past the eviction window must fast-forward"
    );
    let frontier = h
        .sim()
        .actor(0)
        .inner()
        .stability_frontier(NodeId(0), "All")
        .map(|(seq, _)| seq)
        .unwrap_or(0);
    assert_eq!(
        frontier, 20,
        "the MIN-of-everyone frontier must be satisfied once the joiner is in"
    );
}

#[test]
fn sim_recovery_replays_deterministically() {
    let run = || {
        let cfg = recovery_cfg(20, 600);
        let net = NetTopology::full_mesh(3, ms(5), 1e9);
        let plan = FaultPlan {
            events: vec![
                crash(2, 100, 600),
                FaultEvent {
                    at: ms(150),
                    fault: Fault::Join { node: 1 },
                },
            ],
        };
        let mut h = ChaosHarness::new(&cfg, net, 77, &plan, publishes(0, 15, 25, 64)).unwrap();
        h.run(ms(3500))
            .unwrap_or_else(|v| panic!("safety violation: {v}"))
            .trace_hash
    };
    assert_eq!(
        run(),
        run(),
        "recovery paths leaked nondeterminism into the trace"
    );
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

#[test]
fn tcp_crash_past_eviction_recovers_via_snapshot_catch_up() {
    let cfg = recovery_cfg(20, 1024);
    let plan = FaultPlan {
        events: vec![crash(1, 200, 400)],
    };
    let mut cluster = ChaosTcpCluster::new(&cfg, 91, &plan, publishes(0, 25, 25, 64)).unwrap();
    cluster
        .run(Duration::from_millis(1200))
        .unwrap_or_else(|v| panic!("safety violation: {v}"));
    cluster
        .verify_liveness(Duration::from_secs(30))
        .unwrap_or_else(|v| panic!("liveness violation: {v}"));

    let catchups = cluster.catchup_events(1);
    assert!(
        catchups.iter().any(|&(stream, _)| stream == 0),
        "restarted node recovered without a catch-up event: {catchups:?}"
    );
    let table = cluster.received_table();
    assert_eq!(table[1][0], 25, "node 1 is missing stream 0 traffic");
    assert_eq!(
        cluster.frontier(0, 0, "All").unwrap_or(0),
        25,
        "origin frontier not satisfied after the rejoin"
    );
    cluster.shutdown();
}

#[test]
fn tcp_live_join_catches_up_and_joins_the_frontier() {
    let cfg = recovery_cfg(20, 1024);
    let plan = FaultPlan {
        events: vec![FaultEvent {
            at: ms(500),
            fault: Fault::Join { node: 2 },
        }],
    };
    let mut cluster = ChaosTcpCluster::new(&cfg, 92, &plan, publishes(0, 20, 20, 64)).unwrap();
    cluster
        .run(Duration::from_millis(900))
        .unwrap_or_else(|v| panic!("safety violation: {v}"));
    cluster
        .verify_liveness(Duration::from_secs(30))
        .unwrap_or_else(|v| panic!("liveness violation: {v}"));

    let table = cluster.received_table();
    assert_eq!(table[2][0], 20, "the joiner did not catch up on stream 0");
    assert_eq!(
        cluster.frontier(0, 0, "All").unwrap_or(0),
        20,
        "the frontier must be satisfied once the joiner is in"
    );
    cluster.shutdown();
}

/// The pre-fix permanent stall, pinned: failure detector ON, a crash
/// window past the eviction timeout, retransmission running — and
/// `transfer_millis 0` (state transfer disabled). The donor evicts the
/// tail the restarted node needs, retransmit cannot resupply it, and
/// liveness never converges. This is exactly the stall the old
/// `failure-detector-off` escape hatch in these scenarios papered over.
#[test]
fn tcp_eviction_without_transfer_stalls_permanently() {
    let cfg = recovery_cfg(0, 0); // transfer disabled, nothing retained
    let plan = FaultPlan {
        events: vec![crash(1, 200, 400)],
    };
    let mut cluster = ChaosTcpCluster::new(&cfg, 93, &plan, publishes(0, 20, 25, 64)).unwrap();
    // Safety still holds throughout — the stall is a liveness failure.
    cluster
        .run(Duration::from_millis(1100))
        .unwrap_or_else(|v| panic!("safety violation: {v}"));
    let violation = cluster
        .verify_liveness(Duration::from_secs(2))
        .expect_err("eviction without state transfer must stall");
    assert_eq!(violation.property, "post-fault-liveness");
    cluster.shutdown();
}

/// The same scenario with transfer enabled converges — the regression
/// guard for the fix itself.
#[test]
fn tcp_transfer_resolves_the_eviction_stall() {
    let cfg = recovery_cfg(20, 1024);
    let plan = FaultPlan {
        events: vec![crash(1, 200, 400)],
    };
    let mut cluster = ChaosTcpCluster::new(&cfg, 93, &plan, publishes(0, 20, 25, 64)).unwrap();
    cluster
        .run(Duration::from_millis(1100))
        .unwrap_or_else(|v| panic!("safety violation: {v}"));
    cluster
        .verify_liveness(Duration::from_secs(30))
        .unwrap_or_else(|v| panic!("the stall is supposed to be fixed: {v}"));
    cluster.shutdown();
}

// ---------------------------------------------------------------------
// Differential: netsim vs TCP after recovery
// ---------------------------------------------------------------------

/// Post-recovery protocol state must agree across runtimes for the same
/// seeded scenario. Exact delivery logs can differ *on the recovering
/// node only* (its snapshot point, and therefore how much arrives via
/// fast-forward vs replay, is timing-dependent on TCP); what must match
/// is everything the protocol defines: final RECEIVED tables, final
/// frontier sequences, and — per node and origin — that catch-ups plus
/// deliveries compose to exactly the full published prefix.
#[test]
fn netsim_and_tcp_agree_on_post_recovery_state() {
    const SEED: u64 = 4242;
    const PUBLISHED: SeqNo = 12;
    let cfg = recovery_cfg(20, 262_144);
    let plan = FaultPlan {
        events: vec![crash(1, 150, 300)],
    };
    let workload = publishes(0, PUBLISHED as usize, 30, 48);

    // Simulator leg.
    let net = NetTopology::full_mesh(3, ms(5), 1e9);
    let mut h = ChaosHarness::new(&cfg, net, SEED, &plan, workload.clone()).unwrap();
    h.run(ms(6000))
        .unwrap_or_else(|v| panic!("sim safety violation: {v}"));
    let sim_received: Vec<Vec<SeqNo>> = (0..3)
        .map(|i| {
            let node = h.sim().actor(i).inner();
            (0..3)
                .map(|s| node.recorder().get(NodeId(s as u16), node.me(), RECEIVED))
                .collect()
        })
        .collect();
    let sim_frontier = h
        .sim()
        .actor(0)
        .inner()
        .stability_frontier(NodeId(0), "All")
        .map(|(seq, _)| seq)
        .unwrap_or(0);
    let sim_coverage: Vec<SeqNo> = (1..3)
        .map(|i| {
            let catchup_floor = h
                .sim()
                .actor(i)
                .catchup_log
                .iter()
                .filter(|&&(_, s, _)| s == NodeId(0))
                .map(|&(_, _, seq)| seq)
                .max()
                .unwrap_or(0);
            covered_prefix(
                catchup_floor,
                h.sim()
                    .actor(i)
                    .delivery_log
                    .iter()
                    .filter(|&&(_, o, _, _)| o == NodeId(0))
                    .map(|&(_, _, seq, _)| seq),
            )
        })
        .collect();

    // TCP leg.
    let mut cluster = ChaosTcpCluster::new(&cfg, SEED, &plan, workload).unwrap();
    cluster
        .run(Duration::from_millis(1000))
        .unwrap_or_else(|v| panic!("tcp safety violation: {v}"));
    cluster
        .verify_liveness(Duration::from_secs(30))
        .unwrap_or_else(|v| panic!("tcp liveness violation: {v}"));
    let tcp_received = cluster.received_table();
    let tcp_frontier = cluster.frontier(0, 0, "All").unwrap_or(0);
    let tcp_coverage: Vec<SeqNo> = (1..3)
        .map(|i| {
            let catchup_floor = cluster
                .catchup_events(i)
                .iter()
                .filter(|&&(s, _)| s == 0)
                .map(|&(_, seq)| seq)
                .max()
                .unwrap_or(0);
            covered_prefix(
                catchup_floor,
                cluster
                    .delivery_order(i)
                    .into_iter()
                    .filter(|&(o, _)| o == 0)
                    .map(|(_, seq)| seq),
            )
        })
        .collect();
    cluster.shutdown();

    assert_eq!(sim_received, tcp_received, "RECEIVED tables diverged");
    assert_eq!(sim_frontier, tcp_frontier, "frontier sequences diverged");
    assert_eq!(sim_frontier, PUBLISHED);
    assert_eq!(
        sim_coverage, tcp_coverage,
        "post-recovery stream coverage diverged"
    );
    assert!(
        sim_coverage.iter().all(|&c| c == PUBLISHED),
        "both runtimes must cover the full published prefix, got {sim_coverage:?}"
    );
}

/// Highest `p` such that `1..=p` of the stream is covered by the
/// catch-up floor plus in-band deliveries (the current incarnation's
/// view; deliveries before the last restart arrive via the snapshot and
/// are subsumed by `catchup_floor` or the replayed suffix).
fn covered_prefix(catchup_floor: SeqNo, delivers: impl Iterator<Item = SeqNo>) -> SeqNo {
    let mut seqs: Vec<SeqNo> = delivers.filter(|&s| s > catchup_floor).collect();
    seqs.sort_unstable();
    seqs.dedup();
    let mut covered = catchup_floor;
    for s in seqs {
        if s == covered + 1 {
            covered = s;
        }
    }
    covered
}
