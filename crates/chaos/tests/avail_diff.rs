//! Differential validation of the availability prover against the
//! virtual-time simulator: every minimal blocking set the prover claims
//! for a config must, when crashed, actually stall the vantage's
//! frontier (tripping `post-fault-liveness` with blame inside the
//! claimed set), and random crash sets within the claimed tolerance
//! `f*` must leave the vantage live. The prover reasons purely over the
//! predicate AST and topology; the simulator runs the real protocol —
//! agreement between the two is the whole point of the audit.

use rand::prelude::*;
use stabilizer_analyze::availability;
use stabilizer_chaos::{ChaosHarness, Fault, FaultEvent, FaultPlan, TimedWork, WorkItem};
use stabilizer_core::{ClusterConfig, NodeId};
use stabilizer_dsl::{AckTypeRegistry, Predicate};
use stabilizer_netsim::{NetTopology, SimDuration};
use std::collections::BTreeMap;

/// The partial-replication deployment the docs walk through.
const PLACEMENT_CFG: &str = include_str!("../../../configs/placement-6node.cfg");

/// A full-replication deployment exercising MIN, quorum, and MAX shapes
/// (explicit timing options: the harness needs heartbeats and
/// retransmission to settle the survivors).
const FULL_CFG: &str = "az A a1 a2\naz B b1 b2\n\
    predicate All MIN($ALLWNODES-$MYWNODE)\n\
    predicate Quorum KTH_MAX(2, $ALLWNODES-$MYWNODE)\n\
    predicate One MAX($ALLWNODES-$MYWNODE)\n\
    option ack_flush_micros 2000\n\
    option heartbeat_millis 50\n\
    option failure_timeout_millis 300\n\
    option retransmit_millis 100\n";

/// The prover's verdict for one (vantage, key): the predicate as
/// installed (replica-restricted), its minimal blocking sets, and `f*`.
struct Claim {
    vantage: NodeId,
    key: String,
    blocking_sets: Vec<Vec<NodeId>>,
    tolerance: i64,
}

fn prove(cfg: &ClusterConfig) -> Vec<Claim> {
    let acks = AckTypeRegistry::new();
    for (name, _) in cfg.ack_types() {
        acks.register(name);
    }
    let mut out = Vec::new();
    for v in cfg.topology().all_nodes() {
        for (key, src) in cfg.predicates() {
            let pred = Predicate::compile(src, cfg.topology(), &acks, v)
                .expect("config predicate compiles")
                .restricted_to(cfg.placement().replicas(v))
                .expect("replica restriction succeeds");
            let a = availability(&pred, cfg.topology(), v);
            out.push(Claim {
                vantage: v,
                key: key.to_owned(),
                blocking_sets: a.blocking_sets,
                tolerance: a.tolerance,
            });
        }
    }
    out
}

/// Crash `down` permanently at 50ms, publish six items at `vantage`
/// from 100ms on, and return the harness ready to run.
fn harness(cfg: &ClusterConfig, seed: u64, down: &[NodeId], vantage: NodeId) -> ChaosHarness {
    let n = cfg.num_nodes();
    let net = NetTopology::full_mesh(n, SimDuration::from_millis(5), 1e9);
    let plan = FaultPlan {
        events: down
            .iter()
            .map(|nd| FaultEvent {
                at: SimDuration::from_millis(50),
                // Far past the horizon: a permanent crash.
                fault: Fault::CrashRestart {
                    node: nd.0 as usize,
                    down_for: SimDuration::from_secs(3600),
                },
            })
            .collect(),
    };
    let workload: Vec<TimedWork> = (0..6)
        .map(|i| TimedWork {
            at: SimDuration::from_millis(100 + i * 32),
            item: WorkItem::Publish {
                node: vantage.0 as usize,
                len: 32,
            },
        })
        .collect();
    ChaosHarness::new(cfg, net, seed, &plan, workload).expect("valid scenario")
}

/// Crash every claimed minimal blocking set: the run must fail
/// `post-fault-liveness`, and the vantage's own stall report must blame
/// only nodes inside the claimed set. Runs are deduplicated on
/// (vantage, set) — co-installed keys sharing a set share the sim.
fn assert_claims_stall(cfg_text: &str, seed: u64) {
    let cfg = ClusterConfig::parse(cfg_text).expect("config parses");
    let mut by_run: BTreeMap<(u16, Vec<u16>), Vec<String>> = BTreeMap::new();
    for c in prove(&cfg) {
        for set in &c.blocking_sets {
            if set.is_empty() {
                continue; // blocked outright, not by crashes
            }
            by_run
                .entry((c.vantage.0, set.iter().map(|n| n.0).collect()))
                .or_default()
                .push(c.key.clone());
        }
    }
    assert!(!by_run.is_empty(), "the prover claimed no blocking sets");
    for ((v, set), keys) in by_run {
        let down: Vec<NodeId> = set.iter().map(|&i| NodeId(i)).collect();
        let mut h = harness(&cfg, seed, &down, NodeId(v));
        h.run(SimDuration::from_secs(2))
            .expect("safety holds under crashes");
        let err = h
            .verify_liveness(SimDuration::from_secs(5))
            .expect_err("crashing a claimed blocking set must stall the cluster");
        assert_eq!(err.property, "post-fault-liveness");
        let stalled = h.stall_reports();
        for key in keys {
            let (_, report) = stalled
                .iter()
                .find(|(obs, r)| *obs == v && r.stream == NodeId(v) && r.key == key && r.stalled)
                .unwrap_or_else(|| {
                    panic!("claimed blocking set {set:?} did not stall {key} at node {v}")
                });
            for b in &report.blamed {
                assert!(
                    set.contains(&b.node.0),
                    "blame names {} outside the claimed blocking set {set:?} for {key} at {v}: {}",
                    b.node.0,
                    report.render_human()
                );
            }
        }
    }
}

/// Random crash sets within `f*` must leave the vantage live: after the
/// run its own stability frontier reaches its last publish. The
/// crashed replicas' RECEIVED gaps would trip `verify_liveness`, so the
/// vantage frontier is asserted directly.
fn assert_tolerant_sets_stay_live(cfg_text: &str, seed: u64, draws: usize) {
    let cfg = ClusterConfig::parse(cfg_text).expect("config parses");
    let claims: Vec<Claim> = prove(&cfg)
        .into_iter()
        .filter(|c| c.tolerance >= 1)
        .collect();
    assert!(!claims.is_empty(), "no claim with f* >= 1 to validate");
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..draws {
        let c = &claims[rng.gen_range(0..claims.len())];
        let mut others: Vec<NodeId> = cfg
            .topology()
            .all_nodes()
            .into_iter()
            .filter(|&n| n != c.vantage)
            .collect();
        let size = rng.gen_range(1..=(c.tolerance as usize).min(others.len()));
        let mut down = Vec::with_capacity(size);
        for _ in 0..size {
            down.push(others.swap_remove(rng.gen_range(0..others.len())));
        }
        let mut h = harness(&cfg, seed ^ 0x5eed, &down, c.vantage);
        h.run(SimDuration::from_secs(2))
            .expect("safety holds under crashes");
        let node = h.sim().actor(c.vantage.0 as usize).inner();
        let target = node.last_published();
        let (frontier, _) = node
            .stability_frontier(c.vantage, &c.key)
            .expect("configured key is installed");
        assert!(
            frontier >= target,
            "crashing {:?} (within f* = {}) stalled {} at {}: frontier {frontier} < {target}",
            down,
            c.tolerance,
            c.key,
            cfg.topology().node_name(c.vantage),
        );
    }
}

#[test]
fn placement_claimed_blocking_sets_stall_the_sim() {
    assert_claims_stall(PLACEMENT_CFG, 7);
}

#[test]
fn full_replication_claimed_blocking_sets_stall_the_sim() {
    assert_claims_stall(FULL_CFG, 7);
}

#[test]
fn placement_crashes_within_tolerance_stay_live() {
    assert_tolerant_sets_stay_live(PLACEMENT_CFG, 11, 10);
    assert_tolerant_sets_stay_live(PLACEMENT_CFG, 12, 10);
}

#[test]
fn full_replication_crashes_within_tolerance_stay_live() {
    assert_tolerant_sets_stay_live(FULL_CFG, 11, 10);
    assert_tolerant_sets_stay_live(FULL_CFG, 12, 10);
}
