//! The randomized chaos sweep, seed replay, determinism fingerprint,
//! and (feature-gated) recorder mutation tests.
//!
//! Normal builds run the sweep and expect zero violations. Builds with
//! `--features chaos-unclamped-acks` deliberately break the ACK
//! recorder's monotonic clamp and expect the invariant checker to catch
//! it — proving the checker actually has teeth.

use stabilizer_chaos::{minimize_plan, Scenario};

/// Replay one scenario from `CHAOS_SEED` (printed by a failing sweep).
/// Without the variable this is a no-op, so the test is always safe to
/// run unfiltered.
#[test]
fn replay_from_env() {
    let Ok(seed) = std::env::var("CHAOS_SEED") else {
        return;
    };
    let seed: u64 = seed.parse().expect("CHAOS_SEED must be a u64");
    let scenario = Scenario::from_seed(seed);
    println!("replaying seed {seed}: {}", scenario.summary());
    println!("fault plan: {:#?}", scenario.plan);
    match scenario.run() {
        Ok(report) => println!(
            "no violation: {} steps, {} trace events, hash {:016x}",
            report.steps, report.trace_events, report.trace_hash
        ),
        Err(failure) => {
            let minimal = minimize_plan(&failure.plan, |candidate| {
                scenario.run_with_plan(candidate).is_err()
            });
            panic!(
                "{failure}\nminimized fault plan ({} events): {minimal:#?}",
                minimal.events.len()
            );
        }
    }
}

#[cfg(not(feature = "chaos-unclamped-acks"))]
mod clean {
    use super::*;
    use stabilizer_chaos::TopologyKind;

    /// ≥200 randomized scenarios, all three topology families, zero
    /// invariant violations. On failure the panic message carries the
    /// seed, the replay command, and a greedily minimized fault plan.
    #[test]
    fn sweep_200_randomized_scenarios() {
        let mut by_topology = [0usize; 3];
        for seed in 0..200u64 {
            let scenario = Scenario::from_seed(seed);
            match scenario.topology {
                TopologyKind::Ec2Fig2 => by_topology[0] += 1,
                TopologyKind::CloudlabTable2 => by_topology[1] += 1,
                TopologyKind::FullMesh { .. } => by_topology[2] += 1,
            }
            if let Err(failure) = scenario.run() {
                let minimal = minimize_plan(&failure.plan, |candidate| {
                    scenario.run_with_plan(candidate).is_err()
                });
                panic!(
                    "{failure}\nminimized fault plan ({} events): {minimal:#?}",
                    minimal.events.len()
                );
            }
        }
        assert!(
            by_topology.iter().all(|&c| c > 0),
            "sweep must exercise every topology family, got {by_topology:?}"
        );
    }

    /// Acceptance criterion: the same `(plan, workload, seed)` twice
    /// produces byte-identical event traces (compared via hash).
    #[test]
    fn same_seed_twice_is_trace_identical() {
        for seed in [3u64, 17, 91] {
            let a = Scenario::from_seed(seed).run().expect("clean run");
            let b = Scenario::from_seed(seed).run().expect("clean run");
            assert_eq!(
                a.trace_hash, b.trace_hash,
                "seed {seed}: nondeterminism leaked into the event trace"
            );
            assert_eq!(a.trace_events, b.trace_events);
            assert_eq!(a.steps, b.steps);
        }
    }
}

/// Mutation tests: with the monotonic clamp compiled out of
/// `AckRecorder::observe`, the checker must report a violation.
#[cfg(feature = "chaos-unclamped-acks")]
mod mutation {
    use stabilizer_chaos::{ChaosHarness, Fault, FaultEvent, FaultPlan, TimedWork, WorkItem};
    use stabilizer_core::ClusterConfig;
    use stabilizer_netsim::{NetTopology, SimDuration};

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// A delay-skew clear reorders in-flight ACK batches (messages sent
    /// under the old, larger delay land *after* messages sent under the
    /// new, smaller one). The real recorder max-merges, so reordered
    /// reports are harmless; the unclamped mutant regresses the cell and
    /// the checker must catch it.
    #[test]
    fn unclamped_recorder_trips_the_checker() {
        let cfg = ClusterConfig::parse(
            "az A w0\naz B w1\naz C w2\n\
             predicate All MIN($ALLWNODES-$MYWNODE)\n\
             option ack_flush_micros 1000\n\
             option heartbeat_millis 50\n\
             option retransmit_millis 100\n",
        )
        .unwrap();
        // Skew the ack path w1 -> w0 by 100 ms, then clear it mid-burst.
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at: ms(50),
                fault: Fault::DelaySkew {
                    from: 1,
                    to: 0,
                    extra: ms(100),
                    clear_after: ms(250),
                },
            }],
        };
        let workload: Vec<TimedWork> = (0..40)
            .map(|i| TimedWork {
                at: ms(10 + i * 10),
                item: WorkItem::Publish { node: 0, len: 64 },
            })
            .collect();
        let net = NetTopology::full_mesh(3, ms(5), 1e9);
        let mut harness = ChaosHarness::new(&cfg, net, 5, &plan, workload).unwrap();
        let violation = harness
            .run(ms(1000))
            .expect_err("the unclamped recorder must trip an invariant");
        assert!(
            violation.property == "ack-monotonicity" || violation.property == "belief-beyond-truth",
            "unexpected property: {violation}"
        );
    }
}
