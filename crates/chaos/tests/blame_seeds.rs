//! The frontier blame diagnoser against the PR-7 liveness-sweep seeds
//! that stall mid-run: on the deterministic simulator, freezing the run
//! inside the fault window must produce a `StallReport` naming the
//! actual culprit (node, stream) pair, pinned exactly. A deliberately
//! unrecoverable stall must attach that blame to the
//! `post-fault-liveness` violation, and on the TCP runtime `/stall`
//! must go quiet once `verify_liveness` passes.

use stabilizer_chaos::{
    ChaosHarness, ChaosTcpCluster, Fault, FaultEvent, FaultPlan, Scenario, TimedWork, WorkItem,
};
use stabilizer_core::{ClusterConfig, NodeId, StallReport};
use stabilizer_netsim::SimDuration;
use stabilizer_telemetry::{http_get, parse_json, Telemetry};
use std::sync::Arc;
use std::time::Duration;

/// Run scenario `seed` to `freeze_at` and return every stalled report
/// tagged with its observing node.
fn stalled_at(seed: u64, freeze_at: SimDuration) -> Vec<(u16, StallReport)> {
    let s = Scenario::from_seed(seed);
    let cfg = ClusterConfig::parse(&s.cfg_text).expect("generated config parses");
    let mut h = ChaosHarness::new(
        &cfg,
        s.topology.build(),
        s.seed,
        &s.plan,
        s.workload.clone(),
    )
    .expect("scenario is valid");
    h.run(freeze_at).expect("safety holds while stalled");
    h.stall_reports()
        .into_iter()
        .filter(|(_, r)| r.stalled)
        .collect()
}

#[test]
fn seed_503_blames_the_partitioned_minority() {
    // Seed 503 partitions {2,3,4} from {0,1} at 182ms (healing at
    // 417ms). Frozen at 438ms — after heal, while repair is still in
    // flight — origin 3's "All" frontier is stalled one publish short,
    // and the blame names exactly the far side of the healed partition:
    // nodes 0 and 1, each one RECEIVED ack behind on stream 3.
    let stalled = stalled_at(503, SimDuration::from_millis(438));
    let (_, report) = stalled
        .iter()
        .find(|(observer, r)| *observer == 3 && r.stream == NodeId(3) && r.key == "All")
        .expect("origin 3's All frontier is stalled at 438ms");
    assert_eq!(report.frontier, 3);
    assert_eq!(report.target, 4);
    assert!(report.stalled);
    let culprits: Vec<u16> = report.blamed.iter().map(|b| b.node.0).collect();
    assert_eq!(
        culprits,
        vec![0, 1],
        "the actual culprit (node, stream) pairs are (0, 3) and (1, 3): {}",
        report.render_human()
    );
    for b in &report.blamed {
        assert_eq!(b.ack_type_name, "received");
        assert_eq!(b.have, 3);
        assert_eq!(b.need, 4);
    }
}

#[test]
fn seed_538_blames_the_cheapest_laggard_under_max() {
    // Seed 538 isolates node 2 at 615ms and late-joins node 1 at 234ms.
    // Frozen at 850ms, origin 1's stream is the one stalled; under the
    // One = MAX(...) predicate the blame is the single cheapest cell to
    // advance — node 0, RECEIVED 1 of 4 on stream 1 — so the diagnosis
    // names the culprit pair (node 0, stream 1).
    let stalled = stalled_at(538, SimDuration::from_millis(850));
    let (_, one) = stalled
        .iter()
        .find(|(observer, r)| *observer == 1 && r.stream == NodeId(1) && r.key == "One")
        .expect("origin 1's One frontier is stalled at 850ms");
    assert_eq!(one.frontier, 1);
    assert_eq!(one.target, 4);
    let culprits: Vec<u16> = one.blamed.iter().map(|b| b.node.0).collect();
    assert_eq!(
        culprits,
        vec![0],
        "MAX blames only the cheapest laggard: {}",
        one.render_human()
    );
    assert_eq!(one.blamed[0].have, 1);
    assert_eq!(one.blamed[0].need, 4);

    // The MIN predicate over the same stall blames every laggard.
    let (_, all) = stalled
        .iter()
        .find(|(observer, r)| *observer == 1 && r.stream == NodeId(1) && r.key == "All")
        .expect("origin 1's All frontier is stalled at 850ms");
    let culprits: Vec<u16> = all.blamed.iter().map(|b| b.node.0).collect();
    assert_eq!(culprits, vec![0, 2, 3, 4], "{}", all.render_human());
}

#[test]
fn liveness_violation_attaches_blame_report() {
    // Retransmission disabled + a total loss burst across the publish
    // window: node 1 permanently misses stream 0, so liveness trips —
    // and the violation's detail must carry the diagnoser's blame
    // naming the culprit cell instead of just the first laggard.
    let cfg = ClusterConfig::parse(
        "az A a0 a1\naz B b0\n\
         predicate All MIN($ALLWNODES-$MYWNODE)\n\
         option ack_flush_micros 2000\n\
         option heartbeat_millis 50\n\
         option retransmit_millis 0\n",
    )
    .unwrap();
    let net = stabilizer_netsim::NetTopology::full_mesh(3, SimDuration::from_millis(5), 1e9);
    let plan = FaultPlan {
        events: vec![FaultEvent {
            at: SimDuration::from_millis(5),
            fault: Fault::AsymmetricLoss {
                from: 0,
                to: 1,
                probability: 1.0,
                clear_after: SimDuration::from_millis(400),
            },
        }],
    };
    let workload: Vec<TimedWork> = (0..6)
        .map(|i| TimedWork {
            at: SimDuration::from_millis(20 + i * 30),
            item: WorkItem::Publish { node: 0, len: 64 },
        })
        .collect();
    let mut h = ChaosHarness::new(&cfg, net, 9, &plan, workload).unwrap();
    h.run(SimDuration::from_secs(2)).expect("safety holds");
    let err = h
        .verify_liveness(SimDuration::from_secs(5))
        .expect_err("stalled cluster must fail liveness");
    assert_eq!(err.property, "post-fault-liveness");
    assert!(
        err.detail.contains("blame:"),
        "violation carries the blame report: {}",
        err.detail
    );
    assert!(
        err.detail.contains("node 1 received=0"),
        "blame names node 1's empty RECEIVED cell on stream 0: {}",
        err.detail
    );
}

#[test]
fn tcp_stall_endpoint_goes_quiet_once_liveness_passes() {
    let cfg = ClusterConfig::parse(
        "az East e1 e2\naz West w1\n\
         predicate All MIN($ALLWNODES-$MYWNODE)\n\
         option ack_flush_micros 2000\n\
         option heartbeat_millis 20\n\
         option retransmit_millis 40\n",
    )
    .unwrap();
    let workload: Vec<TimedWork> = (0..6)
        .map(|i| TimedWork {
            at: SimDuration::from_millis(10 + i * 20),
            item: WorkItem::Publish { node: 0, len: 32 },
        })
        .collect();
    let telemetry = Telemetry::new_wall_clock();
    let mut cluster = ChaosTcpCluster::new_with_telemetry_serving(
        &cfg,
        7,
        &FaultPlan::default(),
        workload,
        Arc::clone(&telemetry),
        "127.0.0.1:0",
    )
    .expect("cluster boots");
    let serve = cluster.serve_addr().expect("node 0 serves").to_string();

    // The endpoint answers while the scenario is in flight.
    let (code, body) = http_get(&serve, "/metrics").expect("GET /metrics mid-run");
    assert_eq!(code, 200);
    assert!(body.contains("stab_build_info{"));
    let (code, body) = http_get(&serve, "/stall").expect("GET /stall mid-run");
    assert_eq!(code, 200);
    parse_json(&body).expect("mid-run stall body parses");

    cluster
        .run(Duration::from_millis(400))
        .unwrap_or_else(|v| panic!("fault-free run violated an invariant: {v}"));
    cluster
        .verify_liveness(Duration::from_secs(30))
        .unwrap_or_else(|v| panic!("fault-free cluster must be live: {v}"));

    // Everything stabilized: every report on /stall says not-stalled.
    let (code, body) = http_get(&serve, "/stall").expect("GET /stall post-liveness");
    assert_eq!(code, 200);
    let parsed = parse_json(&body).expect("stall body parses");
    let reports = parsed
        .get("reports")
        .and_then(|r| r.as_arr())
        .expect("reports array");
    assert!(!reports.is_empty(), "diagnoser covers the installed keys");
    for r in reports {
        assert_eq!(
            r.get("stalled").and_then(|s| s.as_bool()),
            Some(false),
            "no frontier may stay stalled after verify_liveness: {body}"
        );
    }
    assert!(cluster.stall_reports().iter().all(|(_, r)| !r.stalled));
    cluster.shutdown();
}
