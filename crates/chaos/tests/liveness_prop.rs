//! Property tests for the full fault vocabulary: randomized topologies
//! and fault schedules must satisfy every safety invariant on every
//! step, and — once the schedule is quiet — virtual-time liveness:
//! everything published stabilizes within a bounded virtual horizon.
//! Byzantine scenarios must instead trip `belief-beyond-truth`, and
//! their minimized counterexamples must still reproduce it.

use stabilizer_chaos::{
    minimize_plan, ChaosHarness, Fault, FaultEvent, FaultPlan, Scenario, TimedWork, WorkItem,
};
use stabilizer_core::ClusterConfig;
use stabilizer_netsim::{NetTopology, SimDuration};

/// Run a generated scenario to its horizon (safety checked every step),
/// then demand virtual-time liveness.
fn run_live(s: &Scenario) -> Result<(), String> {
    let cfg = ClusterConfig::parse(&s.cfg_text).expect("generated config parses");
    let mut h = ChaosHarness::new(
        &cfg,
        s.topology.build(),
        s.seed,
        &s.plan,
        s.workload.clone(),
    )
    .expect("generated scenario is valid");
    h.run(s.horizon).map_err(|v| format!("safety: {v}"))?;
    h.verify_liveness(SimDuration::from_secs(30))
        .map_err(|v| format!("liveness: {v}"))?;
    Ok(())
}

#[test]
fn random_scenarios_are_safe_and_live_once_quiet() {
    // Seed range disjoint from the chaos_sweep's, so the two suites
    // cover different draws of the vocabulary.
    for seed in 500..540u64 {
        let s = Scenario::from_seed(seed);
        if let Err(e) = run_live(&s) {
            panic!("seed {seed} ({}): {e}", s.summary());
        }
    }
}

#[test]
fn byzantine_scenarios_trip_and_minimize_to_the_forgery() {
    for seed in [11u64, 42, 123] {
        let s = Scenario::from_seed_byzantine(seed);
        let expected = s
            .plan
            .expected_violation()
            .expect("byzantine plans declare their violation");
        let failure = s.run().expect_err("byzantine scenario must trip");
        assert_eq!(failure.violation.property, expected, "seed {seed}");

        // Greedy minimization strips every benign fault: the forgery
        // alone is the 1-minimal core, and it still reproduces.
        let minimized = minimize_plan(&s.plan, |p| {
            s.run_with_plan(p)
                .is_err_and(|f| f.violation.property == expected)
        });
        assert_eq!(
            minimized.events.len(),
            1,
            "seed {seed}: the forgery alone reproduces"
        );
        assert!(
            matches!(minimized.events[0].fault, Fault::ByzantineAck { .. }),
            "seed {seed}: the surviving event is the forgery"
        );
        let replay = s
            .run_with_plan(&minimized)
            .expect_err("minimized plan still reproduces");
        assert_eq!(replay.violation.property, expected, "seed {seed}");
    }
}

#[test]
fn stalled_schedule_trips_post_fault_liveness_that_safety_misses() {
    // Retransmission disabled: a total loss burst across the publish
    // window drops frames that are never recovered. Every safety
    // invariant holds throughout — nothing regresses, no belief runs
    // ahead of truth, delivery stays a prefix — so only the virtual-time
    // liveness check can see that the cluster will never stabilize.
    let cfg = ClusterConfig::parse(
        "az A a0 a1\naz B b0\n\
         predicate All MIN($ALLWNODES-$MYWNODE)\n\
         option ack_flush_micros 2000\n\
         option heartbeat_millis 50\n\
         option retransmit_millis 0\n",
    )
    .unwrap();
    let net = NetTopology::full_mesh(3, SimDuration::from_millis(5), 1e9);
    let plan = FaultPlan {
        events: vec![FaultEvent {
            at: SimDuration::from_millis(5),
            fault: Fault::AsymmetricLoss {
                from: 0,
                to: 1,
                probability: 1.0,
                clear_after: SimDuration::from_millis(400),
            },
        }],
    };
    let workload: Vec<TimedWork> = (0..6)
        .map(|i| TimedWork {
            at: SimDuration::from_millis(20 + i * 30),
            item: WorkItem::Publish { node: 0, len: 64 },
        })
        .collect();
    let mut h = ChaosHarness::new(&cfg, net, 9, &plan, workload).unwrap();
    // Safety alone is blind to the stall: the run is violation-free.
    h.run(SimDuration::from_secs(2))
        .expect("every safety invariant holds on the stalled cluster");
    // ...but node 1 is missing the whole stream and nothing will ever
    // resend it: liveness must trip, in bounded virtual time.
    let err = h
        .verify_liveness(SimDuration::from_secs(5))
        .expect_err("a stalled schedule must fail the liveness check");
    assert_eq!(err.property, "post-fault-liveness");
    assert_eq!(err.node, 1, "node 1 is the one missing stream 0");
}

#[test]
fn seeded_large_mesh_byzantine_scenario_trips_belief_beyond_truth() {
    // A fixed large-mesh draw (12+ nodes, found by scanning the seed
    // space once; pinned so CI runs one known scenario end to end):
    // the forged over-claiming AckBatch must be flagged at scale too.
    let seed = (0..2000u64)
        .find(|&s| Scenario::from_seed(s).topology.num_nodes() >= 12)
        .expect("some seed draws a large mesh");
    let s = Scenario::from_seed_byzantine(seed);
    assert!(s.topology.num_nodes() >= 12);
    let failure = s
        .run()
        .expect_err("large-mesh byzantine scenario must trip");
    assert_eq!(failure.violation.property, "belief-beyond-truth");
    println!(
        "seed {seed}: {} tripped {} at node {}",
        s.summary(),
        failure.violation.property,
        failure.violation.node
    );
}
