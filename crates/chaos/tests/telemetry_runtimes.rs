//! Acceptance test for the telemetry layer: the same seeded workload,
//! instrumented through a [`Telemetry`] hub's `MetricsObserver`, yields
//! a stability-latency histogram on BOTH runtimes — the deterministic
//! netsim harness and the real threaded TCP cluster — exported as JSON
//! and Prometheus text. The sim export must be byte-identical across
//! replays of the same seed; the TCP export is wall-clock (values
//! differ run to run) but the histograms must be populated.

use stabilizer_chaos::{ChaosHarness, ChaosTcpCluster, FaultPlan, TimedWork, WorkItem};
use stabilizer_core::ClusterConfig;
use stabilizer_netsim::{NetTopology, SimDuration};
use stabilizer_telemetry::Telemetry;
use std::sync::Arc;
use std::time::Duration;

const KEY: &str = "All";
const SEED: u64 = 20_22;

fn cfg() -> ClusterConfig {
    ClusterConfig::parse(
        "az East e1 e2\naz West w1\n\
         predicate All MIN($ALLWNODES-$MYWNODE)\n\
         option ack_flush_micros 2000\n\
         option heartbeat_millis 20\n\
         option retransmit_millis 40\n",
    )
    .unwrap()
}

fn workload() -> Vec<TimedWork> {
    let mut w: Vec<TimedWork> = (0..10)
        .map(|i| TimedWork {
            at: SimDuration::from_millis(10 + i * 20),
            item: WorkItem::Publish { node: 0, len: 48 },
        })
        .collect();
    w.extend((0..5).map(|i| TimedWork {
        at: SimDuration::from_millis(15 + i * 35),
        item: WorkItem::Publish { node: 2, len: 96 },
    }));
    w
}

/// One instrumented sim run: returns the JSON and Prometheus exports
/// plus the trace JSONL.
fn sim_exports() -> (String, String, String) {
    let telemetry = Arc::new(Telemetry::new_sim_with_trace(8192));
    let net = NetTopology::full_mesh(3, SimDuration::from_millis(5), 1e9);
    let mut h = ChaosHarness::new_with_telemetry(
        &cfg(),
        net,
        SEED,
        &FaultPlan::default(),
        workload(),
        Some(Arc::clone(&telemetry)),
    )
    .unwrap();
    h.run(SimDuration::from_secs(10))
        .unwrap_or_else(|v| panic!("sim run violated an invariant: {v}"));

    let stab = telemetry
        .stability_latency(KEY)
        .expect("sim run produced a stability histogram");
    assert_eq!(
        stab.count, 15,
        "all 15 publishes should reach stability at their origins"
    );
    assert!(stab.min > 0, "virtual stability latency cannot be zero");
    assert!(telemetry.deliver_latency().count > 0);
    (
        telemetry.render_json(),
        telemetry.render_prometheus(),
        telemetry.trace().to_jsonl(),
    )
}

#[test]
fn sim_metrics_export_is_byte_identical_across_replays() {
    let (json_a, prom_a, trace_a) = sim_exports();
    let (json_b, prom_b, trace_b) = sim_exports();
    assert_eq!(json_a, json_b, "JSON export must be deterministic");
    assert_eq!(prom_a, prom_b, "Prometheus export must be deterministic");
    assert_eq!(trace_a, trace_b, "trace JSONL must be deterministic");
    assert!(json_a.contains("\"stab_stability_latency_ns{key=\\\"All\\\"}\""));
    assert!(prom_a.contains("stab_stability_latency_ns_count{key=\"All\"} 15"));
    assert!(trace_a.contains("\"event\":\"frontier\""));
    assert!(trace_a.contains("\"event\":\"deliver\""));
}

#[test]
fn tcp_run_produces_stability_histogram() {
    let telemetry = Arc::new(Telemetry::new_wall_clock());
    let mut cluster = ChaosTcpCluster::new_with_telemetry(
        &cfg(),
        SEED,
        &FaultPlan::default(),
        workload(),
        Some(Arc::clone(&telemetry)),
    )
    .unwrap();
    cluster
        .run(Duration::from_millis(400))
        .unwrap_or_else(|v| panic!("tcp run violated an invariant: {v}"));
    cluster
        .verify_liveness(Duration::from_secs(30))
        .unwrap_or_else(|v| panic!("tcp run did not stabilize: {v}"));
    cluster.shutdown();

    let stab = telemetry
        .stability_latency(KEY)
        .expect("tcp run produced a stability histogram");
    assert_eq!(
        stab.count, 15,
        "all 15 publishes should reach stability at their origins"
    );
    assert!(stab.min > 0 && stab.max >= stab.min);
    assert!(telemetry.deliver_latency().count > 0);

    // Both export formats carry the histogram and the transport counters.
    let json = telemetry.render_json();
    let prom = telemetry.render_prometheus();
    assert!(json.contains("\"stab_stability_latency_ns{key=\\\"All\\\"}\""));
    assert!(json.contains("stab_tcp_frames_out_total"));
    assert!(prom.contains("stab_stability_latency_ns_count{key=\"All\"} 15"));
    assert!(prom.contains("stab_tcp_bytes_in_total"));
}
