//! Deterministic replay with the grown fault vocabulary: the same seed
//! must produce byte-identical traces — twice in-process (trace hash
//! and telemetry trace-ring JSONL), and across processes through the
//! `chaos_demo` example's printed fingerprint.

use stabilizer_chaos::{Fault, Scenario};
use stabilizer_telemetry::Telemetry;
use std::path::PathBuf;
use std::process::Command;

/// First seed whose benign plan draws a fault matching `pred`.
fn seed_with(pred: impl Fn(&Fault) -> bool) -> u64 {
    (0..2000u64)
        .find(|&seed| {
            Scenario::from_seed(seed)
                .plan
                .events
                .iter()
                .any(|ev| pred(&ev.fault))
        })
        .expect("some seed in 0..2000 draws the fault")
}

fn new_fault_seeds() -> [u64; 3] {
    [
        seed_with(|f| matches!(f, Fault::ClockSkew { .. })),
        seed_with(|f| matches!(f, Fault::DupReorder { .. })),
        seed_with(|f| matches!(f, Fault::CorrelatedCrash { .. })),
    ]
}

#[test]
fn new_faults_replay_byte_identically_in_process() {
    for seed in new_fault_seeds() {
        let run = || {
            let t = Telemetry::new_sim_with_trace(4096);
            let s = Scenario::from_seed(seed);
            let report = s
                .run_with_telemetry(t.clone())
                .unwrap_or_else(|f| panic!("seed {seed} should run clean: {f}"));
            (report.trace_hash, t.trace().to_jsonl())
        };
        let (h1, j1) = run();
        let (h2, j2) = run();
        assert_eq!(h1, h2, "seed {seed}: trace hash differs across runs");
        assert_eq!(j1, j2, "seed {seed}: trace-ring JSONL differs across runs");
        assert!(!j1.is_empty(), "seed {seed}: trace ring captured nothing");
    }
}

#[test]
fn byzantine_violation_is_deterministic() {
    let s = Scenario::from_seed_byzantine(7);
    let a = s.run().expect_err("byzantine scenario trips");
    let b = s.run().expect_err("byzantine scenario trips");
    // The violation — time, node, property, and the full detail string —
    // is part of the determinism contract: a forged-ack counterexample
    // replays exactly.
    assert_eq!(a.violation, b.violation);
}

/// Locate (building if necessary) the `chaos_demo` example binary.
fn chaos_demo_bin() -> PathBuf {
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop(); // deps/
    p.pop(); // debug/
    p.push("examples");
    p.push(format!("chaos_demo{}", std::env::consts::EXE_SUFFIX));
    if !p.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
        let status = Command::new(cargo)
            .args(["build", "-p", "stabilizer-chaos", "--example", "chaos_demo"])
            .status()
            .expect("spawn cargo build for chaos_demo");
        assert!(status.success(), "building chaos_demo failed");
    }
    assert!(p.exists(), "chaos_demo binary not found at {}", p.display());
    p
}

#[test]
fn exemplars_replay_byte_identically_in_process() {
    // Exemplars stamp virtual-clock nanos and trace-ring cursors, so on
    // the simulator two runs of the same seed must render the same
    // bytes — across the JSON export, the exemplar sub-document, and
    // the OpenMetrics text with `# {...}` bucket suffixes.
    for seed in [
        503,
        538,
        seed_with(|f| matches!(f, Fault::ClockSkew { .. })),
    ] {
        let run = || {
            let t = Telemetry::new_sim_with_trace(4096);
            Scenario::from_seed(seed)
                .run_with_telemetry(t.clone())
                .unwrap_or_else(|f| panic!("seed {seed} should run clean: {f}"));
            (
                t.render_json(),
                t.render_exemplars_json(),
                t.render_prometheus(),
            )
        };
        let (j1, e1, p1) = run();
        let (j2, e2, p2) = run();
        assert_eq!(j1, j2, "seed {seed}: metrics JSON differs across runs");
        assert_eq!(e1, e2, "seed {seed}: exemplar JSON differs across runs");
        assert_eq!(p1, p2, "seed {seed}: Prometheus text differs across runs");
        assert!(
            e1.contains("\"trace_cursor\""),
            "seed {seed}: run captured no exemplars: {e1}"
        );
        assert!(
            p1.contains(" # {trace_id=\""),
            "seed {seed}: no OpenMetrics exemplar suffix rendered"
        );
    }
}

#[test]
fn exemplars_replay_byte_identically_across_processes() {
    let bin = chaos_demo_bin();
    let dir = std::env::temp_dir().join(format!("stab_exemplar_replay_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let run = |tag: &str| -> (String, String) {
        let path = dir.join(format!("metrics_{tag}.json"));
        let out = Command::new(&bin)
            .arg("503")
            .arg("--metrics-out")
            .arg(&path)
            .output()
            .expect("run chaos_demo");
        assert!(
            out.status.success(),
            "chaos_demo failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let json = std::fs::read_to_string(&path).expect("read metrics json");
        let prom =
            std::fs::read_to_string(format!("{}.prom", path.display())).expect("read prom text");
        (json, prom)
    };
    let (j1, p1) = run("a");
    let (j2, p2) = run("b");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(j1, j2, "cross-process metrics JSON diverged");
    assert_eq!(p1, p2, "cross-process Prometheus text diverged");
    assert!(
        j1.contains("\"exemplars\""),
        "JSON export carries exemplars"
    );
    // And the subprocess bytes match an in-process run of the same seed.
    let t = Telemetry::new_sim_with_trace(4096);
    Scenario::from_seed(503)
        .run_with_telemetry(t.clone())
        .expect("seed 503 runs clean");
    assert_eq!(
        j1,
        t.render_json(),
        "subprocess and in-process JSON diverged"
    );
}

#[test]
fn chaos_demo_prints_the_same_hash_across_processes() {
    let bin = chaos_demo_bin();
    let seed = seed_with(|f| matches!(f, Fault::CorrelatedCrash { .. }));
    let run = |seed: u64| -> String {
        let out = Command::new(&bin)
            .arg(seed.to_string())
            .output()
            .expect("run chaos_demo");
        assert!(
            out.status.success(),
            "chaos_demo seed {seed} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
        stdout
            .lines()
            .find_map(|l| l.split("trace_hash=").nth(1))
            .expect("chaos_demo printed a trace hash")
            .split_whitespace()
            .next()
            .unwrap()
            .to_owned()
    };
    let first = run(seed);
    let second = run(seed);
    assert_eq!(first, second, "cross-process trace hashes diverged");
    // And the subprocess agrees with an in-process run of the same seed.
    let report = Scenario::from_seed(seed).run().expect("runs clean");
    assert_eq!(
        first,
        format!("{:016x}", report.trace_hash),
        "chaos_demo and in-process hash diverged"
    );
}
