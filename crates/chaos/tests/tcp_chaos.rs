//! End-to-end chaos over the real TCP transport: the declarative fault
//! plans and the invariant checker, run against actual sockets and
//! threads through the fault-injecting proxy layer.
//!
//! Replay: the smoke scenario takes its seed from `CHAOS_TCP_SEED`
//! (default 42), so a failing run's seed can be replayed with
//! `CHAOS_TCP_SEED=<seed> cargo test -p stabilizer-chaos --test
//! tcp_chaos`.

use stabilizer_chaos::{ChaosTcpCluster, Fault, FaultEvent, FaultPlan, TimedWork, WorkItem};
use stabilizer_core::{Ack, ClusterConfig, NodeId, WireMsg};
use stabilizer_dsl::RECEIVED;
use stabilizer_netsim::SimDuration;
use std::time::Duration;

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn tcp_cfg() -> ClusterConfig {
    // Failure detector ON: the 400 ms crash window exceeds the 150 ms
    // suspicion timeout, so the donor evicts the crashed peer from
    // send-buffer retention mid-window — and the restarted node recovers
    // the evicted tail via §III-E state transfer (snapshot + retained
    // log replay) instead of plain retransmission.
    ClusterConfig::parse(
        "az East e1 e2\naz West w1\n\
         predicate All MIN($ALLWNODES-$MYWNODE)\n\
         option ack_flush_micros 2000\n\
         option heartbeat_millis 20\n\
         option retransmit_millis 40\n\
         option failure_timeout_millis 150\n\
         option retain_log_bytes 262144\n\
         option transfer_millis 20\n",
    )
    .unwrap()
}

fn publishes(node: usize, count: usize, every_ms: u64) -> Vec<TimedWork> {
    (0..count)
        .map(|i| TimedWork {
            at: ms(10 + i as u64 * every_ms),
            item: WorkItem::Publish { node, len: 64 },
        })
        .collect()
}

/// Partition + asymmetric loss + crash/restart — the issue's acceptance
/// scenario.
fn acceptance_plan() -> FaultPlan {
    FaultPlan {
        events: vec![
            FaultEvent {
                at: ms(100),
                fault: Fault::AsymmetricLoss {
                    from: 0,
                    to: 1,
                    probability: 0.15,
                    clear_after: ms(400),
                },
            },
            FaultEvent {
                at: ms(150),
                fault: Fault::Partition {
                    side: vec![2],
                    heal_after: ms(250),
                },
            },
            FaultEvent {
                at: ms(600),
                fault: Fault::CrashRestart {
                    node: 1,
                    down_for: ms(400),
                },
            },
        ],
    }
}

fn acceptance_workload() -> Vec<TimedWork> {
    let mut w = publishes(0, 20, 40);
    w.extend(publishes(2, 6, 100));
    w.push(TimedWork {
        at: ms(30),
        item: WorkItem::WaitFor {
            node: 0,
            stream: 0,
            key: "All".into(),
            seq: 5,
        },
    });
    w
}

fn env_seed() -> u64 {
    std::env::var("CHAOS_TCP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Run the acceptance scenario once: schedule + safety sweep, then the
/// wall-clock-bounded liveness check. Returns the final protocol state
/// for cross-run comparison.
fn run_acceptance(seed: u64) -> (Vec<Vec<u64>>, u64, u64) {
    let cfg = tcp_cfg();
    let mut cluster = ChaosTcpCluster::new(&cfg, seed, &acceptance_plan(), acceptance_workload())
        .unwrap_or_else(|e| panic!("setup failed: {e}"));
    let report = cluster
        .run(Duration::from_millis(1400))
        .unwrap_or_else(|v| panic!("safety violation (replay: CHAOS_TCP_SEED={seed}): {v}"));
    assert!(report.checks > 0, "the run must actually sweep invariants");
    cluster
        .verify_liveness(Duration::from_secs(30))
        .unwrap_or_else(|v| panic!("liveness violation (replay: CHAOS_TCP_SEED={seed}): {v}"));
    let frontier0 = cluster.frontier(0, 0, "All").unwrap_or(0);
    let frontier2 = cluster.frontier(2, 2, "All").unwrap_or(0);
    let table = cluster.received_table();
    cluster.shutdown();
    (table, frontier0, frontier2)
}

#[test]
fn seeded_fault_plan_passes_all_invariants_on_tcp() {
    let seed = env_seed();
    let (table, frontier0, frontier2) = run_acceptance(seed);
    // Everything published stabilized everywhere: 20 messages of stream
    // 0, 6 of stream 2, on every other node.
    for (i, row) in table.iter().enumerate() {
        if i != 0 {
            assert_eq!(row[0], 20, "node {i} missed stream 0 traffic: {row:?}");
        }
        if i != 2 {
            assert_eq!(row[2], 6, "node {i} missed stream 2 traffic: {row:?}");
        }
    }
    assert_eq!(frontier0, 20, "origin 0's frontier did not converge");
    assert_eq!(frontier2, 6, "origin 2's frontier did not converge");
}

#[test]
fn same_seed_replays_to_the_same_verdict_and_final_state() {
    let a = run_acceptance(7);
    let b = run_acceptance(7);
    // Wall-clock interleavings differ run to run, but the verdict (both
    // clean — the panics above are the failure path) and the converged
    // protocol state must be identical.
    assert_eq!(a, b);
}

#[test]
fn forged_ack_trips_belief_beyond_truth_on_real_sockets() {
    // Mutation check: corrupt the protocol from outside (a forged
    // control-plane message claiming node 1 acknowledged far beyond what
    // it ever received) and prove the checker catches it on the real
    // transport.
    let cfg = tcp_cfg();
    let mut cluster =
        ChaosTcpCluster::new(&cfg, 5, &FaultPlan::default(), publishes(0, 5, 30)).unwrap();
    cluster
        .run(Duration::from_millis(400))
        .unwrap_or_else(|v| panic!("clean warmup violated an invariant: {v}"));
    cluster.handle(2).inject_message(
        NodeId(1),
        WireMsg::AckBatch(vec![Ack {
            stream: NodeId(0),
            ty: RECEIVED,
            seq: 999,
        }]),
    );
    let violation = cluster
        .check_now()
        .expect_err("the checker must flag the forged acknowledgment");
    assert_eq!(violation.property, "belief-beyond-truth");
    assert_eq!(violation.node, 2);
    cluster.shutdown();
}

/// With the mutation feature on, the ACK recorder's monotonic clamp is
/// gone: a stale (re-ordered or replayed) acknowledgment makes a cell
/// regress, and the checker's shadow table must catch it over TCP.
#[cfg(feature = "chaos-unclamped-acks")]
#[test]
fn stale_ack_regression_is_caught_when_clamp_is_broken() {
    let cfg = tcp_cfg();
    let mut cluster =
        ChaosTcpCluster::new(&cfg, 6, &FaultPlan::default(), publishes(0, 5, 30)).unwrap();
    cluster
        .run(Duration::from_millis(400))
        .unwrap_or_else(|v| panic!("clean warmup violated an invariant: {v}"));
    cluster
        .verify_liveness(Duration::from_secs(30))
        .unwrap_or_else(|v| panic!("warmup did not stabilize: {v}"));
    // Node 2's belief about node 1's RECEIVED of stream 0 is now 5 (the
    // whole stream). Check once so the shadow table records it...
    cluster.check_now().unwrap();
    // ...then replay a stale ack. Clamped, this is a no-op; unclamped,
    // the cell regresses 5 -> 3.
    cluster.handle(2).inject_message(
        NodeId(1),
        WireMsg::AckBatch(vec![Ack {
            stream: NodeId(0),
            ty: RECEIVED,
            seq: 3,
        }]),
    );
    let violation = cluster
        .check_now()
        .expect_err("the checker must flag the recorder regression");
    assert_eq!(violation.property, "ack-monotonicity");
    cluster.shutdown();
}
