//! Fig. 6: single-file synchronization time vs file size — topology-
//! aware predicates against the multi-Paxos (PhxPaxos stand-in)
//! baseline — plus the headline average-improvement number.

use stabilizer_bench::{bytes, f, print_table};
use stabilizer_filebackup::{average_improvement, fig6_point, fig6_sizes, FIG6_SERIES};

fn main() {
    let points: Vec<_> = fig6_sizes()
        .into_iter()
        .map(|s| fig6_point(s, 42))
        .collect();
    let mut rows = Vec::new();
    for p in &points {
        let mut row = vec![bytes(p.size)];
        for series in FIG6_SERIES {
            let t = p
                .sync_times
                .iter()
                .find(|(k, _)| k == series)
                .expect("series")
                .1;
            row.push(f(t.as_millis_f64(), 1));
        }
        rows.push(row);
    }
    let mut header = vec!["file size".to_owned()];
    header.extend(FIG6_SERIES.iter().map(|s| format!("{s} (ms)")));
    print_table("Fig. 6: file synchronization time", &header, &rows);

    println!(
        "average improvement MajorityRegions vs PhxPaxos: {:.2}% (paper: 24.75%)",
        average_improvement(&points, "MajorityRegions", "PhxPaxos")
    );
    println!(
        "average |PhxPaxos - MajorityWNodes| gap: {:.2}% (paper: curves mostly overlap)",
        average_improvement(&points, "MajorityWNodes", "PhxPaxos").abs()
    );
}
