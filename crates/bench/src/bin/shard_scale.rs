//! Sharded data-plane scaling on a localhost TCP pair.
//!
//! For each shard count S the bench spawns a two-node
//! [`stabilizer_transport::spawn_sharded_local_cluster`] over real TCP
//! on 127.0.0.1. Both nodes publish concurrently from several threads
//! (every node is simultaneously an origin and a mirror), the send
//! buffer is kept small so backpressure couples publishers to the
//! ACK/frontier drain rate, and the run measures sustained *delivered*
//! throughput — messages actually handed to the application in global
//! FIFO order — plus the time for both own-stream frontiers to cover
//! the load. Per-shard protocol work (sequencing, delivery, ACK
//! folding, predicate evaluation) runs under per-shard locks on S
//! worker threads: with one shard every publisher and the inbound
//! worker contend a single mutex, with S shards they spread, so
//! delivered throughput grows until the per-connection reader/writer
//! pair or the core count saturates.
//!
//! Usage:
//!   shard_scale [MSGS] [PAYLOAD_BYTES] [PUBLISHERS] [--serve ADDR]
//!   shard_scale --replay-hash SEED
//!
//! With `--serve ADDR`, every spawned cluster feeds one shared
//! telemetry hub exposed live over HTTP (`/metrics`, `/metrics.json`,
//! `/trace`) — scrape or `stabtop` it mid-bench to watch per-shard
//! queue depths and delivery counters move — and the endpoint stays up
//! after the table prints until the process is killed.
//!
//! The second form runs a deterministic sharded *simulator* scenario and
//! prints an FNV-1a hash of every observable log (deliveries, per-shard
//! and aggregated frontiers). Running it twice — in two separate
//! processes — must print byte-identical output; this is the seed-replay
//! acceptance check for the sharded engine.

use bytes::Bytes;
use stabilizer_bench::{bytes as fmt_bytes, f, print_table};
use stabilizer_core::{ClusterConfig, NodeId};
use stabilizer_netsim::{NetTopology, SimDuration};
use stabilizer_shard::{build_sharded_cluster, RoutePolicy};
use stabilizer_telemetry::{ServerRoutes, Telemetry, TelemetryServer};
use stabilizer_transport::spawn_sharded_local_cluster_with;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARD_COUNTS: [u16; 4] = [1, 2, 4, 8];
const N0: NodeId = NodeId(0);

/// Two-node localhost pair: `a1` publishes, `b1` mirrors. The predicate
/// set mirrors a production node (several keys recomputed per ACK), so
/// per-shard frontier evaluation carries realistic CPU weight.
fn pair_cfg(shards: u16) -> ClusterConfig {
    ClusterConfig::parse(&format!(
        "az A a1\n\
         az B b1\n\
         option shards {shards}\n\
         option send_buffer_bytes 262144\n\
         option ack_flush_micros 0\n\
         predicate Remote MAX($ALLWNODES-$MYWNODE)\n\
         predicate All MIN($ALLWNODES-$MYWNODE)\n\
         predicate Quorum KTH_MAX(1, $ALLWNODES-$MYWNODE)\n\
         predicate Any MAX($ALLWNODES)\n"
    ))
    .expect("static config parses")
}

struct Point {
    shards: u16,
    delivered_per_sec: f64,
    stable_per_sec: f64,
}

/// One measured run: both nodes of the pair publish `msgs / 2` messages
/// of `payload` bytes from `publishers` threads each (every node is
/// simultaneously an origin and a mirror, as in a real deployment), and
/// the run counts total cross-delivered messages per second plus the
/// time for both own-stream frontiers to cover the load.
fn run_tcp(
    shards: u16,
    msgs: u64,
    payload: usize,
    publishers: usize,
    telemetry: Option<&Arc<Telemetry>>,
) -> Point {
    let nodes = spawn_sharded_local_cluster_with(
        &pair_cfg(shards),
        RoutePolicy::RoundRobin,
        telemetry.map(Arc::clone),
    )
    .expect("localhost pair spawns");
    let handles = [nodes[0].handle(), nodes[1].handle()];
    let per_node = msgs / 2;

    let delivered = Arc::new(AtomicU64::new(0));
    for h in &handles {
        let delivered = Arc::clone(&delivered);
        h.on_deliver(move |_, _, _| {
            delivered.fetch_add(1, Ordering::Relaxed);
        });
    }

    // Each node also tracks its peer's stream, as application mirrors do
    // (the configured predicates only cover each node's own stream).
    for (h, peer) in [(&handles[0], &handles[1]), (&handles[1], &handles[0])] {
        h.register_predicate(peer.id(), "All", "MIN($ALLWNODES-$MYWNODE)")
            .expect("predicate compiles");
        h.register_predicate(peer.id(), "Any", "MAX($ALLWNODES)")
            .expect("predicate compiles");
    }

    // Warm the connections so dial latency stays out of the measurement.
    for h in &handles {
        h.publish(Bytes::from_static(b"warmup"), Duration::from_secs(10))
            .expect("warmup publish");
    }
    for h in &handles {
        assert!(
            h.waitfor(h.id(), "All", 1, Duration::from_secs(30))
                .expect("key registered"),
            "warmup stabilizes"
        );
    }
    while delivered.load(Ordering::Relaxed) < 2 {
        std::thread::sleep(Duration::from_millis(1));
    }

    let body = Bytes::from(vec![0x5a; payload]);
    let start = Instant::now();
    let threads: Vec<_> = handles
        .iter()
        .flat_map(|h| {
            (0..publishers).map(|t| {
                let h = h.clone();
                let body = body.clone();
                let quota = per_node / publishers as u64
                    + u64::from(t == 0) * (per_node % publishers as u64);
                std::thread::spawn(move || {
                    for _ in 0..quota {
                        h.publish(body.clone(), Duration::from_secs(30))
                            .expect("publish within timeout");
                    }
                })
            })
        })
        .collect();
    for t in threads {
        t.join().expect("publisher thread");
    }
    if std::env::var_os("SHARD_SCALE_DEBUG").is_some() {
        eprintln!(
            "S={shards}: publish done in {:.3}s ({:.0} pub/s)",
            start.elapsed().as_secs_f64(),
            (2 * per_node) as f64 / start.elapsed().as_secs_f64()
        );
    }

    let total = 2 * (per_node + 1); // plus one warmup message per node
    let deadline = Instant::now() + Duration::from_secs(120);
    while delivered.load(Ordering::Relaxed) < total {
        assert!(Instant::now() < deadline, "mirrors fell behind permanently");
        std::thread::sleep(Duration::from_micros(200));
    }
    let t_delivered = start.elapsed();

    for h in &handles {
        assert!(h
            .waitfor(h.id(), "All", per_node + 1, Duration::from_secs(120))
            .expect("key registered"));
    }
    let t_stable = start.elapsed();

    // Global FIFO reassembly was gapless in both directions.
    assert_eq!(handles[0].delivered_global(handles[1].id()), per_node + 1);
    assert_eq!(handles[1].delivered_global(handles[0].id()), per_node + 1);
    for node in &nodes {
        node.handle().shutdown();
    }
    Point {
        shards,
        delivered_per_sec: (2 * per_node) as f64 / t_delivered.as_secs_f64(),
        stable_per_sec: (2 * per_node) as f64 / t_stable.as_secs_f64(),
    }
}

const TRIALS: usize = 3;

fn tcp_scaling(msgs: u64, payload: usize, publishers: usize, telemetry: Option<&Arc<Telemetry>>) {
    println!(
        "localhost pair (both directions), {} msgs x {}, {} publisher threads per node, median of {} trials",
        msgs,
        fmt_bytes(payload as u64),
        publishers,
        TRIALS
    );
    println!("(data plane encodes each frame once and shares the bytes across peers — zero-copy fan-out)\n");
    // Interleave trials (1,2,4,8, 1,2,4,8, ...) so slow environmental
    // drift hits every shard count equally, then report the median —
    // single-run numbers on a shared box swing with scheduler luck.
    let mut all: Vec<Vec<Point>> = SHARD_COUNTS.iter().map(|_| Vec::new()).collect();
    for _ in 0..TRIALS {
        for (i, &s) in SHARD_COUNTS.iter().enumerate() {
            all[i].push(run_tcp(s, msgs, payload, publishers, telemetry));
        }
    }
    let points: Vec<Point> = all
        .into_iter()
        .map(|mut trials| {
            trials.sort_by(|a, b| a.delivered_per_sec.total_cmp(&b.delivered_per_sec));
            trials.swap_remove(trials.len() / 2)
        })
        .collect();
    let base = points[0].delivered_per_sec;
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.shards.to_string(),
                f(p.delivered_per_sec, 0),
                f(p.stable_per_sec, 0),
                format!("{}x", f(p.delivered_per_sec / base, 2)),
            ]
        })
        .collect();
    print_table(
        "sharded data-plane scaling (TCP localhost pair)",
        &["shards", "delivered msg/s", "stable msg/s", "speedup"],
        &rows,
    );
}

/// Deterministic sharded simulator scenario: 3 nodes, 4 shards,
/// round-robin routing, mixed payload sizes and two publishing streams.
/// Everything observable is folded into one FNV-1a hash.
fn replay_hash(seed: u64) {
    let cfg = ClusterConfig::parse(
        "az A a b\n\
         az B c\n\
         option shards 4\n\
         predicate All MIN($ALLWNODES-$MYWNODE)\n\
         predicate One MAX($ALLWNODES-$MYWNODE)\n",
    )
    .expect("static config parses");
    let net = NetTopology::full_mesh(3, SimDuration::from_millis(5), 1e9);
    let mut sim =
        build_sharded_cluster(&cfg, net, seed, RoutePolicy::RoundRobin).expect("cluster builds");
    for i in 0..3 {
        for stream in [0u16, 1] {
            if i != stream as usize {
                sim.with_ctx(i, |n, ctx| {
                    n.register_predicate_in(ctx, NodeId(stream), "All", "MIN($ALLWNODES-$MYWNODE)")
                })
                .expect("predicate compiles");
            }
        }
    }
    // Seed-derived (but Date/rand-free) publish sizes: a simple LCG.
    let mut state = seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize % 480 + 16
    };
    for round in 0..60u64 {
        for origin in 0..2usize {
            let len = next();
            sim.with_ctx(origin, |n, ctx| {
                n.publish_in(ctx, Bytes::from(vec![round as u8; len]))
            })
            .expect("publish");
        }
        if round % 20 == 19 {
            sim.with_ctx(0, |n, ctx| n.waitfor_in(ctx, N0, "All", round + 1))
                .expect("waitfor");
        }
    }
    sim.run_until_idle();

    let mut transcript = String::new();
    for i in 0..3 {
        let a = sim.actor(i);
        for (t, u) in &a.frontier_log {
            writeln!(
                transcript,
                "{i} F {t:?} {} {} {} {}",
                u.stream.0, u.key, u.seq, u.generation
            )
            .unwrap();
        }
        for (t, o, s, l) in &a.delivery_log {
            writeln!(transcript, "{i} D {t:?} {} {s} {l}", o.0).unwrap();
        }
        for (shard, log) in a.shard_delivery_logs.iter().enumerate() {
            for (t, o, s, l) in log {
                writeln!(transcript, "{i} d{shard} {t:?} {} {s} {l}", o.0).unwrap();
            }
        }
        for (shard, log) in a.shard_frontier_logs.iter().enumerate() {
            for (t, u) in log {
                writeln!(
                    transcript,
                    "{i} f{shard} {t:?} {} {} {} {}",
                    u.stream.0, u.key, u.seq, u.generation
                )
                .unwrap();
            }
        }
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in transcript.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    println!(
        "replay seed={seed} events={} hash={hash:016x}",
        transcript.lines().count()
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--replay-hash") {
        let seed = args
            .get(1)
            .and_then(|s| s.parse().ok())
            .expect("--replay-hash SEED");
        replay_hash(seed);
        return;
    }
    let serve = args.iter().position(|a| a == "--serve").map(|i| {
        args.remove(i);
        if i >= args.len() {
            eprintln!("usage: shard_scale [MSGS] [PAYLOAD] [PUBLISHERS] [--serve ADDR]");
            std::process::exit(2);
        }
        args.remove(i)
    });
    let msgs = args.first().and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let payload = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let publishers = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    // One hub for every trial: series are labelled per node/shard, so
    // counters accumulate across the whole sweep while gauges (queue
    // depths) always show the live cluster.
    let telemetry = serve
        .as_ref()
        .map(|_| Telemetry::new_wall_clock_sharded(SHARD_COUNTS[SHARD_COUNTS.len() - 1] as usize));
    let server = serve.map(|addr| {
        let t = telemetry.clone().expect("hub exists when serving");
        let server = TelemetryServer::bind(&addr, ServerRoutes::new(t)).unwrap_or_else(|e| {
            eprintln!("error: serving on {addr}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "serving http://{} — /metrics /metrics.json /trace",
            server.local_addr()
        );
        server
    });
    tcp_scaling(msgs, payload, publishers, telemetry.as_ref());
    if let Some(server) = server {
        eprintln!(
            "bench done; still serving http://{} (Ctrl-C to exit)",
            server.local_addr()
        );
        loop {
            std::thread::park();
        }
    }
}
