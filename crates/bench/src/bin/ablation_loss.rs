//! Ablation: the §III-A reliability mechanism under packet loss — how
//! stabilization time and retransmission overhead grow with the loss
//! rate. (The paper assumes lossless FIFO transport provided by its own
//! "basic reliability mechanism"; this quantifies that mechanism.)

use bytes::Bytes;
use stabilizer_bench::{f, print_table};
use stabilizer_core::sim_driver::build_cluster;
use stabilizer_core::{ClusterConfig, NodeId, Options};
use stabilizer_netsim::{NetTopology, SimDuration};

const COUNT: u64 = 200;

fn run(loss: f64) -> (f64, u64, u64) {
    let opts = Options::default().retransmit_millis(50);
    let cfg = ClusterConfig::parse("az A a b\naz B c d\npredicate All MIN($ALLWNODES-$MYWNODE)\n")
        .expect("static config")
        .with_options(opts);
    let net = NetTopology::full_mesh(4, SimDuration::from_millis(10), 1e9);
    let mut sim = build_cluster(&cfg, net, 42).expect("cfg valid");
    for a in 0..4 {
        for b in 0..4 {
            if a != b {
                sim.set_link_loss(a, b, loss);
            }
        }
    }
    for i in 0..COUNT {
        sim.with_ctx(0, |n, ctx| {
            n.publish_in(ctx, Bytes::from(vec![i as u8; 1024]))
        })
        .expect("publish");
    }
    let deadline = sim.now() + SimDuration::from_secs(300);
    loop {
        sim.run_for(SimDuration::from_millis(100));
        let (frontier, _) = sim
            .actor(0)
            .inner()
            .stability_frontier(NodeId(0), "All")
            .unwrap();
        if frontier >= COUNT || sim.now() >= deadline {
            break;
        }
    }
    let done_at = sim
        .actor(0)
        .frontier_log
        .iter()
        .find(|(_, u)| u.key == "All" && u.seq >= COUNT)
        .map(|(t, _)| t.as_secs_f64())
        .unwrap_or(f64::NAN);
    (
        done_at,
        sim.actor(0).inner().metrics().retransmits,
        sim.dropped(),
    )
}

fn main() {
    let mut rows = Vec::new();
    for loss_pct in [0u32, 1, 5, 10, 20, 30] {
        let (t, retransmits, dropped) = run(loss_pct as f64 / 100.0);
        rows.push(vec![
            format!("{loss_pct}%"),
            f(t, 3),
            retransmits.to_string(),
            dropped.to_string(),
        ]);
    }
    print_table(
        &format!("Reliability ablation: {COUNT} x 1 KiB messages to full WAN stability (RTT 20 ms, go-back-N @ 50 ms)"),
        &["loss rate", "all stable (s)", "retransmits", "msgs dropped"],
        &rows,
    );
}
