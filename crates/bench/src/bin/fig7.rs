//! Fig. 7: pub/sub latency (a) and throughput (b) versus sending rate,
//! Stabilizer prototype vs the Pulsar-like baseline, per subscriber
//! site.
//!
//! Usage: `fig7 [count]` — messages per run (default 4000; paper: 10000).

use stabilizer_bench::{f, print_table};
use stabilizer_pubsub::{fig7_point, System};

fn main() {
    let count: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4000);
    let rates = [250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0];
    let sites = ["UT2", "WI", "CLEM", "MA"];

    for (label, system) in [
        ("Stabilizer", System::Stabilizer),
        ("Pulsar-like", System::PulsarLike),
    ] {
        let mut lat_rows = Vec::new();
        let mut thr_rows = Vec::new();
        for rate in rates {
            eprintln!("{label} @ {rate} msg/s ...");
            let r = fig7_point(system, rate, count, 8192, 42);
            let mut lrow = vec![f(rate, 0)];
            let mut trow = vec![f(rate, 0)];
            for site in sites {
                let s = r.iter().find(|x| x.name == site).expect("site");
                lrow.push(f(s.avg_latency.as_millis_f64(), 2));
                trow.push(f(s.throughput_mbit, 1));
            }
            lat_rows.push(lrow);
            thr_rows.push(trow);
        }
        let mut header = vec!["rate (msg/s)".to_owned()];
        header.extend(sites.iter().map(|s| (*s).to_owned()));
        print_table(
            &format!("Fig. 7a [{label}]: avg latency (ms)"),
            &header,
            &lat_rows,
        );
        print_table(
            &format!("Fig. 7b [{label}]: throughput (Mbit/s)"),
            &header,
            &thr_rows,
        );
    }
}
