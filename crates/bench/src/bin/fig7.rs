//! Fig. 7: pub/sub latency (a) and throughput (b) versus sending rate,
//! Stabilizer prototype vs the Pulsar-like baseline, per subscriber
//! site.
//!
//! Usage: `fig7 [count] [--metrics-out <path>] [--serve <addr>]` —
//! messages per run (default 4000; paper: 10000). With `--metrics-out`
//! or `--serve`, every per-message end-to-end latency is additionally
//! recorded into log-scale telemetry histograms keyed
//! `{system, site, rate}`; `--metrics-out` writes the final snapshot to
//! `path` as JSON (plus `<path>.prom` in Prometheus text), `--serve`
//! exposes the hub live over HTTP (`/metrics`, `/metrics.json`,
//! `/trace`) while the bench runs — point `stabtop` at it — and keeps
//! serving after the tables print until the process is killed.

use stabilizer_bench::{f, print_table};
use stabilizer_pubsub::{fig7_point, System};
use stabilizer_telemetry::{
    render_json_snapshot, render_prometheus_snapshot, ServerRoutes, Telemetry, TelemetryServer,
};
use std::sync::Arc;

fn main() {
    let mut count: u64 = 4000;
    let mut metrics_out: Option<String> = None;
    let mut serve: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics-out" | "--serve" => {
                let usage = || {
                    eprintln!("usage: fig7 [count] [--metrics-out <path>] [--serve <addr>]");
                    std::process::exit(2);
                };
                match (arg.as_str(), it.next()) {
                    ("--metrics-out", Some(path)) => metrics_out = Some(path),
                    ("--serve", Some(addr)) => serve = Some(addr),
                    _ => usage(),
                }
            }
            other => {
                if let Ok(v) = other.parse() {
                    count = v;
                }
            }
        }
    }
    let rates = [250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0];
    let sites = ["UT2", "WI", "CLEM", "MA"];
    // The bench records into a full telemetry hub (rather than a bare
    // registry) so `--serve` can expose it live; build_info and uptime
    // come along for free.
    let telemetry = Telemetry::new_wall_clock();
    let registry = telemetry.registry();
    let record = metrics_out.is_some() || serve.is_some();
    let server = serve.map(|addr| {
        let server = TelemetryServer::bind(&addr, ServerRoutes::new(Arc::clone(&telemetry)))
            .unwrap_or_else(|e| {
                eprintln!("error: serving on {addr}: {e}");
                std::process::exit(1);
            });
        eprintln!(
            "serving http://{} — /metrics /metrics.json /trace",
            server.local_addr()
        );
        server
    });

    for (label, system) in [
        ("Stabilizer", System::Stabilizer),
        ("Pulsar-like", System::PulsarLike),
    ] {
        let mut lat_rows = Vec::new();
        let mut thr_rows = Vec::new();
        for rate in rates {
            eprintln!("{label} @ {rate} msg/s ...");
            let r = fig7_point(system, rate, count, 8192, 42);
            let mut lrow = vec![f(rate, 0)];
            let mut trow = vec![f(rate, 0)];
            for site in sites {
                let s = r.iter().find(|x| x.name == site).expect("site");
                lrow.push(f(s.avg_latency.as_millis_f64(), 2));
                trow.push(f(s.throughput_mbit, 1));
                if record {
                    let rate_s = format!("{rate}");
                    let labels: &[(&str, &str)] =
                        &[("system", label), ("site", site), ("rate", &rate_s)];
                    let hist = registry.histogram("fig7_e2e_latency_ns", labels);
                    for &lat in &s.latencies_ns {
                        hist.record(lat);
                    }
                    registry
                        .counter("fig7_delivered_total", labels)
                        .add(s.delivered);
                }
            }
            lat_rows.push(lrow);
            thr_rows.push(trow);
        }
        let mut header = vec!["rate (msg/s)".to_owned()];
        header.extend(sites.iter().map(|s| (*s).to_owned()));
        print_table(
            &format!("Fig. 7a [{label}]: avg latency (ms)"),
            &header,
            &lat_rows,
        );
        print_table(
            &format!("Fig. 7b [{label}]: throughput (Mbit/s)"),
            &header,
            &thr_rows,
        );
    }

    if let Some(path) = metrics_out {
        let snap = registry.snapshot();
        if let Err(e) = std::fs::write(&path, render_json_snapshot(&snap)) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        let prom = format!("{path}.prom");
        if let Err(e) = std::fs::write(&prom, render_prometheus_snapshot(&snap)) {
            eprintln!("error: writing {prom}: {e}");
            std::process::exit(1);
        }
        eprintln!("metrics: {path} (json), {prom} (prometheus text)");
    }
    if let Some(server) = server {
        eprintln!(
            "bench done; still serving http://{} (Ctrl-C to exit)",
            server.local_addr()
        );
        loop {
            std::thread::park();
        }
    }
}
