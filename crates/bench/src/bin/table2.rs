//! Table II: network performance between Utah1 and the other CloudLab
//! servers — configured versus simulator-measured.

use stabilizer_bench::{f, print_table};
use stabilizer_netsim::{measure_rtt, measure_throughput, NetTopology};

fn main() {
    let net = NetTopology::cloudlab_table2();
    let rows_spec: [(&str, usize); 4] = [
        ("Utah2", 1),
        ("Wisconsin", 2),
        ("Clemson", 3),
        ("Massachusetts", 4),
    ];
    let mut rows = Vec::new();
    for (name, idx) in rows_spec {
        let spec = net.link(0, idx).expect("link exists");
        let rtt = measure_rtt(&net, 0, idx);
        let thr = measure_throughput(&net, 0, idx, 64 * 1024 * 1024, 8192);
        rows.push(vec![
            name.to_owned(),
            f(spec.mbit_per_sec(), 2),
            f(thr, 2),
            f(spec.rtt().as_millis_f64(), 3),
            f(rtt.as_millis_f64(), 3),
        ]);
    }
    print_table(
        "Table II: Utah1 <-> other servers (CloudLab)",
        &[
            "Server",
            "Thp cfg (Mbit/s)",
            "Thp meas (Mbit/s)",
            "Lat cfg (ms)",
            "Lat meas (ms)",
        ],
        &rows,
    );
}
