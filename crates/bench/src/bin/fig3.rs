//! Fig. 3: quorum read latency vs message size on CloudLab, with the
//! reference RTTs the paper draws as dashed lines.

use stabilizer_bench::{f, print_table};
use stabilizer_quorum::{quorum_read_latency, quorum_write_latency, reference_rtts};

fn main() {
    for (name, rtt) in reference_rtts() {
        println!("reference RTT {name:>10}: {:.3} ms", rtt.as_millis_f64());
    }
    println!();
    let mut rows = Vec::new();
    for kb in [1usize, 2, 4, 8, 16, 32, 64] {
        let size = kb * 1024;
        let read = quorum_read_latency(size, 42);
        let write = quorum_write_latency(size, 42);
        rows.push(vec![
            format!("{kb}"),
            f(read.latency.as_millis_f64(), 3),
            f(write.as_millis_f64(), 3),
        ]);
    }
    print_table(
        "Fig. 3: quorum read latency (members UT1/WI/CLEM, writer UT2, reader UT1, Nr=Nw=2)",
        &["size (KB)", "read latency (ms)", "write commit (ms)"],
        &rows,
    );
}
