//! Fig. 8: end-to-end latency under dynamic predicate reconfiguration —
//! static all-sites, static three-sites, and a predicate flipped every
//! five seconds via `change_predicate`.

use stabilizer_bench::{f, print_table};
use stabilizer_pubsub::{fig8_run, Fig8Mode};

fn main() {
    let all = fig8_run(Fig8Mode::AllSites, 42);
    let three = fig8_run(Fig8Mode::ThreeSites, 42);
    let changing = fig8_run(Fig8Mode::Changing, 42);

    let lookup = |pts: &[stabilizer_pubsub::Fig8Point], sec: u64| {
        pts.iter()
            .find(|p| p.second == sec)
            .map(|p| f(p.avg_latency.as_millis_f64(), 2))
            .unwrap_or_default()
    };
    let max_sec = all.iter().map(|p| p.second).max().unwrap_or(0);
    let mut rows = Vec::new();
    for sec in 0..=max_sec {
        rows.push(vec![
            sec.to_string(),
            lookup(&all, sec),
            lookup(&three, sec),
            lookup(&changing, sec),
        ]);
    }
    print_table(
        "Fig. 8: per-second avg end-to-end latency (ms), predicate change every 5 s",
        &["second", "all sites", "three sites", "changing predicate"],
        &rows,
    );
}
