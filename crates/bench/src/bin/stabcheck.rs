//! `stabcheck`: static analysis for stability predicates from the
//! command line.
//!
//! ```text
//! stabcheck --config configs/fig2-ec2.cfg            # lint a deployment
//! stabcheck --paper                                  # lint the paper's examples
//! stabcheck -p 'KTH_MAX(9, $ALLWNODES)'              # lint ad-hoc predicates
//! stabcheck --config c.cfg --me n3 --failure-budget 1
//! stabcheck --config c.cfg --json                    # machine-readable output
//! ```
//!
//! Predicates given with `-p` are linted against the deployment from
//! `--config`, or the paper's Fig. 2 topology when no config is given.
//! Exit codes: `0` clean (info-level findings allowed; warnings allowed
//! unless `--deny-warnings`), `1` findings at the enforced level, `2`
//! usage or I/O error.

use stabilizer_analyze::{json_string, AckEmissions, Analyzer, Report, Severity};
use stabilizer_core::ClusterConfig;
use stabilizer_dsl::{AckTypeRegistry, NodeId, Topology};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: stabcheck [options]
  --config <FILE>        lint the predicates of a cluster config file
  --paper                lint the paper's example predicates (Fig. 2 topology)
  -p, --predicate <SRC>  lint an ad-hoc predicate (repeatable)
  --me <NODE>            node to analyze at (default: first node)
  --all-nodes            analyze at every node of the topology
  --failure-budget <N>   crash budget for the crash-unsatisfiable lint
  --json                 emit JSON instead of human-readable diagnostics
  --deny-warnings        exit nonzero on warnings, not just errors
  -h, --help             show this help";

struct Args {
    config: Option<String>,
    paper: bool,
    predicates: Vec<String>,
    me: Option<String>,
    all_nodes: bool,
    failure_budget: Option<usize>,
    json: bool,
    deny_warnings: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: None,
        paper: false,
        predicates: Vec::new(),
        me: None,
        all_nodes: false,
        failure_budget: None,
        json: false,
        deny_warnings: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--config" => args.config = Some(value("--config")?),
            "--paper" => args.paper = true,
            "-p" | "--predicate" => args.predicates.push(value("--predicate")?),
            "--me" => args.me = Some(value("--me")?),
            "--all-nodes" => args.all_nodes = true,
            "--failure-budget" => {
                let v = value("--failure-budget")?;
                args.failure_budget =
                    Some(v.parse().map_err(|_| format!("bad failure budget {v}"))?);
            }
            "--json" => args.json = true,
            "--deny-warnings" => args.deny_warnings = true,
            "-h" | "--help" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if args.config.is_none() && !args.paper && args.predicates.is_empty() {
        return Err(format!("nothing to check\n{USAGE}"));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("stabcheck: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &Args) -> Result<ExitCode, String> {
    // Assemble topology, ACK registry, emissions model, and corpus.
    let acks = AckTypeRegistry::new();
    let mut emissions = AckEmissions::new();
    let mut failure_budget = 0usize;
    let mut corpus: Vec<(String, String)> = Vec::new();
    let mut config: Option<ClusterConfig> = None;
    let topo: Arc<Topology> = if let Some(path) = &args.config {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let cfg = ClusterConfig::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        for (name, emitters) in cfg.ack_types() {
            let ty = acks.register(name);
            if !emitters.is_empty() {
                let ids: Vec<NodeId> = emitters
                    .iter()
                    .filter_map(|n| cfg.topology().node(n))
                    .collect();
                emissions.restrict(ty, &ids);
            }
        }
        failure_budget = cfg.options().failure_budget as usize;
        corpus.extend(cfg.predicates().map(|(k, v)| (k.to_owned(), v.to_owned())));
        let topo = Arc::clone(cfg.topology());
        config = Some(cfg);
        topo
    } else {
        Arc::new(stabilizer_analyze::paper::fig2_topology())
    };
    if args.paper {
        corpus.extend(stabilizer_analyze::paper::examples());
    }
    for (i, src) in args.predicates.iter().enumerate() {
        corpus.push((format!("arg{}", i + 1), src.clone()));
    }
    if let Some(f) = args.failure_budget {
        failure_budget = f;
    }

    // Which nodes to analyze at.
    let nodes: Vec<NodeId> = if args.all_nodes {
        topo.all_nodes()
    } else if let Some(name) = &args.me {
        vec![topo
            .node(name)
            .ok_or_else(|| format!("unknown node {name}"))?]
    } else {
        vec![NodeId(0)]
    };

    let mut worst: Option<Severity> = None;
    let mut out = String::new();
    let mut json_nodes: Vec<String> = Vec::new();
    for me in nodes {
        // A configured predicate evaluates over the vantage's own
        // stream; under a `replicate` directive only that stream's
        // replica set ever acks it, so the analyzer lints explicit
        // operands against it (non-replica-operand).
        let replicas: Option<Vec<NodeId>> = config.as_ref().and_then(|cfg| {
            let p = cfg.placement();
            (!p.is_full_replication()).then(|| p.replicas(me).to_vec())
        });
        let mut analyzer = Analyzer::new(&topo, &acks, me)
            .with_emissions(&emissions)
            .with_failure_budget(failure_budget);
        if let Some(reps) = &replicas {
            analyzer = analyzer.with_replicas(reps);
        }
        let reports = analyzer.analyze_set(&corpus);
        for r in &reports {
            worst = worst.max(r.worst());
        }
        if args.json {
            let rendered: Vec<String> = reports.iter().map(Report::render_json).collect();
            json_nodes.push(format!(
                "{{\"me\":{},\"reports\":[{}]}}",
                json_string(topo.node_name(me)),
                rendered.join(",")
            ));
        } else {
            render_node(&mut out, &topo, me, &reports);
        }
    }

    let errors = matches!(worst, Some(Severity::Error));
    let warnings = matches!(worst, Some(Severity::Warning));
    let failed = errors || (warnings && args.deny_warnings);
    if args.json {
        println!(
            "{{\"clean\":{},\"nodes\":[{}]}}",
            !errors && !warnings,
            json_nodes.join(",")
        );
    } else {
        print!("{out}");
        println!(
            "stabcheck: {} predicate{} checked, {}",
            corpus.len(),
            if corpus.len() == 1 { "" } else { "s" },
            match worst {
                Some(Severity::Error) => "errors found",
                Some(Severity::Warning) => "warnings found",
                Some(Severity::Info) => "clean (info notes only)",
                None => "clean",
            }
        );
    }
    Ok(ExitCode::from(u8::from(failed)))
}

fn render_node(out: &mut String, topo: &Topology, me: NodeId, reports: &[Report]) {
    for r in reports {
        if r.diagnostics.is_empty() {
            continue;
        }
        out.push_str(&format!("checking at {}:\n", topo.node_name(me)));
        out.push_str(&r.render_human());
    }
}
