//! `stabcheck`: static analysis for stability predicates from the
//! command line.
//!
//! ```text
//! stabcheck --config configs/fig2-ec2.cfg            # lint a deployment
//! stabcheck --paper                                  # lint the paper's examples
//! stabcheck -p 'KTH_MAX(9, $ALLWNODES)'              # lint ad-hoc predicates
//! stabcheck --config c.cfg --me n3 --failure-budget 1
//! stabcheck --config c.cfg --json                    # machine-readable output
//! ```
//!
//! Predicates given with `-p` are linted against the deployment from
//! `--config`, or the paper's Fig. 2 topology when no config is given.
//! Exit codes: `0` clean (info-level findings allowed; warnings allowed
//! unless `--deny-warnings`), `1` findings at the enforced level, `2`
//! usage or I/O error.

use stabilizer_analyze::{
    asymmetry_diagnostic, availability, json_string, render_sets, worst_cut, AckEmissions,
    Analyzer, Availability, PartitionCut, Report, Severity,
};
use stabilizer_core::ClusterConfig;
use stabilizer_dsl::{AckTypeRegistry, NodeId, Predicate, Span, Topology};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: stabcheck [options]
  --config <FILE>        lint the predicates of a cluster config file
  --paper                lint the paper's example predicates (Fig. 2 topology)
  -p, --predicate <SRC>  lint an ad-hoc predicate (repeatable)
  --me <NODE>            node to analyze at (default: first node)
  --all-nodes            analyze at every node of the topology
  --failure-budget <N>   crash budget for the crash-unsatisfiable lint
  --audit                availability audit: exact crash tolerance f*, minimal
                         blocking sets, and partition cuts per predicate, plus
                         the zero-fault-tolerance / partition-vulnerable /
                         tolerance-asymmetry lints (implies --all-nodes for
                         the asymmetry check unless --me is given)
  --json                 emit JSON instead of human-readable diagnostics
  --deny-warnings        exit nonzero on warnings, not just errors
  -h, --help             show this help";

struct Args {
    config: Option<String>,
    paper: bool,
    predicates: Vec<String>,
    me: Option<String>,
    all_nodes: bool,
    failure_budget: Option<usize>,
    audit: bool,
    json: bool,
    deny_warnings: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: None,
        paper: false,
        predicates: Vec::new(),
        me: None,
        all_nodes: false,
        failure_budget: None,
        audit: false,
        json: false,
        deny_warnings: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--config" => args.config = Some(value("--config")?),
            "--paper" => args.paper = true,
            "-p" | "--predicate" => args.predicates.push(value("--predicate")?),
            "--me" => args.me = Some(value("--me")?),
            "--all-nodes" => args.all_nodes = true,
            "--failure-budget" => {
                let v = value("--failure-budget")?;
                args.failure_budget =
                    Some(v.parse().map_err(|_| format!("bad failure budget {v}"))?);
            }
            "--audit" => args.audit = true,
            "--json" => args.json = true,
            "--deny-warnings" => args.deny_warnings = true,
            "-h" | "--help" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if args.config.is_none() && !args.paper && args.predicates.is_empty() {
        return Err(format!("nothing to check\n{USAGE}"));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("stabcheck: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &Args) -> Result<ExitCode, String> {
    // Assemble topology, ACK registry, emissions model, and corpus.
    let acks = AckTypeRegistry::new();
    let mut emissions = AckEmissions::new();
    let mut failure_budget = 0usize;
    let mut corpus: Vec<(String, String)> = Vec::new();
    let mut config: Option<ClusterConfig> = None;
    let topo: Arc<Topology> = if let Some(path) = &args.config {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let cfg = ClusterConfig::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        for (name, emitters) in cfg.ack_types() {
            let ty = acks.register(name);
            if !emitters.is_empty() {
                let ids: Vec<NodeId> = emitters
                    .iter()
                    .filter_map(|n| cfg.topology().node(n))
                    .collect();
                emissions.restrict(ty, &ids);
            }
        }
        failure_budget = cfg.options().failure_budget as usize;
        corpus.extend(cfg.predicates().map(|(k, v)| (k.to_owned(), v.to_owned())));
        let topo = Arc::clone(cfg.topology());
        config = Some(cfg);
        topo
    } else {
        Arc::new(stabilizer_analyze::paper::fig2_topology())
    };
    if args.paper {
        corpus.extend(stabilizer_analyze::paper::examples());
    }
    for (i, src) in args.predicates.iter().enumerate() {
        corpus.push((format!("arg{}", i + 1), src.clone()));
    }
    if let Some(f) = args.failure_budget {
        failure_budget = f;
    }

    // Which nodes to analyze at. An audit defaults to every vantage so
    // the cross-vantage asymmetry check has something to compare.
    let nodes: Vec<NodeId> = if args.all_nodes || (args.audit && args.me.is_none()) {
        topo.all_nodes()
    } else if let Some(name) = &args.me {
        vec![topo
            .node(name)
            .ok_or_else(|| format!("unknown node {name}"))?]
    } else {
        vec![NodeId(0)]
    };

    let mut worst: Option<Severity> = None;
    let mut out = String::new();
    let mut json_nodes: Vec<String> = Vec::new();
    let mut json_audit: Vec<String> = Vec::new();
    // Per predicate key: (vantage name, f*) rows in vantage order, for
    // the cross-vantage asymmetry diagnostic.
    let mut tol_by_key: BTreeMap<String, Vec<(String, i64)>> = BTreeMap::new();
    for me in nodes {
        // A configured predicate evaluates over the vantage's own
        // stream; under a `replicate` directive only that stream's
        // replica set ever acks it, so the analyzer lints explicit
        // operands against it (non-replica-operand).
        let replicas: Option<Vec<NodeId>> = config.as_ref().and_then(|cfg| {
            let p = cfg.placement();
            (!p.is_full_replication()).then(|| p.replicas(me).to_vec())
        });
        let mut analyzer = Analyzer::new(&topo, &acks, me)
            .with_emissions(&emissions)
            .with_failure_budget(failure_budget);
        if let Some(reps) = &replicas {
            analyzer = analyzer.with_replicas(reps);
        }
        let placement = config.as_ref().map(|cfg| cfg.placement().as_ref());
        if args.audit {
            analyzer = analyzer.with_availability_audit();
            if let Some(p) = placement {
                analyzer = analyzer.with_placement(p);
            }
        }
        let reports = analyzer.analyze_set(&corpus);
        for r in &reports {
            worst = worst.max(r.worst());
        }
        if args.json {
            let rendered: Vec<String> = reports.iter().map(Report::render_json).collect();
            json_nodes.push(format!(
                "{{\"me\":{},\"reports\":[{}]}}",
                json_string(topo.node_name(me)),
                rendered.join(",")
            ));
        } else {
            render_node(&mut out, &topo, me, &reports);
        }
        if args.audit {
            audit_node(
                &topo,
                &acks,
                me,
                &corpus,
                replicas.as_deref(),
                placement,
                args.json,
                &mut out,
                &mut json_audit,
                &mut tol_by_key,
            );
        }
    }

    // Cross-vantage asymmetry: a predicate whose f* depends on where it
    // is evaluated is bounded by its weakest vantage.
    let mut asymmetry_reports: Vec<Report> = Vec::new();
    if args.audit {
        for (key, rows) in &tol_by_key {
            let per_vantage: Vec<(&str, i64)> =
                rows.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            let source = corpus
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, s)| s.clone())
                .unwrap_or_default();
            if let Some(d) = asymmetry_diagnostic(&per_vantage, Span::new(0, source.len())) {
                let mut report = Report::new(key, &source);
                report.diagnostics.push(d);
                worst = worst.max(report.worst());
                asymmetry_reports.push(report);
            }
        }
        if !args.json {
            for r in &asymmetry_reports {
                out.push_str(&r.render_human());
            }
        }
    }

    let errors = matches!(worst, Some(Severity::Error));
    let warnings = matches!(worst, Some(Severity::Warning));
    let failed = errors || (warnings && args.deny_warnings);
    if args.json {
        let audit_tail = if args.audit {
            let asym: Vec<String> = asymmetry_reports.iter().map(Report::render_json).collect();
            format!(
                ",\"audit\":[{}],\"asymmetry\":[{}]",
                json_audit.join(","),
                asym.join(",")
            )
        } else {
            String::new()
        };
        println!(
            "{{\"clean\":{},\"nodes\":[{}]{}}}",
            !errors && !warnings,
            json_nodes.join(","),
            audit_tail
        );
    } else {
        print!("{out}");
        println!(
            "stabcheck: {} predicate{} checked, {}",
            corpus.len(),
            if corpus.len() == 1 { "" } else { "s" },
            match worst {
                Some(Severity::Error) => "errors found",
                Some(Severity::Warning) => "warnings found",
                Some(Severity::Info) => "clean (info notes only)",
                None => "clean",
            }
        );
    }
    Ok(ExitCode::from(u8::from(failed)))
}

/// Render the audit table for one vantage: per predicate, exact crash
/// tolerance `f*`, every minimal blocking set, and the cheapest
/// AZ-partition cut that strands the vantage (placement-aware link
/// counting). Also accumulates `tol_by_key` for the asymmetry check.
#[allow(clippy::too_many_arguments)]
fn audit_node(
    topo: &Topology,
    acks: &AckTypeRegistry,
    me: NodeId,
    corpus: &[(String, String)],
    replicas: Option<&[NodeId]>,
    placement: Option<&stabilizer_core::PlacementMap>,
    json: bool,
    out: &mut String,
    json_audit: &mut Vec<String>,
    tol_by_key: &mut BTreeMap<String, Vec<(String, i64)>>,
) {
    let mut text_rows: Vec<String> = Vec::new();
    let mut json_rows: Vec<String> = Vec::new();
    for (name, source) in corpus {
        let Ok(compiled) = Predicate::compile(source, topo, acks, me) else {
            continue; // the lint pass already reported it
        };
        let installed = match replicas {
            Some(reps) => match compiled.restricted_to(reps) {
                Ok(p) => p,
                Err(_) => continue,
            },
            None => compiled,
        };
        if installed.dependencies().is_empty() {
            continue; // vacuous: trivially available everywhere
        }
        let avail = availability(&installed, topo, me);
        let cut = worst_cut(&avail, topo, placement);
        tol_by_key
            .entry(name.clone())
            .or_default()
            .push((topo.node_name(me).to_owned(), avail.tolerance));
        if json {
            json_rows.push(render_audit_json(name, &avail, cut.as_ref(), topo));
        } else {
            text_rows.push(render_audit_row(name, &avail, cut.as_ref(), topo));
        }
    }
    if json {
        json_audit.push(format!(
            "{{\"me\":{},\"predicates\":[{}]}}",
            json_string(topo.node_name(me)),
            json_rows.join(",")
        ));
    } else if !text_rows.is_empty() {
        out.push_str(&format!("availability at {}:\n", topo.node_name(me)));
        for row in text_rows {
            out.push_str(&row);
        }
    }
}

fn render_audit_row(
    name: &str,
    avail: &Availability,
    cut: Option<&PartitionCut>,
    topo: &Topology,
) -> String {
    const MAX_SETS: usize = 8;
    let fstar = if avail.unbounded() {
        "unbounded".to_owned()
    } else if avail.tolerance < 0 {
        "blocked".to_owned()
    } else {
        avail.tolerance.to_string()
    };
    let blocking = if avail.unbounded() {
        "none".to_owned()
    } else {
        let shown = &avail.blocking_sets[..avail.blocking_sets.len().min(MAX_SETS)];
        let mut s = render_sets(shown, topo);
        if avail.blocking_sets.len() > MAX_SETS {
            s.push_str(&format!(
                " (+{} more)",
                avail.blocking_sets.len() - MAX_SETS
            ));
        }
        s
    };
    let cut = match cut {
        Some(c) => format!(
            "isolate {} severing {} link{}",
            c.far_azs.join("+"),
            c.severed_links,
            if c.severed_links == 1 { "" } else { "s" }
        ),
        None => "none".to_owned(),
    };
    format!("  {name}: f* = {fstar}  blocking: {blocking}  worst cut: {cut}\n")
}

fn render_audit_json(
    name: &str,
    avail: &Availability,
    cut: Option<&PartitionCut>,
    topo: &Topology,
) -> String {
    let sets: Vec<String> = avail
        .blocking_sets
        .iter()
        .map(|set| {
            let names: Vec<String> = set
                .iter()
                .map(|n| json_string(topo.node_name(*n)))
                .collect();
            format!("[{}]", names.join(","))
        })
        .collect();
    let cut = match cut {
        Some(c) => {
            let azs: Vec<String> = c.far_azs.iter().map(|a| json_string(a)).collect();
            format!(
                "{{\"azs\":[{}],\"severed_links\":{}}}",
                azs.join(","),
                c.severed_links
            )
        }
        None => "null".to_owned(),
    };
    format!(
        "{{\"name\":{},\"tolerance\":{},\"unbounded\":{},\"blocking_sets\":[{}],\"worst_cut\":{}}}",
        json_string(name),
        avail.tolerance,
        avail.unbounded(),
        sets.join(","),
        cut
    )
}

fn render_node(out: &mut String, topo: &Topology, me: NodeId, reports: &[Report]) {
    for r in reports {
        if r.diagnostics.is_empty() {
            continue;
        }
        out.push_str(&format!("checking at {}:\n", topo.node_name(me)));
        out.push_str(&r.render_human());
    }
}
