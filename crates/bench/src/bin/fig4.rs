//! Fig. 4: the (synthetic) Dropbox trace's file-size distribution over
//! the 17-minute window, plus its aggregate statistics.

use stabilizer_bench::{bytes, f, print_table};
use stabilizer_filebackup::{DropboxTrace, TRACE_SECONDS};

fn main() {
    let trace = DropboxTrace::generate(42, 1.0);
    println!("window: 16:40:45 -> 16:57:08 ({TRACE_SECONDS}s)");
    println!("files: {}", trace.len());
    println!("total: {}", bytes(trace.total_bytes()));
    println!("8KiB chunks: {} (paper: 517,294)", trace.total_chunks());
    println!("largest file: {}", bytes(trace.max_file_bytes()));
    println!();

    let hist = trace.per_minute_mbytes();
    let max = hist.iter().cloned().fold(0.0f64, f64::max);
    let mut rows = Vec::new();
    for (m, v) in hist.iter().enumerate() {
        let bar = "#".repeat(((v / max) * 50.0).round() as usize);
        rows.push(vec![format!("16:{:02}", 40 + m), f(*v, 1), bar]);
    }
    print_table(
        "Fig. 4: per-minute sync volume (MB)",
        &["minute", "MB", ""],
        &rows,
    );
}
