//! §VI-A microbenchmark: DSL compilation and evaluation cost for 1–5
//! operators and 5–20 operands (wall-clock, single-shot averages — the
//! Criterion bench `dsl_cost` provides rigorous statistics).

use stabilizer_bench::{f, print_table};
use stabilizer_dsl::{AckTypeId, AckTypeRegistry, AckView, NodeId, Predicate, Topology};
use std::time::Instant;

struct Zero;
impl AckView for Zero {
    fn ack(&self, _n: NodeId, _t: AckTypeId) -> u64 {
        7
    }
}

fn topo(n: usize) -> Topology {
    let names: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    Topology::builder()
        .az("A", &refs)
        .build()
        .expect("topology")
}

/// A predicate with `ops` nested KTH_MIN operators over `operands` nodes.
fn pred_src(ops: usize, operands: usize) -> String {
    let list: Vec<String> = (1..=operands).map(|i| format!("${i}")).collect();
    let mut src = format!("KTH_MIN(2, {})", list.join(", "));
    for _ in 1..ops {
        src = format!("KTH_MIN(2, {}, {src})", list.join(", "));
    }
    src
}

fn main() {
    let mut rows = Vec::new();
    for ops in 1..=5 {
        for operands in [5usize, 10, 15, 20] {
            let topo = topo(operands);
            let acks = AckTypeRegistry::new();
            let src = pred_src(ops, operands);

            let t0 = Instant::now();
            const COMPILES: u32 = 200;
            for _ in 0..COMPILES {
                let _ = Predicate::compile(&src, &topo, &acks, NodeId(0)).expect("compiles");
            }
            let compile_us = t0.elapsed().as_secs_f64() * 1e6 / COMPILES as f64;

            let pred = Predicate::compile(&src, &topo, &acks, NodeId(0)).expect("compiles");
            let mut scratch =
                stabilizer_dsl::EvalScratch::with_capacity(pred.program().max_stack());
            let t1 = Instant::now();
            const EVALS: u32 = 100_000;
            let mut acc = 0u64;
            for _ in 0..EVALS {
                acc = acc.wrapping_add(pred.eval_with(&Zero, &mut scratch));
            }
            let eval_ns = t1.elapsed().as_secs_f64() * 1e9 / EVALS as f64;
            std::hint::black_box(acc);

            rows.push(vec![
                ops.to_string(),
                operands.to_string(),
                f(compile_us, 1),
                f(eval_ns, 0),
            ]);
        }
    }
    print_table(
        "VI-A microbenchmark: predicate compile and evaluate cost",
        &["operators", "operands", "compile (us)", "eval (ns)"],
        &rows,
    );
    println!("paper reference: <=0.2 ms compute, <=30 ms one-time compile (libgccjit)");
}
