//! Table III: the six evaluation predicates — parse, resolve at the
//! sender (n1) of the Fig. 2 topology, and show their compiled form.

use stabilizer_bench::print_table;
use stabilizer_dsl::{AckTypeRegistry, NodeId, Predicate, Topology};
use stabilizer_filebackup::TABLE3_PREDICATES;

fn main() {
    let topo = Topology::builder()
        .az("North_California", &["n1", "n2"])
        .az("North_Virginia", &["n3", "n4", "n5", "n6"])
        .az("Oregon", &["n7"])
        .az("Ohio", &["n8"])
        .build()
        .expect("static topology");
    let acks = AckTypeRegistry::new();
    let mut rows = Vec::new();
    for (name, src) in TABLE3_PREDICATES {
        let pred = Predicate::compile(src, &topo, &acks, NodeId(0)).expect("Table III compiles");
        rows.push(vec![
            name.to_owned(),
            src.to_owned(),
            format!("{}", pred.resolved().expr),
            pred.program().instrs().len().to_string(),
        ]);
    }
    print_table(
        "Table III: predicates used in the experiments (resolved at n1)",
        &["Name", "Predicate", "Resolved form", "Instrs"],
        &rows,
    );
}
