//! Partial-replication capacity scaling on the deterministic simulator.
//!
//! For each cluster size N the bench runs the same publish workload
//! twice: once under a disjoint 3-replica placement (`replicate` lines
//! pin each stream to its group of three) and once under full
//! replication. Every node carries the same egress NIC budget
//! ([`set_egress_limit`](stabilizer_netsim::Simulation::set_egress_limit)),
//! so a publish costs its origin one wire copy per replica: two under
//! the 3-replica placement regardless of N, N-1 under full
//! replication. The run measures the virtual time for every origin's
//! own-stream `All` frontier (MIN over the stream's replica set) to
//! cover the load, and reports aggregate stabilized throughput —
//! published messages per second summed across the cluster. Under
//! partial replication that aggregate grows with N (per-node cost is
//! constant); under full replication it stays flat (per-node cost
//! grows as N-1), which is the capacity argument for placement.
//!
//! Everything runs in virtual time on the seeded simulator, so the
//! table is deterministic: two runs print identical numbers.
//!
//! Usage:
//!   placement_scale [MSGS] [PAYLOAD_BYTES]
//!   placement_scale --replay-hash SEED
//!
//! The second form runs a fixed 9-node partially-replicated scenario
//! and prints an FNV-1a hash over every observable log (deliveries and
//! frontier advances at every node). Two separate processes must print
//! byte-identical output — the seed-replay acceptance check that
//! placement-aware routing stays deterministic.

use bytes::Bytes;
use stabilizer_bench::{f, print_table};
use stabilizer_core::{sim_driver::build_cluster, ClusterConfig, NodeId};
use stabilizer_netsim::{NetTopology, SimDuration, SimTime};
use std::fmt::Write as _;

const CLUSTER_SIZES: [usize; 4] = [6, 9, 12, 15];
/// Per-node egress budget. Small enough that serialization delay, not
/// propagation delay, dominates the virtual-time measurement.
const EGRESS_BYTES_PER_SEC: f64 = 1_000_000.0;

/// N nodes in two AZs. With `partial`, each stream is pinned to its
/// disjoint group of three (N must be divisible by 3); without, every
/// stream mirrors everywhere.
fn cfg_text(n: usize, partial: bool) -> String {
    assert_eq!(n % 3, 0, "disjoint 3-groups need N divisible by 3");
    let mut cfg = String::new();
    for (az, range) in [(0, 0..n / 2), (1, n / 2..n)] {
        cfg.push_str(&format!("az AZ{az}"));
        for i in range {
            cfg.push_str(&format!(" n{i}"));
        }
        cfg.push('\n');
    }
    if partial {
        for i in 0..n {
            let g = i / 3 * 3;
            cfg.push_str(&format!("replicate n{i} n{g} n{} n{}\n", g + 1, g + 2));
        }
    }
    // No periodic options: a nonzero ack_flush/heartbeat period arms a
    // forever-rearming timer and the simulator never goes idle. The
    // defaults flush ACKs eagerly, which is also the fair comparison —
    // ACK fan-out is part of the replication cost being measured.
    cfg.push_str("predicate All MIN($ALLWNODES-$MYWNODE)\n");
    cfg.push_str("option send_buffer_bytes 8388608\n");
    cfg
}

/// One measured run: every node publishes `msgs` messages of `payload`
/// bytes; returns the virtual seconds until the slowest origin's `All`
/// frontier covers its load.
fn run_sim(n: usize, partial: bool, msgs: u64, payload: usize) -> f64 {
    let cfg = ClusterConfig::parse(&cfg_text(n, partial)).expect("static config parses");
    let net = NetTopology::full_mesh(n, SimDuration::from_millis(5), 1e12);
    let mut sim = build_cluster(&cfg, net, 7).expect("cluster builds");
    for i in 0..n {
        sim.set_egress_limit(i, EGRESS_BYTES_PER_SEC);
    }
    let body = Bytes::from(vec![0x5a; payload]);
    for _ in 0..msgs {
        for i in 0..n {
            sim.with_ctx(i, |node, ctx| node.publish_in(ctx, body.clone()))
                .expect("publish");
        }
    }
    sim.run_until_idle();
    let mut covered_at = SimTime::ZERO;
    for i in 0..n {
        let at = sim
            .actor(i)
            .frontier_log
            .iter()
            .find(|(_, u)| u.stream == NodeId(i as u16) && u.key == "All" && u.seq >= msgs)
            .map(|(t, _)| *t)
            .unwrap_or_else(|| panic!("origin {i}'s All frontier never covered {msgs}"));
        covered_at = covered_at.max(at);
    }
    covered_at.as_nanos() as f64 / 1e9
}

fn capacity_table(msgs: u64, payload: usize) {
    println!(
        "disjoint 3-replica placement vs full replication, {msgs} msgs x {payload} B per node, \
         {:.1} MB/s egress per node (virtual time, deterministic)\n",
        EGRESS_BYTES_PER_SEC / 1e6
    );
    let mut rows = Vec::new();
    let mut base_partial = 0.0f64;
    for &n in &CLUSTER_SIZES {
        let t_partial = run_sim(n, true, msgs, payload);
        let t_full = run_sim(n, false, msgs, payload);
        let agg_partial = (n as u64 * msgs) as f64 / t_partial;
        let agg_full = (n as u64 * msgs) as f64 / t_full;
        if n == CLUSTER_SIZES[0] {
            base_partial = agg_partial;
        }
        rows.push(vec![
            n.to_string(),
            f(agg_partial, 0),
            f(agg_full, 0),
            format!("{}x", f(agg_partial / agg_full, 2)),
            format!("{}x", f(agg_partial / base_partial, 2)),
        ]);
    }
    print_table(
        "aggregate stabilized throughput (published msg/s, cluster-wide)",
        &[
            "nodes",
            "3-replica msg/s",
            "full-repl msg/s",
            "partial/full",
            "growth",
        ],
        &rows,
    );
}

/// Deterministic 9-node partially-replicated scenario, FNV-1a hashed.
fn replay_hash(seed: u64) {
    let n = 9usize;
    let cfg = ClusterConfig::parse(&cfg_text(n, true)).expect("static config parses");
    let net = NetTopology::full_mesh(n, SimDuration::from_millis(5), 1e9);
    let mut sim = build_cluster(&cfg, net, seed).expect("cluster builds");
    // Seed-derived (but Date/rand-free) publish sizes: a simple LCG.
    let mut state = seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize % 480 + 16
    };
    for round in 0..40u64 {
        for origin in 0..n {
            let len = next();
            sim.with_ctx(origin, |node, ctx| {
                node.publish_in(ctx, Bytes::from(vec![round as u8; len]))
            })
            .expect("publish");
        }
        if round % 10 == 9 {
            sim.with_ctx(0, |node, ctx| {
                node.waitfor_in(ctx, NodeId(0), "All", round + 1)
            })
            .expect("waitfor");
        }
    }
    sim.run_until_idle();

    let mut transcript = String::new();
    for i in 0..n {
        let a = sim.actor(i);
        for (t, u) in &a.frontier_log {
            writeln!(
                transcript,
                "{i} F {t:?} {} {} {} {}",
                u.stream.0, u.key, u.seq, u.generation
            )
            .unwrap();
        }
        for (t, o, s, l) in &a.delivery_log {
            writeln!(transcript, "{i} D {t:?} {} {s} {l}", o.0).unwrap();
        }
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in transcript.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    println!(
        "replay seed={seed} events={} hash={hash:016x}",
        transcript.lines().count()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--replay-hash") {
        let seed = args
            .get(1)
            .and_then(|s| s.parse().ok())
            .expect("--replay-hash SEED");
        replay_hash(seed);
        return;
    }
    let msgs = args.first().and_then(|s| s.parse().ok()).unwrap_or(120);
    let payload = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    capacity_table(msgs, payload);
}
