//! Table I: network status between North California and the other
//! regions — configured values versus what the simulator's ping and
//! bulk-transfer probes actually measure.

use stabilizer_bench::{f, print_table};
use stabilizer_netsim::{measure_rtt, measure_throughput, NetTopology};

fn main() {
    let net = NetTopology::ec2_fig2();
    // Sender n1 (index 0) to a representative node of each Table I row.
    let rows_spec: [(&str, usize); 4] = [
        ("North California*", 1),
        ("Ohio", 7),
        ("Oregon", 6),
        ("North Virginia", 2),
    ];
    let mut rows = Vec::new();
    for (region, idx) in rows_spec {
        let spec = net.link(0, idx).expect("link exists");
        let rtt = measure_rtt(&net, 0, idx);
        let thr = measure_throughput(&net, 0, idx, 16 * 1024 * 1024, 8192);
        rows.push(vec![
            region.to_owned(),
            f(spec.rtt().as_millis_f64(), 2),
            f(rtt.as_millis_f64(), 2),
            f(spec.mbit_per_sec(), 1),
            f(thr, 1),
        ]);
    }
    print_table(
        "Table I: North California <-> other regions (emulated EC2, halved throughput)",
        &[
            "Region",
            "Lat cfg (ms)",
            "Lat meas (ms)",
            "Half Thp cfg (Mbit/s)",
            "Thp meas (Mbit/s)",
        ],
        &rows,
    );
    println!("* between availability zones within the North California region");
}
