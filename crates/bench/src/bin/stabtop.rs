//! `stabtop` — a `top`-style console for a live Stabilizer node.
//!
//! Points at the HTTP telemetry endpoint a runtime exposes via
//! `serve_addr` (or a demo's `--serve` flag), scrapes `/metrics.json`
//! and `/stall`, and renders the cluster's pulse: throughput counters,
//! publish→deliver / publish→stable latency quantiles, and — the part
//! `top` can't show you — the frontier blame table naming exactly which
//! peer's ACK cell is holding each stalled predicate back.
//!
//! ```text
//! stabtop <ADDR>                    # refresh every second until Ctrl-C
//! stabtop --once <ADDR>             # one snapshot, then exit
//! stabtop --watch --interval-millis 250 <ADDR>
//! ```
//!
//! Exit status: 0 when the scrape succeeded and nothing is stalled,
//! 3 when any frontier is stalled (so scripts can alert on it),
//! 1 on scrape errors.

use stabilizer_telemetry::{http_get, parse_json, JsonValue};
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: stabtop [--once | --watch] [--interval-millis N] <ADDR>");
    std::process::exit(2);
}

fn fmt_ms(ns: f64) -> String {
    format!("{:.2}ms", ns / 1e6)
}

/// Split a series key `name{label="v",...}` into `(name, labels)`.
fn split_series(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => (&key[..i], key[i..].trim_matches(|c| c == '{' || c == '}')),
        None => (key, ""),
    }
}

/// Value of one label inside a rendered label string.
fn label_value<'a>(labels: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("{name}=\"");
    let start = labels.find(&pat)? + pat.len();
    let end = labels[start..].find('"')? + start;
    Some(&labels[start..end])
}

fn num(v: &JsonValue) -> f64 {
    v.as_f64().unwrap_or(0.0)
}

/// Sum every series of counter `name`, returning (total, per-node rows).
fn counter_total(counters: &[(String, JsonValue)], name: &str) -> u64 {
    counters
        .iter()
        .filter(|(k, _)| split_series(k).0 == name)
        .map(|(_, v)| num(v) as u64)
        .sum()
}

fn render_metrics(metrics: &JsonValue) -> String {
    let mut out = String::new();
    let empty: &[(String, JsonValue)] = &[];
    let gauges = metrics
        .get("gauges")
        .and_then(|g| g.as_obj())
        .unwrap_or(empty);
    let counters = metrics
        .get("counters")
        .and_then(|c| c.as_obj())
        .unwrap_or(empty);
    let histograms = metrics
        .get("histograms")
        .and_then(|h| h.as_obj())
        .unwrap_or(empty);

    for (k, _) in gauges {
        let (name, labels) = split_series(k);
        if name == "stab_build_info" {
            out.push_str(&format!(
                "build   version={} git={} shards={}\n",
                label_value(labels, "version").unwrap_or("?"),
                label_value(labels, "git_hash").unwrap_or("?"),
                label_value(labels, "shards").unwrap_or("?"),
            ));
        }
    }
    for (k, _) in gauges {
        let (name, labels) = split_series(k);
        if name == "stab_placement_info" {
            out.push_str(&format!(
                "place   hash={} partial={}\n",
                label_value(labels, "placement_hash").unwrap_or("?"),
                label_value(labels, "partial").unwrap_or("?"),
            ));
        }
    }
    let mut replica_rows: Vec<String> = gauges
        .iter()
        .filter(|(k, _)| split_series(k).0 == "stab_stream_replicas")
        .filter_map(|(k, _)| {
            let labels = split_series(k).1;
            Some(format!(
                "stream {} -> {{{}}}",
                label_value(labels, "stream")?,
                label_value(labels, "replicas")?,
            ))
        })
        .collect();
    // Only show the per-stream table for partial placements; under full
    // replication every row would just repeat the whole node set.
    if gauges.iter().any(|(k, _)| {
        let (name, labels) = split_series(k);
        name == "stab_placement_info" && label_value(labels, "partial") == Some("true")
    }) && !replica_rows.is_empty()
    {
        replica_rows.sort_by_key(|r| {
            r.strip_prefix("stream ")
                .and_then(|s| s.split(' ').next())
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0)
        });
        out.push_str(&format!("replicas  {}\n", replica_rows.join("  ")));
    }
    // Exact crash tolerance per predicate key, as the availability
    // prover computed it at install time (min across vantages).
    let mut tol_rows: Vec<(String, i64)> = gauges
        .iter()
        .filter(|(k, _)| split_series(k).0 == "stab_predicate_tolerance")
        .filter_map(|(k, v)| {
            let key = label_value(split_series(k).1, "key")?;
            Some((key.to_owned(), num(v) as i64))
        })
        .collect();
    if !tol_rows.is_empty() {
        tol_rows.sort();
        let rendered: Vec<String> = tol_rows
            .iter()
            .map(|(key, tol)| match tol {
                -1 => format!("{key}=blocked"),
                t => format!("{key}=f*{t}"),
            })
            .collect();
        out.push_str(&format!("f*      {}\n", rendered.join("  ")));
    }
    if let Some((_, v)) = gauges
        .iter()
        .find(|(k, _)| split_series(k).0 == "stab_uptime_seconds")
    {
        out.push_str(&format!("uptime  {:.0}s\n", num(v)));
    }
    out.push_str(&format!(
        "totals  published={} delivered={} frontier_advances={} catch_ups={} suspicions={}\n",
        counter_total(counters, "stab_publishes_total"),
        counter_total(counters, "stab_deliveries_total"),
        counter_total(counters, "stab_frontier_advances_total"),
        counter_total(counters, "stab_catch_ups_total"),
        counter_total(counters, "stab_suspicions_total"),
    ));
    let joins = counter_total(counters, "stab_joins_total");
    if joins > 0 {
        out.push_str(&format!(
            "xfer    joins={} transfer_chunks_sent={}\n",
            joins,
            counter_total(counters, "stab_transfer_chunks_sent_total"),
        ));
    }

    let mut rows = Vec::new();
    for (k, h) in histograms {
        let (name, labels) = split_series(k);
        let series = match name {
            "stab_deliver_latency_ns" => "deliver".to_owned(),
            "stab_stability_latency_ns" => {
                format!("stable[{}]", label_value(labels, "key").unwrap_or("?"))
            }
            _ => continue,
        };
        let count = h.get("count").map(num).unwrap_or(0.0);
        if count == 0.0 {
            continue;
        }
        rows.push(format!(
            "  {series:<16} n={count:<7} p50={} p99={} max={}",
            fmt_ms(h.get("p50").map(num).unwrap_or(0.0)),
            fmt_ms(h.get("p99").map(num).unwrap_or(0.0)),
            fmt_ms(h.get("max").map(num).unwrap_or(0.0)),
        ));
    }
    if !rows.is_empty() {
        out.push_str("latency\n");
        rows.sort();
        for r in rows {
            out.push_str(&r);
            out.push('\n');
        }
    }
    out
}

/// Render `/stall` reports; returns (text, any_stalled).
fn render_stall(stall: &JsonValue) -> (String, bool) {
    let empty: &[JsonValue] = &[];
    let reports = stall
        .get("reports")
        .and_then(|r| r.as_arr())
        .unwrap_or(empty);
    let mut out = String::new();
    let (mut ok, mut stalled) = (0usize, Vec::new());
    for r in reports {
        if r.get("stalled").and_then(|s| s.as_bool()) != Some(true) {
            ok += 1;
            continue;
        }
        let whose = match (r.get("shard").and_then(|s| s.as_i64()), r.get("observer")) {
            (Some(shard), _) => format!("shard {shard} "),
            (None, Some(obs)) => format!("node {} ", num(obs) as u64),
            _ => String::new(),
        };
        let mut line = format!(
            "  {whose}stream {} key \"{}\": frontier {} < target {}  <-",
            r.get("stream").map(num).unwrap_or(0.0) as u64,
            r.get("key").and_then(|k| k.as_str()).unwrap_or("?"),
            r.get("frontier").map(num).unwrap_or(0.0) as u64,
            r.get("target").map(num).unwrap_or(0.0) as u64,
        );
        for b in r.get("blamed").and_then(|b| b.as_arr()).unwrap_or(empty) {
            line.push_str(&format!(
                " node {} {}={} (need {}{})",
                b.get("node").map(num).unwrap_or(0.0) as u64,
                b.get("ack_type_name")
                    .and_then(|n| n.as_str())
                    .unwrap_or("?"),
                b.get("have").map(num).unwrap_or(0.0) as u64,
                b.get("need").map(num).unwrap_or(0.0) as u64,
                if b.get("suspected").and_then(|s| s.as_bool()) == Some(true) {
                    ", SUSPECTED"
                } else {
                    ""
                },
            ));
        }
        for u in r
            .get("unsatisfiable")
            .and_then(|u| u.as_arr())
            .unwrap_or(empty)
        {
            line.push_str(&format!(" [unsatisfiable: {}]", u.as_str().unwrap_or("?")));
        }
        stalled.push(line);
    }
    out.push_str(&format!(
        "frontiers  {} ok, {} stalled\n",
        ok,
        stalled.len()
    ));
    for line in &stalled {
        out.push_str(line);
        out.push('\n');
    }
    (out, !stalled.is_empty())
}

/// One scrape + render; returns whether anything is stalled.
fn snapshot(addr: &str) -> Result<bool, String> {
    let (code, metrics_body) =
        http_get(addr, "/metrics.json").map_err(|e| format!("GET {addr}/metrics.json: {e}"))?;
    if code != 200 {
        return Err(format!("GET {addr}/metrics.json: HTTP {code}"));
    }
    let metrics = parse_json(&metrics_body).map_err(|e| format!("metrics.json: {e}"))?;
    let (code, stall_body) =
        http_get(addr, "/stall").map_err(|e| format!("GET {addr}/stall: {e}"))?;

    print!("stabtop — {addr}\n{}", render_metrics(&metrics));
    let any_stalled = if code == 200 {
        let stall = parse_json(&stall_body).map_err(|e| format!("stall body: {e}"))?;
        let (text, any) = render_stall(&stall);
        print!("{text}");
        any
    } else {
        // A runtime without a stall provider (bench endpoints) serves
        // metrics only; that is not an error.
        println!("frontiers  (no /stall route on this endpoint)");
        false
    };
    Ok(any_stalled)
}

fn main() {
    let mut addr: Option<String> = None;
    let mut watch = true;
    let mut interval = Duration::from_millis(1000);
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--once" => watch = false,
            "--watch" => watch = true,
            "--interval-millis" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => interval = Duration::from_millis(ms),
                None => usage(),
            },
            other if addr.is_none() && !other.starts_with('-') => addr = Some(other.to_owned()),
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };

    loop {
        let stalled = match snapshot(&addr) {
            Ok(stalled) => stalled,
            Err(e) => {
                eprintln!("stabtop: {e}");
                std::process::exit(1);
            }
        };
        if !watch {
            std::process::exit(if stalled { 3 } else { 0 });
        }
        std::thread::sleep(interval);
        // ANSI clear + home, like top(1); harmless when redirected.
        print!("\x1b[2J\x1b[H");
    }
}
