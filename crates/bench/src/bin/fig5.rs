//! Fig. 5: stability-frontier latency per message for the six Table III
//! predicates, driven by the Dropbox trace on the Fig. 2 topology.
//!
//! Usage: `fig5 [scale] [jitter_ms]` — trace scale in (0,1], default
//! 0.05 (pass 1.0 for the paper's full 3.87 GB / ≈517k-message run), and
//! optional per-message link jitter in milliseconds (the real testbed's
//! natural variance, which separates MajorityWNodes from AllWNodes).

use stabilizer_bench::{f, print_table};
use stabilizer_filebackup::{fig5_run, fig5_run_jittered, summarize};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.05);
    let jitter_ms: f64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.0);
    eprintln!("running trace at scale {scale}, jitter {jitter_ms}ms ...");
    let r = if jitter_ms > 0.0 {
        fig5_run_jittered(scale, jitter_ms, 42)
    } else {
        fig5_run(scale, 42)
    };
    println!("messages sent: {}", r.messages);
    println!();

    let mut rows = Vec::new();
    for (key, lat) in &r.series {
        let s = summarize(lat, usize::MAX);
        rows.push(vec![
            key.clone(),
            f(s.mean.as_secs_f64(), 3),
            f(s.max.as_secs_f64(), 3),
            s.covered.to_string(),
        ]);
    }
    print_table(
        "Fig. 5 summary: frontier latency per predicate",
        &["predicate", "mean (s)", "max/spike (s)", "covered"],
        &rows,
    );

    // Plot-style series: one sample every N messages.
    let every = (r.messages as usize / 40).max(1);
    let mut rows = Vec::new();
    let samples: Vec<_> = r
        .series
        .iter()
        .map(|(k, lat)| (k, summarize(lat, every)))
        .collect();
    for i in 0..samples[0].1.samples.len() {
        let mut row = vec![samples[0].1.samples[i].0.to_string()];
        for (_, s) in &samples {
            row.push(
                s.samples
                    .get(i)
                    .map(|(_, l)| f(l.as_secs_f64(), 3))
                    .unwrap_or_default(),
            );
        }
        rows.push(row);
    }
    let mut header = vec!["seq".to_owned()];
    header.extend(r.series.iter().map(|(k, _)| k.clone()));
    print_table(
        "Fig. 5 series: latency (s) sampled along the trace",
        &header,
        &rows,
    );
}
