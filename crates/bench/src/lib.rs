//! # Experiment harness
//!
//! One binary per table and figure of the paper's evaluation (§VI),
//! regenerating the same rows/series over the simulated testbeds, plus
//! Criterion micro-benchmarks (`cargo bench -p stabilizer-bench`) for
//! the DSL-cost study and the design-choice ablations.
//!
//! Run e.g. `cargo run --release -p stabilizer-bench --bin fig6`.

use std::fmt::Display;

/// Render an aligned plain-text table: `header` then `rows`.
pub fn print_table<H: Display, C: Display>(title: &str, header: &[H], rows: &[Vec<C>]) {
    println!("== {title} ==");
    let header: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in &rows {
        for (i, c) in r.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(c.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate().take(cols) {
            line.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", line.trim_end());
    };
    fmt_row(&header);
    for r in &rows {
        fmt_row(r);
    }
    println!();
}

/// Format a float with `digits` decimals.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Human-readable byte size.
pub fn bytes(v: u64) -> String {
    if v >= 1 << 30 {
        format!("{:.2}GiB", v as f64 / (1u64 << 30) as f64)
    } else if v >= 1 << 20 {
        format!("{:.1}MiB", v as f64 / (1u64 << 20) as f64)
    } else if v >= 1 << 10 {
        format!("{:.0}KiB", v as f64 / 1024.0)
    } else {
        format!("{v}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_formats_units() {
        assert_eq!(bytes(512), "512B");
        assert_eq!(bytes(8192), "8KiB");
        assert_eq!(bytes(100 << 20), "100.0MiB");
        assert_eq!(bytes(4 << 30), "4.00GiB");
    }

    #[test]
    fn f_formats_decimals() {
        assert_eq!(f(24.7512, 2), "24.75");
    }
}
