//! Data-plane hot-path benchmarks: publish (sequence + buffer + fan-out),
//! receive-path FIFO reassembly, and the wire codec.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stabilizer_core::data_plane::{ReceiveState, SendBuffer};
use stabilizer_core::{ClusterConfig, NodeId, StabilizerNode, WireMsg};
use stabilizer_dsl::AckTypeRegistry;
use std::sync::Arc;

fn cfg() -> ClusterConfig {
    ClusterConfig::parse(
        "az NC n1 n2\naz NV n3 n4 n5 n6\naz OR n7\naz OH n8\n\
         predicate AllWNodes MIN($ALLWNODES-$MYWNODE)\n\
         option send_buffer_bytes 8589934592\n",
    )
    .unwrap()
}

fn bench_publish(c: &mut Criterion) {
    // One full publish/ack/reclaim cycle per iteration: publish at the
    // origin, then process the `received` ACKs from every peer, which
    // re-evaluates the predicate and reclaims the buffer slot (so the
    // send buffer stays bounded no matter how long Criterion iterates).
    let mut g = c.benchmark_group("publish_ack_cycle");
    for size in [256usize, 8192] {
        let mut node =
            StabilizerNode::new(cfg(), NodeId(0), Arc::new(AckTypeRegistry::new())).unwrap();
        let payload = Bytes::from(vec![0u8; size]);
        let n = node.config().num_nodes() as u16;
        g.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| {
                let seq = node.publish(payload.clone()).unwrap();
                node.take_actions();
                for peer in 1..n {
                    node.on_message(
                        0,
                        NodeId(peer),
                        stabilizer_core::WireMsg::AckBatch(vec![stabilizer_core::Ack {
                            stream: NodeId(0),
                            ty: stabilizer_core::RECEIVED,
                            seq,
                        }]),
                    );
                }
                node.take_actions();
                seq
            })
        });
    }
    g.finish();
}

fn bench_receive_reassembly(c: &mut Criterion) {
    c.bench_function("receive_in_order", |b| {
        let mut rs = ReceiveState::new();
        let payload = Bytes::from(vec![0u8; 8192]);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            rs.on_data(seq, payload.clone())
        })
    });
    c.bench_function("send_buffer_publish_reclaim", |b| {
        let mut sb = SendBuffer::new(usize::MAX);
        let payload = Bytes::from(vec![0u8; 8192]);
        b.iter(|| {
            let s = sb.publish(payload.clone()).unwrap();
            sb.reclaim(s);
            s
        })
    });
}

fn bench_reorder_tolerance(c: &mut Criterion) {
    // DESIGN.md ablation: cost of the receive-side reorder buffer when
    // the transport is FIFO (in-order arrivals, the hot path) vs a
    // worst-case fully reversed 64-message window.
    c.bench_function("receive_reversed_window_64", |b| {
        let payload = Bytes::from(vec![0u8; 1024]);
        let mut base = 0u64;
        let mut rs = ReceiveState::new();
        b.iter(|| {
            let mut delivered = 0;
            for seq in (base + 1..=base + 64).rev() {
                delivered += rs.on_data(seq, payload.clone()).len();
            }
            base += 64;
            delivered
        })
    });
}

fn bench_codec(c: &mut Criterion) {
    let msg = WireMsg::Data {
        origin: NodeId(3),
        seq: 12345,
        payload: Bytes::from(vec![7u8; 8192]),
    };
    let encoded = msg.to_bytes();
    c.bench_function("wire_encode_8k", |b| b.iter(|| msg.to_bytes()));
    c.bench_function("wire_decode_8k", |b| {
        b.iter(|| WireMsg::decode(&encoded).unwrap())
    });
}

criterion_group!(
    benches,
    bench_publish,
    bench_receive_reassembly,
    bench_reorder_tolerance,
    bench_codec
);
criterion_main!(benches);
