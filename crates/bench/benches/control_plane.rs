//! Control-plane hot-path benchmarks: ACK-recorder max-merge and
//! frontier-engine incremental re-evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stabilizer_core::{AckRecorder, FrontierEngine};
use stabilizer_dsl::{AckTypeRegistry, NodeId, Predicate, Topology, RECEIVED};

fn topo8() -> Topology {
    Topology::builder()
        .az("NC", &["n1", "n2"])
        .az("NV", &["n3", "n4", "n5", "n6"])
        .az("OR", &["n7"])
        .az("OH", &["n8"])
        .build()
        .unwrap()
}

fn bench_recorder(c: &mut Criterion) {
    let mut rec = AckRecorder::new(8, 3);
    let mut seq = 0u64;
    c.bench_function("recorder_observe_advancing", |b| {
        b.iter(|| {
            seq += 1;
            rec.observe(NodeId(0), NodeId(3), RECEIVED, seq)
        })
    });
    c.bench_function("recorder_observe_stale", |b| {
        b.iter(|| rec.observe(NodeId(0), NodeId(3), RECEIVED, 1))
    });
}

fn bench_frontier_engine(c: &mut Criterion) {
    let topo = topo8();
    let acks = AckTypeRegistry::new();
    let mut g = c.benchmark_group("frontier_on_ack_advance");
    for npreds in [1usize, 6, 24] {
        let mut eng = FrontierEngine::new();
        let mut rec = AckRecorder::new(8, 3);
        let mut out = Vec::new();
        let mut done = Vec::new();
        for i in 0..npreds {
            let pred =
                Predicate::compile("MIN($ALLWNODES-$MYWNODE)", &topo, &acks, NodeId(0)).unwrap();
            eng.register(NodeId(0), &format!("p{i}"), pred, &rec, &mut out, &mut done);
        }
        let mut seq = 0u64;
        g.bench_function(BenchmarkId::from_parameter(npreds), |b| {
            b.iter(|| {
                seq += 1;
                for node in 1..8u16 {
                    rec.observe(NodeId(0), NodeId(node), RECEIVED, seq);
                    eng.on_ack_advance(
                        NodeId(0),
                        NodeId(node),
                        RECEIVED,
                        &rec,
                        &mut out,
                        &mut done,
                    );
                }
                out.clear();
                done.clear();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_recorder, bench_frontier_engine);
criterion_main!(benches);
