//! Design-choice ablations (DESIGN.md): the end-to-end effect, in
//! *virtual time*, of (a) ACK coalescing vs eager flushing, (b) the
//! aggressive asynchronous data plane vs a Paxos-style blocking commit
//! per message, and (c) dependency-filtered predicate re-evaluation.
//!
//! These report simulated latency through Criterion's wall-clock of a
//! fixed-size simulation run, with the virtual-time results printed once
//! at startup for the record.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stabilizer_core::sim_driver::build_cluster;
use stabilizer_core::{ClusterConfig, NodeId};
use stabilizer_netsim::NetTopology;

fn cfg(ack_flush_micros: u64) -> ClusterConfig {
    ClusterConfig::parse(&format!(
        "az NC n1 n2\naz NV n3 n4 n5 n6\naz OR n7\naz OH n8\n\
         predicate AllWNodes MIN($ALLWNODES-$MYWNODE)\n\
         option ack_flush_micros {ack_flush_micros}\n"
    ))
    .unwrap()
}

/// Virtual time for `count` messages to reach full WAN stability.
fn stabilization_time(ack_flush_micros: u64, count: u64) -> f64 {
    let mut sim = build_cluster(&cfg(ack_flush_micros), NetTopology::ec2_fig2(), 1).unwrap();
    for _ in 0..count {
        sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 8192])))
            .unwrap();
    }
    // With coalescing enabled the flush timer re-arms forever; run until
    // the frontier covers everything instead of until idle.
    let deadline = stabilizer_netsim::SimTime::ZERO + stabilizer_netsim::SimDuration::from_secs(60);
    loop {
        sim.run_for(stabilizer_netsim::SimDuration::from_millis(10));
        let (frontier, _) = sim
            .actor(0)
            .inner()
            .stability_frontier(NodeId(0), "AllWNodes")
            .unwrap();
        if frontier >= count || sim.now() >= deadline {
            break;
        }
    }
    sim.actor(0)
        .frontier_log
        .iter()
        .find(|(_, u)| u.key == "AllWNodes" && u.seq >= count)
        .map(|(t, _)| t.as_secs_f64())
        .unwrap_or(f64::NAN)
}

fn ablation_ack_coalescing(c: &mut Criterion) {
    // Print the virtual-time comparison once.
    for micros in [0u64, 500, 5000] {
        println!(
            "ablation ack_flush_micros={micros:>5}: 50 msgs fully stable at t={:.4}s (virtual)",
            stabilization_time(micros, 50)
        );
    }
    let mut g = c.benchmark_group("ack_coalescing_sim_cost");
    g.sample_size(10);
    for micros in [0u64, 500] {
        g.bench_function(BenchmarkId::from_parameter(micros), |b| {
            b.iter(|| stabilization_time(micros, 20))
        });
    }
    g.finish();
}

fn ablation_streaming_vs_blocking(c: &mut Criterion) {
    // Aggressive streaming (Stabilizer): publish all up front.
    let streaming = || {
        let mut sim = build_cluster(&cfg(0), NetTopology::ec2_fig2(), 2).unwrap();
        for _ in 0..20 {
            sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 8192])))
                .unwrap();
        }
        sim.run_until_idle();
        sim.now().as_secs_f64()
    };
    // Blocking (Paxos-style control flow): wait for full stability of
    // each message before sending the next.
    let blocking = || {
        let mut sim = build_cluster(&cfg(0), NetTopology::ec2_fig2(), 2).unwrap();
        for i in 1..=20u64 {
            sim.with_ctx(0, |n, ctx| n.publish_in(ctx, Bytes::from(vec![0u8; 8192])))
                .unwrap();
            loop {
                sim.run_for(stabilizer_netsim::SimDuration::from_millis(1));
                let (f, _) = sim
                    .actor(0)
                    .inner()
                    .stability_frontier(NodeId(0), "AllWNodes")
                    .unwrap();
                if f >= i {
                    break;
                }
            }
        }
        sim.now().as_secs_f64()
    };
    println!(
        "ablation data plane: streaming t={:.4}s vs per-message blocking t={:.4}s (virtual)",
        streaming(),
        blocking()
    );
    let mut g = c.benchmark_group("data_plane_style_sim_cost");
    g.sample_size(10);
    g.bench_function("streaming", |b| b.iter(streaming));
    g.bench_function("blocking", |b| b.iter(blocking));
    g.finish();
}

criterion_group!(
    benches,
    ablation_ack_coalescing,
    ablation_streaming_vs_blocking
);
criterion_main!(benches);
