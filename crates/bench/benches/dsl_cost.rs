//! §VI-A DSL-cost microbenchmark under Criterion: predicate compilation
//! (one-time) and evaluation (critical-path) cost across operator and
//! operand counts, plus the compiled-vs-interpreted ablation that
//! motivates the paper's JIT.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stabilizer_dsl::{
    interpret, parse, AckTypeId, AckTypeRegistry, AckView, EvalScratch, NodeId, Predicate, Topology,
};

struct Zero;
impl AckView for Zero {
    fn ack(&self, _n: NodeId, _t: AckTypeId) -> u64 {
        7
    }
}

fn topo(n: usize) -> Topology {
    let names: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    Topology::builder().az("A", &refs).build().unwrap()
}

fn pred_src(ops: usize, operands: usize) -> String {
    let list: Vec<String> = (1..=operands).map(|i| format!("${i}")).collect();
    let mut src = format!("KTH_MIN(2, {})", list.join(", "));
    for _ in 1..ops {
        src = format!("KTH_MIN(2, {}, {src})", list.join(", "));
    }
    src
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    for ops in [1usize, 3, 5] {
        for operands in [5usize, 20] {
            let topo = topo(operands);
            let acks = AckTypeRegistry::new();
            let src = pred_src(ops, operands);
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("{ops}ops_{operands}operands")),
                &src,
                |b, src| b.iter(|| Predicate::compile(src, &topo, &acks, NodeId(0)).unwrap()),
            );
        }
    }
    g.finish();
}

fn bench_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("eval_compiled");
    for ops in [1usize, 3, 5] {
        for operands in [5usize, 20] {
            let topo = topo(operands);
            let acks = AckTypeRegistry::new();
            let pred =
                Predicate::compile(&pred_src(ops, operands), &topo, &acks, NodeId(0)).unwrap();
            let mut scratch = EvalScratch::with_capacity(pred.program().max_stack());
            g.bench_function(
                BenchmarkId::from_parameter(format!("{ops}ops_{operands}operands")),
                |b| b.iter(|| pred.eval_with(&Zero, &mut scratch)),
            );
        }
    }
    g.finish();
}

fn bench_interpreted(c: &mut Criterion) {
    // The no-JIT baseline: resolve + evaluate from the AST every time.
    let mut g = c.benchmark_group("eval_interpreted");
    for ops in [1usize, 5] {
        let operands = 20;
        let topo = topo(operands);
        let acks = AckTypeRegistry::new();
        let ast = parse(&pred_src(ops, operands)).unwrap();
        g.bench_function(
            BenchmarkId::from_parameter(format!("{ops}ops_{operands}operands")),
            |b| b.iter(|| interpret(&ast, &topo, &acks, NodeId(0), &Zero).unwrap()),
        );
    }
    g.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    // The optimizer ablation: evaluation cost of Table III's OneRegion
    // (nested MAXes that flatten fully) with and without the optimizer.
    let topo = Topology::builder()
        .az("North_California", &["n1", "n2"])
        .az("North_Virginia", &["n3", "n4", "n5", "n6"])
        .az("Oregon", &["n7"])
        .az("Ohio", &["n8"])
        .build()
        .unwrap();
    let acks = AckTypeRegistry::new();
    let src = "MAX(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))";
    let opt = Predicate::compile(src, &topo, &acks, NodeId(0)).unwrap();
    let unopt = Predicate::compile_unoptimized(src, &topo, &acks, NodeId(0)).unwrap();
    let mut g = c.benchmark_group("optimizer_eval");
    let mut s1 = stabilizer_dsl::EvalScratch::with_capacity(opt.program().max_stack());
    let mut s2 = stabilizer_dsl::EvalScratch::with_capacity(unopt.program().max_stack());
    g.bench_function("optimized", |b| b.iter(|| opt.eval_with(&Zero, &mut s1)));
    g.bench_function("unoptimized", |b| {
        b.iter(|| unopt.eval_with(&Zero, &mut s2))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_compile,
    bench_eval,
    bench_interpreted,
    bench_optimizer
);
criterion_main!(benches);
