//! End-to-end tests of the `stabcheck` binary: exit codes and the JSON
//! output contract.

use std::process::Command;

fn stabcheck(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stabcheck"))
        .args(args)
        .output()
        .expect("spawn stabcheck");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8(out.stdout).unwrap(),
        String::from_utf8(out.stderr).unwrap(),
    )
}

#[test]
fn paper_examples_are_clean() {
    let (code, stdout, _) = stabcheck(&["--paper", "--deny-warnings"]);
    assert_eq!(code, 0, "paper corpus must lint clean:\n{stdout}");
    assert!(stdout.contains("clean"));
}

#[test]
fn error_findings_exit_one() {
    let (code, stdout, _) = stabcheck(&["-p", "KTH_MAX(9, $ALLWNODES)"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("rank-out-of-range"), "{stdout}");
}

#[test]
fn warnings_gate_only_with_deny_warnings() {
    let vacuous = "MAX($ALLWNODES)";
    let (code, stdout, _) = stabcheck(&["-p", vacuous]);
    assert_eq!(code, 0, "warnings pass by default:\n{stdout}");
    assert!(stdout.contains("vacuous-predicate"));
    let (code, _, _) = stabcheck(&["-p", vacuous, "--deny-warnings"]);
    assert_eq!(code, 1);
}

#[test]
fn usage_errors_exit_two() {
    let (code, _, stderr) = stabcheck(&["--frobnicate"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage:"));
    let (code, _, _) = stabcheck(&[]);
    assert_eq!(code, 2);
    let (code, _, stderr) = stabcheck(&["--config", "/nonexistent.cfg"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("nonexistent"));
}

#[test]
fn me_and_failure_budget_flags_work() {
    // OneRegion-style predicate is vacuous when linted inside a waited-on
    // region (n3), fine at the default n1.
    let one_region = "MAX(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))";
    let (code, _, _) = stabcheck(&["-p", one_region, "--deny-warnings"]);
    assert_eq!(code, 0);
    let (code, stdout, _) = stabcheck(&["-p", one_region, "--me", "n3", "--deny-warnings"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("vacuous-predicate"), "{stdout}");
    // MIN over all remotes stalls if any single node crashes.
    let fragile = "MIN($ALLWNODES-$MYWNODE)";
    let (code, _, _) = stabcheck(&["-p", fragile, "--deny-warnings"]);
    assert_eq!(code, 0);
    let (code, stdout, _) = stabcheck(&["-p", fragile, "--failure-budget", "1", "--deny-warnings"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("crash-unsatisfiable"), "{stdout}");
}

#[test]
fn audit_renders_tolerance_table_and_gates_with_deny_warnings() {
    let cfg = "../../configs/demo-3node.cfg";
    let (code, stdout, _) = stabcheck(&["--config", cfg, "--audit"]);
    assert_eq!(
        code, 0,
        "audit warnings pass without --deny-warnings:\n{stdout}"
    );
    assert!(stdout.contains("availability at e1:"), "{stdout}");
    assert!(stdout.contains("AllRemote: f* = 0"), "{stdout}");
    assert!(stdout.contains("OneRemote: f* = 1"), "{stdout}");
    assert!(stdout.contains("zero-fault-tolerance"), "{stdout}");
    // w1's only remotes both live in East: losing the East link strands it.
    assert!(stdout.contains("partition-vulnerable"), "{stdout}");
    let (code, _, _) = stabcheck(&["--config", cfg, "--audit", "--deny-warnings"]);
    assert_eq!(code, 1);
}

#[test]
fn audit_defaults_to_every_vantage_unless_me_is_given() {
    let cfg = "../../configs/demo-3node.cfg";
    let (_, stdout, _) = stabcheck(&["--config", cfg, "--audit"]);
    for vantage in ["e1", "e2", "w1"] {
        assert!(
            stdout.contains(&format!("availability at {vantage}:")),
            "{stdout}"
        );
    }
    let (_, stdout, _) = stabcheck(&["--config", cfg, "--audit", "--me", "e2"]);
    assert!(stdout.contains("availability at e2:"), "{stdout}");
    assert!(!stdout.contains("availability at e1:"), "{stdout}");
}

#[test]
fn audit_reports_cross_vantage_asymmetry() {
    // One East peer from inside East, two from outside: f* differs.
    let (code, stdout, _) = stabcheck(&[
        "--config",
        "../../configs/demo-3node.cfg",
        "--audit",
        "-p",
        "MAX($AZ_East-$MYWNODE)",
    ]);
    assert_eq!(code, 0);
    assert!(stdout.contains("tolerance-asymmetry"), "{stdout}");
    assert!(
        stdout.contains("crash tolerance f* differs across vantages"),
        "{stdout}"
    );
}

#[test]
fn audit_json_carries_audit_and_asymmetry_sections() {
    let (code, stdout, _) = stabcheck(&[
        "--config",
        "../../configs/demo-3node.cfg",
        "--audit",
        "--json",
    ]);
    assert_eq!(code, 0);
    let line = stdout.trim();
    assert!(line.starts_with("{\"clean\":false,\"nodes\":["), "{line}");
    for needle in [
        "\"audit\":[",
        "\"me\":\"e1\"",
        "\"predicates\":[",
        "\"name\":\"AllRemote\"",
        "\"tolerance\":0",
        "\"unbounded\":false",
        "\"blocking_sets\":[[\"e2\"],[\"w1\"]]",
        "\"worst_cut\":{\"azs\":[\"West\"],\"severed_links\":2}",
        "\"asymmetry\":[",
    ] {
        assert!(line.contains(needle), "missing {needle} in {line}");
    }
    // Without --audit the wrapper keeps its original two-key shape.
    let (_, stdout, _) = stabcheck(&["--config", "../../configs/demo-3node.cfg", "--json"]);
    assert!(!stdout.contains("\"audit\":"), "{stdout}");
}

#[test]
fn json_output_has_the_documented_shape() {
    let (code, stdout, _) = stabcheck(&["-p", "KTH_MAX(9, $ALLWNODES)", "--json"]);
    assert_eq!(code, 1);
    let line = stdout.trim();
    assert!(line.starts_with("{\"clean\":false,\"nodes\":["), "{line}");
    for needle in [
        "\"me\":\"n1\"",
        "\"reports\":[",
        "\"lint\":\"rank-out-of-range\"",
        "\"severity\":\"error\"",
        "\"line\":1",
        "\"column\":9",
    ] {
        assert!(line.contains(needle), "missing {needle} in {line}");
    }
    // Clean run: clean:true and no stray human prose on stdout.
    let (code, stdout, _) = stabcheck(&["--paper", "--json"]);
    assert_eq!(code, 0);
    assert!(stdout.trim().starts_with("{\"clean\":true,"));
    assert!(!stdout.contains("checking at"));
}
