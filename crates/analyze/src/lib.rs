//! # stabcheck — static analysis for stability predicates
//!
//! The Stabilizer DSL (see `stabilizer-dsl`) is small enough that most of
//! a predicate's behavior is statically decidable once the deployment
//! topology is known. This crate implements a lint engine over the
//! resolved predicate plus topology:
//!
//! * **Diagnostics** ([`Diagnostic`], [`Report`]): span-carrying findings
//!   with severities, rendered caret-style for humans
//!   ([`Report::render_human`]) or as JSON for machines
//!   ([`Report::render_json`]).
//! * **Lint catalog** ([`Lint`]): nineteen checks ranging from mechanical
//!   (unknown names, empty sets, `KTH_*` ranks out of range) through
//!   semantic (vacuous predicates, crash-satisfiability under a failure
//!   budget) to cross-predicate (dominance/equivalence between
//!   co-installed predicates, proved on a small implication lattice),
//!   membership-aware (a predicate waiting on a configured member that
//!   has not joined the cluster yet), and availability-audit findings
//!   (zero crash tolerance, partition vulnerability, cross-vantage
//!   tolerance asymmetry).
//! * **Availability prover** ([`avail`]): exact crash tolerance `f*`,
//!   all minimal blocking sets via structural recursion over the
//!   monotone threshold form of the predicate, and placement-aware
//!   partition-cut analysis.
//! * **Entry point** ([`Analyzer`]): configured with a [`Topology`],
//!   ACK-type registry, executing node, and optionally an ACK-emissions
//!   model and failure budget.
//!
//! The `stabcheck` binary (in `stabilizer-bench`) fronts this crate on
//! the command line; `stabilizer-core` runs it at predicate-install time
//! when the cluster config sets `option analysis warn|deny`.
//!
//! ## Example
//!
//! ```
//! use stabilizer_analyze::{Analyzer, Severity};
//! use stabilizer_dsl::{AckTypeRegistry, NodeId, Topology};
//!
//! let topo = Topology::builder()
//!     .az("East", &["e1", "e2"])
//!     .az("West", &["w1"])
//!     .build()
//!     .unwrap();
//! let acks = AckTypeRegistry::new();
//! let analyzer = Analyzer::new(&topo, &acks, NodeId(0));
//!
//! // KTH_MAX rank 7 over a 2-node set: statically out of range.
//! let report = analyzer.analyze("MyPred", "KTH_MAX(7, $ALLWNODES-$MYWNODE)");
//! assert_eq!(report.count(Severity::Error), 1);
//! assert!(report.render_human().contains("rank-out-of-range"));
//! ```

#![warn(missing_docs)]

pub mod avail;
pub mod diag;
pub mod dominance;
pub mod emissions;
pub mod lints;
pub mod paper;
pub mod probe;

pub use avail::{
    asymmetry_diagnostic, availability, brute_force_availability, crash_witness, render_sets,
    single_az_cut, stranding_cuts, worst_cut, Availability, PartitionCut,
};
pub use diag::{json_string, Diagnostic, Lint, Report, Severity};
pub use dominance::{compare, expr_le, Dominance};
pub use emissions::AckEmissions;
pub use lints::Analyzer;
pub use probe::{blocked_with_down, crash_unsatisfiable, is_vacuous, unjoined_blocked, PROBE_HIGH};
