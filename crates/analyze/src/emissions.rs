//! Which nodes emit which ACK types.
//!
//! The control plane treats custom ACK types (`.verified`, ...) as
//! uninterpreted counters bumped by the application; nothing forces every
//! node to ever bump one. A predicate waiting on `.verified` from a node
//! whose application never calls `ack("verified")` stalls forever. The
//! deployment config can declare emitters per type (`acktype verified n1
//! n2`); this module models that declaration for the
//! [`unemitted-ack-type`](crate::Lint::UnemittedAckType) lint.

use stabilizer_dsl::{AckTypeId, NodeId};
use std::collections::BTreeMap;

/// Declared emitters per ACK type. Types with no declaration are assumed
/// to be emitted by every node (the built-ins `received`/`persisted`/
/// `delivered` are maintained by the Stabilizer runtime itself on all
/// nodes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AckEmissions {
    restricted: BTreeMap<AckTypeId, Vec<NodeId>>,
}

impl AckEmissions {
    /// An emissions model with no restrictions: every node emits every
    /// type.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare that only `emitters` ever bump ACK type `ty`.
    pub fn restrict(&mut self, ty: AckTypeId, emitters: &[NodeId]) {
        let mut v = emitters.to_vec();
        v.sort_unstable();
        v.dedup();
        self.restricted.insert(ty, v);
    }

    /// Whether `node` emits ACK type `ty` under the declared model.
    pub fn emits(&self, node: NodeId, ty: AckTypeId) -> bool {
        match self.restricted.get(&ty) {
            None => true,
            Some(nodes) => nodes.contains(&node),
        }
    }

    /// The declared emitter list for `ty`, or `None` if unrestricted.
    pub fn emitters(&self, ty: AckTypeId) -> Option<&[NodeId]> {
        self.restricted.get(&ty).map(Vec::as_slice)
    }

    /// True if no type is restricted (the lint can never fire).
    pub fn is_unrestricted(&self) -> bool {
        self.restricted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrestricted_types_are_emitted_everywhere() {
        let em = AckEmissions::new();
        assert!(em.emits(NodeId(3), AckTypeId(7)));
        assert!(em.is_unrestricted());
    }

    #[test]
    fn restriction_limits_emitters() {
        let mut em = AckEmissions::new();
        em.restrict(AckTypeId(3), &[NodeId(1), NodeId(2), NodeId(1)]);
        assert!(em.emits(NodeId(1), AckTypeId(3)));
        assert!(!em.emits(NodeId(0), AckTypeId(3)));
        // Other types stay unrestricted.
        assert!(em.emits(NodeId(0), AckTypeId(0)));
        assert_eq!(em.emitters(AckTypeId(3)), Some(&[NodeId(1), NodeId(2)][..]));
    }
}
