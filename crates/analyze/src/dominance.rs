//! Predicate dominance: a sound (incomplete) prover for "predicate A's
//! frontier is always ≤ predicate B's frontier".
//!
//! A predicate is *satisfied* at sequence number `s` when its value is
//! `≥ s`, so `val(A) ≤ val(B)` for every ACK table means satisfying A
//! implies satisfying B — B is redundant alongside A (its frontier is
//! simply ≥ A's at all times). The analyzer reports one direction as
//! [`dominated-predicate`](crate::Lint::DominatedPredicate) (info) and
//! both directions as
//! [`equivalent-predicates`](crate::Lint::EquivalentPredicates) (warning).
//!
//! The prover works on *resolved, optimized* expressions, normalizing
//! every reduction to "k-th largest" form (`KTH_MIN(k, n ops)` selects
//! the same value as `KTH_MAX(n-k+1, ops)`), and applies three sound
//! rules plus base cases:
//!
//! * **base**: `Cell(c) ≤ Cell(c)`, `Const(a) ≤ Const(b)` iff `a ≤ b`,
//!   `Const(0) ≤ anything` (ACK counters are unsigned).
//! * **S** (same operands): if two reductions range over the same operand
//!   multiset, `kth_largest(k1, ops) ≤ kth_largest(k2, ops)` iff
//!   `k1 ≥ k2`.
//! * **L** (left): `kth_largest(k, ops) ≤ y` if at least `n-k+1`
//!   operands are provably `≤ y` (the selected value is one of *every*
//!   subset of that size's members... specifically at most `k-1` operands
//!   exceed the selected value, so if `n-k+1` operands are `≤ y` one of
//!   them is `≥` the selected value).
//! * **R** (right): `x ≤ kth_largest(k, ops)` if at least `k` operands
//!   are provably `≥ x` (then the k-th largest is `≥ x`).
//!
//! Incompleteness is fine: a missed implication just means no info-level
//! diagnostic; a proved one is always true.

use stabilizer_dsl::resolve::{Operand, ReduceKind, ResolvedExpr};

/// Normalized "k-th largest" rank of a reduction (1-based).
fn k_largest(e: &ResolvedExpr) -> usize {
    match e.kind {
        ReduceKind::Largest => e.k as usize,
        ReduceKind::Smallest => e.operands.len() - e.k as usize + 1,
    }
}

/// Multiset equality of operand lists (order-insensitive, O(n²) — operand
/// lists are tiny).
fn same_operands(a: &[Operand], b: &[Operand]) -> bool {
    a.len() == b.len()
        && a.iter().all(|x| {
            let in_a = a.iter().filter(|y| *y == x).count();
            let in_b = b.iter().filter(|y| *y == x).count();
            in_a == in_b
        })
}

/// Sound proof attempt of `val(x) ≤ val(y)` for all ACK tables.
fn op_le(x: &Operand, y: &Operand) -> bool {
    match (x, y) {
        (Operand::Const(a), Operand::Const(b)) => a <= b,
        (Operand::Const(0), _) => true,
        (Operand::Cell(n1, t1), Operand::Cell(n2, t2)) => n1 == n2 && t1 == t2,
        _ => {
            if let (Operand::Nested(a), Operand::Nested(b)) = (x, y) {
                // S rule.
                if same_operands(&a.operands, &b.operands) && k_largest(a) >= k_largest(b) {
                    return true;
                }
            }
            // L rule: enough of x's operands are ≤ y.
            if let Operand::Nested(a) = x {
                let need = a.operands.len() - k_largest(a) + 1;
                if a.operands.iter().filter(|o| op_le(o, y)).count() >= need {
                    return true;
                }
            }
            // R rule: enough of y's operands are ≥ x.
            if let Operand::Nested(b) = y {
                let k = k_largest(b);
                if b.operands.iter().filter(|o| op_le(x, o)).count() >= k {
                    return true;
                }
            }
            false
        }
    }
}

/// Try to prove `val(a) ≤ val(b)` for every ACK table. Sound but
/// incomplete: `false` means "no proof found", not "not dominated".
pub fn expr_le(a: &ResolvedExpr, b: &ResolvedExpr) -> bool {
    op_le(&Operand::Nested(a.clone()), &Operand::Nested(b.clone()))
}

/// The provable order between two predicates' frontiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominance {
    /// `val(a) ≤ val(b)` proved, `≥` not proved: a dominates b (a is the
    /// stricter predicate; b is implied).
    LeftImpliesRight,
    /// `val(b) ≤ val(a)` proved, `≤` not proved.
    RightImpliesLeft,
    /// Both directions proved: identical frontiers.
    Equivalent,
    /// No proof in either direction.
    Unrelated,
}

/// Compare two resolved predicates for provable frontier dominance.
pub fn compare(a: &ResolvedExpr, b: &ResolvedExpr) -> Dominance {
    match (expr_le(a, b), expr_le(b, a)) {
        (true, true) => Dominance::Equivalent,
        (true, false) => Dominance::LeftImpliesRight,
        (false, true) => Dominance::RightImpliesLeft,
        (false, false) => Dominance::Unrelated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabilizer_dsl::{optimize, parse, resolve, AckTypeRegistry, NodeId, Topology};

    fn topo() -> Topology {
        Topology::builder()
            .az("A", &["a1", "a2"])
            .az("B", &["b1", "b2"])
            .az("C", &["c1"])
            .build()
            .unwrap()
    }

    fn res(src: &str) -> ResolvedExpr {
        let acks = AckTypeRegistry::new();
        optimize(&resolve(&parse(src).unwrap(), &topo(), &acks, NodeId(0)).unwrap()).expr
    }

    #[test]
    fn min_le_kth_le_max_over_same_set() {
        let min = res("MIN($ALLWNODES-$MYWNODE)");
        let kth = res("KTH_MAX(2, $ALLWNODES-$MYWNODE)");
        let max = res("MAX($ALLWNODES-$MYWNODE)");
        assert!(expr_le(&min, &kth));
        assert!(expr_le(&kth, &max));
        assert!(expr_le(&min, &max));
        assert!(!expr_le(&max, &min));
        assert_eq!(compare(&min, &max), Dominance::LeftImpliesRight);
    }

    #[test]
    fn subset_max_le_superset_max() {
        let small = res("MAX($AZ_B)");
        let big = res("MAX($ALLWNODES-$MYWNODE)");
        assert_eq!(compare(&small, &big), Dominance::LeftImpliesRight);
    }

    #[test]
    fn superset_min_le_subset_min() {
        let big = res("MIN($ALLWNODES)");
        let small = res("MIN($AZ_A)");
        assert_eq!(compare(&big, &small), Dominance::LeftImpliesRight);
    }

    #[test]
    fn equivalent_spellings_are_detected() {
        // MIN over the whole deployment, written two ways.
        let a = res("MIN($ALLWNODES)");
        let b = res("KTH_MAX(5, $1, $2, $3, $4, $5)");
        assert_eq!(compare(&a, &b), Dominance::Equivalent);
    }

    #[test]
    fn nested_structure_proves_through() {
        // min(max(A), max(B), max(C)) <= max over everything.
        let a = res("MIN(MAX($AZ_A), MAX($AZ_B), MAX($AZ_C))");
        let b = res("MAX($ALLWNODES)");
        assert!(expr_le(&a, &b));
        assert!(!expr_le(&b, &a));
    }

    #[test]
    fn unrelated_sets_stay_unrelated() {
        let a = res("MAX($AZ_A)");
        let b = res("MAX($AZ_B)");
        assert_eq!(compare(&a, &b), Dominance::Unrelated);
    }

    #[test]
    fn constants_compare_numerically() {
        let a = res("MAX(0)");
        let b = res("MAX($ALLWNODES)");
        assert!(expr_le(&a, &b));
    }

    #[test]
    fn soundness_spot_check_by_evaluation() {
        // Every proved pair must hold on a batch of concrete tables.
        use stabilizer_dsl::{AckTypeId, AckView};
        struct T(Vec<u64>);
        impl AckView for T {
            fn ack(&self, n: NodeId, _t: AckTypeId) -> u64 {
                self.0[n.0 as usize]
            }
        }
        let preds = [
            "MIN($ALLWNODES-$MYWNODE)",
            "KTH_MAX(2, $ALLWNODES-$MYWNODE)",
            "MAX($ALLWNODES-$MYWNODE)",
            "MIN(MAX($AZ_A), MAX($AZ_B), MAX($AZ_C))",
            "MAX($AZ_B)",
            "MIN($AZ_A)",
            "MAX($ALLWNODES)",
        ];
        let tables = [
            vec![0, 0, 0, 0, 0],
            vec![5, 4, 3, 2, 1],
            vec![1, 2, 3, 4, 5],
            vec![9, 0, 9, 0, 9],
            vec![7, 7, 7, 7, 7],
        ];
        for pa in &preds {
            for pb in &preds {
                if expr_le(&res(pa), &res(pb)) {
                    for t in &tables {
                        let va = stabilizer_dsl::interp::eval_resolved(&res(pa), &T(t.clone()));
                        let vb = stabilizer_dsl::interp::eval_resolved(&res(pb), &T(t.clone()));
                        assert!(va <= vb, "{pa} <= {pb} proved but {va} > {vb} on {t:?}");
                    }
                }
            }
        }
    }
}
