//! The paper's example deployment and predicates, as an analyzable corpus.
//!
//! `stabcheck --paper` lints exactly this set; the CI `static-analysis`
//! job requires it to be clean (no errors, no warnings — info-level
//! dominance notes among the Table III ladder are expected and allowed).

use stabilizer_dsl::Topology;

/// The Fig. 2 EC2 deployment: 8 writer nodes across 4 regions.
pub fn fig2_topology() -> Topology {
    Topology::builder()
        .az("North_California", &["n1", "n2"])
        .az("North_Virginia", &["n3", "n4", "n5", "n6"])
        .az("Oregon", &["n7"])
        .az("Ohio", &["n8"])
        .build()
        .expect("static fig2 topology is valid")
}

/// The example predicates used throughout the paper (Table III's
/// region/node ladders plus the §III-C compositional examples), as
/// `(name, source)` pairs against [`fig2_topology`].
pub fn examples() -> Vec<(String, String)> {
    [
        (
            "OneRegion",
            "MAX(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
        ),
        (
            "MajorityRegions",
            "KTH_MAX(2, MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
        ),
        (
            "AllRegions",
            "MIN(MAX($AZ_North_Virginia), MAX($AZ_Oregon), MAX($AZ_Ohio))",
        ),
        ("OneWNode", "MAX($ALLWNODES-$MYWNODE)"),
        (
            "MajorityWNodes",
            "KTH_MAX(SIZEOF($ALLWNODES)/2+1, $ALLWNODES-$MYWNODE)",
        ),
        ("AllWNodes", "MIN($ALLWNODES-$MYWNODE)"),
        ("QuorumWrite", "KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)"),
        (
            "AZCase",
            "MIN(MIN($MYAZWNODES-$MYWNODE), MAX($ALLWNODES-$MYAZWNODES))",
        ),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_string(), s.to_string()))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use crate::lints::Analyzer;
    use stabilizer_dsl::{AckTypeRegistry, NodeId};

    #[test]
    fn all_paper_examples_lint_clean_at_every_node() {
        let topo = fig2_topology();
        let acks = AckTypeRegistry::new();
        for me in topo.all_nodes() {
            // Two examples are only installable at some nodes: OneRegion
            // waits on NV/Oregon/Ohio, so anywhere but the
            // North_California primary it is satisfied by the origin's
            // own AZ (vacuous); AZCase reads $MYAZWNODES-$MYWNODE, empty
            // at the singleton AZs. The analyzer flagging those at the
            // wrong node is correct behavior, exercised elsewhere.
            let at_primary = me == NodeId(0) || me == NodeId(1);
            let has_az_peer = topo.az_members(topo.az_of(me)).len() > 1;
            let analyzer = Analyzer::new(&topo, &acks, me);
            for (name, src) in examples() {
                if name == "OneRegion" && !at_primary {
                    continue;
                }
                if name == "AZCase" && !has_az_peer {
                    continue;
                }
                let report = analyzer.analyze(&name, &src);
                assert!(
                    report.is_clean(),
                    "{name} at {} not clean:\n{}",
                    topo.node_name(me),
                    report.render_human()
                );
            }
        }
    }

    #[test]
    fn paper_set_analysis_yields_only_info_dominance() {
        let topo = fig2_topology();
        let acks = AckTypeRegistry::new();
        let analyzer = Analyzer::new(&topo, &acks, NodeId(0));
        let reports = analyzer.analyze_set(&examples());
        let mut info = 0;
        for r in &reports {
            assert!(r.is_clean(), "{} not clean:\n{}", r.name, r.render_human());
            info += r.count(Severity::Info);
        }
        // The Table III ladder is ordered by strictness, so dominance
        // edges must exist (AllWNodes ⇒ MajorityWNodes ⇒ OneWNode, ...).
        assert!(info >= 3, "expected dominance info notes, got {info}");
    }
}
