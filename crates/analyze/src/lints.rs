//! The per-predicate lint pass and the cross-predicate set analysis.
//!
//! The walker operates on the span-carrying AST ([`parse_spanned`]) so
//! every finding lands on the exact offending source bytes, and it is
//! deliberately *lenient*: where the resolver hard-errors and stops, the
//! walker records a diagnostic and keeps going, so one `stabcheck` run
//! reports everything wrong with a predicate at once.

use crate::avail;
use crate::diag::{Diagnostic, Lint, Report, Severity};
use crate::dominance::{compare, Dominance};
use crate::emissions::AckEmissions;
use crate::probe;
use stabilizer_dsl::{
    expand_set, optimize, parse_spanned, resolve, AckTypeRegistry, DslError, NodeId, Op, Predicate,
    Span, SpannedAck, SpannedExpr, SpannedExprKind, SpannedSet, SpannedSetKind, Topology,
};
use stabilizer_place::PlacementMap;

/// A configured analyzer: topology, ACK registry, executing node, and the
/// optional deployment knowledge (emissions model, failure budget) that
/// unlocks the deeper lints.
pub struct Analyzer<'a> {
    topo: &'a Topology,
    acks: &'a AckTypeRegistry,
    me: NodeId,
    emissions: Option<&'a AckEmissions>,
    failure_budget: usize,
    unjoined: &'a [NodeId],
    replicas: Option<&'a [NodeId]>,
    audit: bool,
    placement: Option<&'a PlacementMap>,
}

impl<'a> Analyzer<'a> {
    /// An analyzer for predicates executing at `me`, with no emissions
    /// model and a zero failure budget (the corresponding lints stay
    /// silent).
    pub fn new(topo: &'a Topology, acks: &'a AckTypeRegistry, me: NodeId) -> Self {
        Analyzer {
            topo,
            acks,
            me,
            emissions: None,
            failure_budget: 0,
            unjoined: &[],
            replicas: None,
            audit: false,
            placement: None,
        }
    }

    /// Supply the ACK-emissions model, enabling
    /// [`unemitted-ack-type`](Lint::UnemittedAckType).
    pub fn with_emissions(mut self, emissions: &'a AckEmissions) -> Self {
        self.emissions = Some(emissions);
        self
    }

    /// Supply the deployment's failure budget `f`, enabling
    /// [`crash-unsatisfiable`](Lint::CrashUnsatisfiable).
    pub fn with_failure_budget(mut self, f: usize) -> Self {
        self.failure_budget = f;
        self
    }

    /// Supply the current membership gap — configured members that have
    /// not joined the cluster yet — enabling
    /// [`unjoined-node`](Lint::UnjoinedNode).
    pub fn with_unjoined(mut self, unjoined: &'a [NodeId]) -> Self {
        self.unjoined = unjoined;
        self
    }

    /// Supply the replica set of the stream this predicate stabilizes
    /// (partial replication), enabling
    /// [`non-replica-operand`](Lint::NonReplicaOperand): explicitly
    /// naming a node outside the set is an error, since a non-replica
    /// never acks the stream. Macro sets (`$ALLWNODES`, `$AZ_*`, ...)
    /// are exempt — the runtime silently restricts them to the replicas.
    pub fn with_replicas(mut self, replicas: &'a [NodeId]) -> Self {
        self.replicas = Some(replicas);
        self
    }

    /// Enable the availability audit lints
    /// ([`zero-fault-tolerance`](Lint::ZeroFaultTolerance) and
    /// [`partition-vulnerable`](Lint::PartitionVulnerable)): the
    /// [availability prover](crate::avail) runs on every predicate that
    /// compiles, restricted to the replica set when one is supplied, so
    /// the verdict matches what the runtime installs. Off by default —
    /// audit findings are advisory deployment review, not install-time
    /// gating.
    pub fn with_availability_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// Supply the placement map so the audit's partition-cut costing
    /// counts only `linked` node pairs (full replication otherwise).
    pub fn with_placement(mut self, placement: &'a PlacementMap) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Analyze one predicate source, producing a [`Report`].
    pub fn analyze(&self, name: &str, source: &str) -> Report {
        let mut report = Report::new(name, source);
        let whole = Span::new(0, source.len());
        let expr = match parse_spanned(source) {
            Ok(expr) => expr,
            Err(e) => {
                let span = e.span().unwrap_or(whole);
                report
                    .diagnostics
                    .push(Diagnostic::new(Lint::SyntaxError, span, strip_stage(&e)));
                return report;
            }
        };
        self.walk_call(&expr, &mut report);
        if report.has_at_least(Severity::Error) {
            return report;
        }
        // No static errors: the predicate compiles; run the numeric
        // probes on the real compiled program.
        let compiled = match Predicate::compile(source, self.topo, self.acks, self.me) {
            Ok(p) => p,
            Err(e) => {
                // The walker should have caught everything the resolver
                // rejects; if not, surface it rather than hide it.
                report
                    .diagnostics
                    .push(Diagnostic::new(Lint::SyntaxError, whole, strip_stage(&e)));
                return report;
            }
        };
        if compiled.dependencies().is_empty() {
            report.diagnostics.push(
                Diagnostic::new(
                    Lint::ConstantFrontier,
                    whole,
                    "predicate reads no ACK cell; its frontier is a constant",
                )
                .with_note("a constant frontier never tracks publishes — every waitfor either returns immediately or stalls forever"),
            );
        } else if probe::is_vacuous(compiled.program(), self.me) {
            report.diagnostics.push(
                Diagnostic::new(
                    Lint::VacuousPredicate,
                    whole,
                    format!(
                        "predicate is satisfied by {}'s own acknowledgment alone",
                        self.topo.node_name(self.me)
                    ),
                )
                .with_note(
                    "it never waits for a remote node; write e.g. MAX($ALLWNODES-$MYWNODE) to require a remote ACK",
                ),
            );
        }
        if let Some(witness) =
            probe::crash_unsatisfiable(&compiled, self.topo, self.me, self.failure_budget)
        {
            let names: Vec<&str> = witness.iter().map(|n| self.topo.node_name(*n)).collect();
            report.diagnostics.push(
                Diagnostic::new(
                    Lint::CrashUnsatisfiable,
                    whole,
                    format!(
                        "with failure budget {}, crashing {{{}}} stalls this predicate forever",
                        self.failure_budget,
                        names.join(", ")
                    ),
                )
                .with_note(
                    "the frontier only advances past these crashes if failure detection excludes them (auto_exclude_suspects)",
                ),
            );
        }
        self.audit_availability(&compiled, whole, &mut report);
        // Only name the unjoined members the predicate actually reads —
        // an absent node a predicate never waits on is not its problem.
        let referenced: Vec<NodeId> = self
            .unjoined
            .iter()
            .copied()
            .filter(|u| compiled.dependencies().iter().any(|(n, _)| n == u))
            .collect();
        if probe::unjoined_blocked(compiled.program(), self.topo, self.me, &referenced) {
            let names: Vec<&str> = referenced.iter().map(|n| self.topo.node_name(*n)).collect();
            report.diagnostics.push(
                Diagnostic::new(
                    Lint::UnjoinedNode,
                    whole,
                    format!(
                        "predicate waits on unjoined member{} {{{}}}",
                        if names.len() == 1 { "" } else { "s" },
                        names.join(", ")
                    ),
                )
                .with_note(
                    "these nodes are configured but have not joined; the frontier stalls until they join and finish state-transfer catch-up",
                ),
            );
        }
        report
    }

    /// The availability-audit lints: run the prover on the predicate as
    /// the runtime would install it (restricted to the replica set under
    /// partial replication) and flag `f* = 0` or a single-AZ cut that
    /// strands the vantage. A predicate already blocked with zero
    /// crashes (tolerance `-1`) is covered by the constant/unemitted
    /// lints and stays silent here, as does `partition-vulnerable` on a
    /// zero-tolerance predicate — the crash warning subsumes the cut.
    fn audit_availability(&self, compiled: &Predicate, whole: Span, report: &mut Report) {
        if !self.audit || compiled.dependencies().is_empty() {
            return;
        }
        let installed = match self.replicas {
            Some(reps) => match compiled.restricted_to(reps) {
                Ok(p) => p,
                Err(_) => return, // nothing installable to audit
            },
            None => compiled.clone(),
        };
        if installed.dependencies().is_empty() {
            return;
        }
        let avail = avail::availability(&installed, self.topo, self.me);
        match avail.min_blocking() {
            Some(1) => {
                let singles: Vec<&str> = avail
                    .blocking_sets
                    .iter()
                    .take_while(|s| s.len() == 1)
                    .map(|s| self.topo.node_name(s[0]))
                    .collect();
                let list = singles.join(", ");
                let message = if singles.len() == 1 {
                    format!("crash tolerance f* = 0: a single crash of {{{list}}} stalls this predicate forever")
                } else {
                    format!("crash tolerance f* = 0: a single crash of any of {{{list}}} stalls this predicate forever")
                };
                report.diagnostics.push(
                    Diagnostic::new(Lint::ZeroFaultTolerance, whole, message).with_note(
                        "stabcheck --audit lists every minimal blocking set; a quorum predicate (KTH_*) survives crashes a MIN cannot",
                    ),
                );
            }
            Some(n) if n >= 2 => {
                if let Some(cut) = avail::single_az_cut(&avail, self.topo, self.placement) {
                    report.diagnostics.push(
                        Diagnostic::new(
                            Lint::PartitionVulnerable,
                            whole,
                            format!(
                                "a single-AZ partition (isolating {}, severing {} link{}) stalls this predicate despite f* = {}",
                                cut.far_azs.join(", "),
                                cut.severed_links,
                                if cut.severed_links == 1 { "" } else { "s" },
                                avail.tolerance,
                            ),
                        )
                        .with_note(
                            "nodes unreachable from the vantage behave as crashed: the cut strands every blocking-set complement",
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    /// Analyze a set of co-installed predicates: each one individually,
    /// then pairwise dominance over the clean ones.
    pub fn analyze_set(&self, predicates: &[(String, String)]) -> Vec<Report> {
        let mut reports: Vec<Report> = predicates
            .iter()
            .map(|(name, src)| self.analyze(name, src))
            .collect();
        // Resolve the predicates that are at least error-free.
        let resolved: Vec<Option<stabilizer_dsl::resolve::ResolvedExpr>> = predicates
            .iter()
            .zip(&reports)
            .map(|((_, src), rep)| {
                if rep.has_at_least(Severity::Error) {
                    None
                } else {
                    stabilizer_dsl::parse(src)
                        .ok()
                        .and_then(|ast| resolve(&ast, self.topo, self.acks, self.me).ok())
                        .map(|r| optimize(&r).expr)
                }
            })
            .collect();
        // One diagnostic per dominated predicate, naming every dominator
        // (the Table III ladder would otherwise drown in transitive
        // implication edges).
        let mut dominators: Vec<Vec<&str>> = vec![Vec::new(); predicates.len()];
        for i in 0..predicates.len() {
            for j in (i + 1)..predicates.len() {
                let (Some(a), Some(b)) = (&resolved[i], &resolved[j]) else {
                    continue;
                };
                match compare(a, b) {
                    Dominance::Equivalent => {
                        let span_j = Span::new(0, predicates[j].1.len());
                        reports[j].diagnostics.push(
                            Diagnostic::new(
                                Lint::EquivalentPredicates,
                                span_j,
                                format!(
                                    "provably computes the same frontier as '{}'",
                                    predicates[i].0
                                ),
                            )
                            .with_note(
                                "co-installing both doubles evaluation work for no extra guarantee",
                            ),
                        );
                    }
                    Dominance::LeftImpliesRight => dominators[j].push(&predicates[i].0),
                    Dominance::RightImpliesLeft => dominators[i].push(&predicates[j].0),
                    Dominance::Unrelated => {}
                }
            }
        }
        for (i, doms) in dominators.iter().enumerate() {
            if doms.is_empty() {
                continue;
            }
            let span = Span::new(0, predicates[i].1.len());
            let list = doms
                .iter()
                .map(|d| format!("'{d}'"))
                .collect::<Vec<_>>()
                .join(", ");
            reports[i].diagnostics.push(
                Diagnostic::new(
                    Lint::DominatedPredicate,
                    span,
                    format!("'{}' is implied by co-installed {list}", predicates[i].0),
                )
                .with_note(
                    "whenever a stronger predicate is satisfied this one already is; the frontier engine can reuse its result",
                ),
            );
        }
        reports
    }

    /// Walk a reduction call, checking rank, operands, duplicates.
    fn walk_call(&self, expr: &SpannedExpr, report: &mut Report) {
        let SpannedExprKind::Call(op, op_span, args) = &expr.kind else {
            // parse_spanned guarantees a top-level call; nested positions
            // only reach here for calls.
            return;
        };
        let (rank, data_args): (Option<(u64, Span)>, &[SpannedExpr]) = match op {
            Op::Max | Op::Min => (Some((1, *op_span)), &args[..]),
            Op::KthMax | Op::KthMin => {
                let Some((kexpr, rest)) = args.split_first() else {
                    report.diagnostics.push(Diagnostic::new(
                        Lint::BadRank,
                        *op_span,
                        format!("{op} requires a rank argument"),
                    ));
                    return;
                };
                match self.const_eval(kexpr) {
                    Ok(0) => {
                        report.diagnostics.push(Diagnostic::new(
                            Lint::BadRank,
                            kexpr.span,
                            format!("{op} rank must be at least 1"),
                        ));
                        (None, rest)
                    }
                    Ok(k) => (Some((k, kexpr.span)), rest),
                    Err(d) => {
                        report.diagnostics.push(d);
                        (None, rest)
                    }
                }
            }
        };
        // Count operands and collect cells for duplicate detection. A
        // count is only "known" if every set expanded successfully.
        let mut count_known = true;
        let mut count = 0usize;
        let mut cells: Vec<(NodeId, Option<String>)> = Vec::new();
        for arg in data_args {
            match &arg.kind {
                SpannedExprKind::Call(..) => {
                    self.walk_call(arg, report);
                    count += 1;
                }
                SpannedExprKind::Values(set, suffix) => {
                    match self.walk_values(set, suffix.as_ref(), report) {
                        Some(nodes) => {
                            count += nodes.len();
                            let suffix_name = suffix.as_ref().map(|s| s.name.0.clone());
                            cells.extend(nodes.into_iter().map(|n| (n, suffix_name.clone())));
                        }
                        None => count_known = false,
                    }
                }
                SpannedExprKind::Int(_)
                | SpannedExprKind::Sizeof(_)
                | SpannedExprKind::Arith(..) => {
                    // Constant data operand; check its sets resolve.
                    self.walk_scalar_sets(arg, report);
                    count += 1;
                }
            }
        }
        if count_known && count == 0 {
            report.diagnostics.push(
                Diagnostic::new(
                    Lint::EmptySet,
                    expr.span,
                    format!("{op} reduces over an empty operand list"),
                )
                .with_note(
                    "set expansion produced no nodes; the reduction has nothing to select from",
                ),
            );
        }
        if let (Some((k, k_span)), true) = (rank, count_known) {
            if count > 0 && k > count as u64 {
                report.diagnostics.push(
                    Diagnostic::new(
                        Lint::RankOutOfRange,
                        k_span,
                        format!("{op} rank {k} out of range 1..={count}"),
                    )
                    .with_note(
                        "the runtime clamps ranks only when crash exclusion shrinks a set (§III-E); a rank that is out of range at compile time is a bug in the predicate",
                    ),
                );
            }
        }
        // Duplicate cells within this one reduction.
        let mut dups: Vec<String> = Vec::new();
        for (idx, cell) in cells.iter().enumerate() {
            if cells[..idx].contains(cell) {
                let label = format!(
                    "{}.{}",
                    self.topo.node_name(cell.0),
                    cell.1.as_deref().unwrap_or("received")
                );
                if !dups.contains(&label) {
                    dups.push(label);
                }
            }
        }
        if !dups.is_empty() {
            report.diagnostics.push(
                Diagnostic::new(
                    Lint::DuplicateOperand,
                    *op_span,
                    format!("duplicate operands in {op}: {}", dups.join(", ")),
                )
                .with_note("a node counted twice skews rank semantics: KTH_* treats each occurrence as an independent acknowledgment"),
            );
        }
    }

    /// Check a set-with-suffix operand; returns the expanded nodes when
    /// every name resolved (even if empty), `None` otherwise.
    fn walk_values(
        &self,
        set: &SpannedSet,
        suffix: Option<&SpannedAck>,
        report: &mut Report,
    ) -> Option<Vec<NodeId>> {
        let nodes = self.walk_set(set, report, true);
        let ty = match suffix {
            None => Some(stabilizer_dsl::RECEIVED),
            Some(ack) => {
                let ty = self.acks.lookup(&ack.name.0);
                if ty.is_none() {
                    let known: Vec<String> = (0..self.acks.len())
                        .filter_map(|i| self.acks.name(stabilizer_dsl::AckTypeId(i as u16)))
                        .collect();
                    report.diagnostics.push(
                        Diagnostic::new(
                            Lint::UnknownAckType,
                            ack.span,
                            format!("unknown ACK type .{}", ack.name.0),
                        )
                        .with_note(format!("registered ACK types: {}", known.join(", "))),
                    );
                }
                ty
            }
        };
        if let Some(nodes) = &nodes {
            if nodes.is_empty() {
                report.diagnostics.push(
                    Diagnostic::new(
                        Lint::EmptySet,
                        set.span,
                        "set expression expands to no nodes".to_string(),
                    )
                    .with_note(format!(
                        "evaluated at {}; the reduction silently loses these operands",
                        self.topo.node_name(self.me)
                    )),
                );
            } else if let (Some(em), Some(ty)) = (self.emissions, ty) {
                let silent: Vec<&str> = nodes
                    .iter()
                    .filter(|n| !em.emits(**n, ty))
                    .map(|n| self.topo.node_name(*n))
                    .collect();
                if !silent.is_empty() {
                    let ty_name = self.acks.name(ty).unwrap_or_default();
                    let anchor = suffix.map_or(set.span, |s| s.span);
                    report.diagnostics.push(
                        Diagnostic::new(
                            Lint::UnemittedAckType,
                            anchor,
                            format!(
                                "waiting on .{ty_name} from {{{}}}, which never emit{} it",
                                silent.join(", "),
                                if silent.len() == 1 { "s" } else { "" }
                            ),
                        )
                        .with_note(format!(
                            "the config's `acktype {ty_name}` directive restricts emitters; this predicate can never be satisfied"
                        )),
                    );
                }
            }
        }
        nodes
    }

    /// Check a set expression: unknown names, useless differences, and —
    /// when a replica set is configured — explicitly named non-replicas.
    /// `waited` is true in positive positions (nodes the reduction waits
    /// on); the right-hand side of a difference is removed, not waited
    /// on, so the replica check stays silent there. Returns the
    /// expansion if all names resolved.
    fn walk_set(&self, set: &SpannedSet, report: &mut Report, waited: bool) -> Option<Vec<NodeId>> {
        match &set.kind {
            SpannedSetKind::Diff(a, b) => {
                let left = self.walk_set(a, report, waited);
                let right = self.walk_set(b, report, false);
                let (left, right) = (left?, right?);
                if !right.is_empty() && !right.iter().any(|n| left.contains(n)) {
                    report.diagnostics.push(
                        Diagnostic::new(
                            Lint::UselessDifference,
                            b.span,
                            "set difference removes nothing".to_string(),
                        )
                        .with_note(format!(
                            "no node of the right-hand set is in the left-hand set when evaluated at {}",
                            self.topo.node_name(self.me)
                        )),
                    );
                }
                Some(left.into_iter().filter(|n| !right.contains(n)).collect())
            }
            _ => match expand_set(&set.strip(), self.topo, self.me) {
                Ok(nodes) => {
                    // Only explicit node references fire the replica
                    // check: macros restrict silently at install time.
                    let explicit = matches!(
                        set.kind,
                        SpannedSetKind::Node(_) | SpannedSetKind::NodeVar(_)
                    );
                    if let (Some(reps), true, true) = (self.replicas, explicit, waited) {
                        for n in nodes.iter().filter(|n| !reps.contains(n)) {
                            let members: Vec<&str> =
                                reps.iter().map(|r| self.topo.node_name(*r)).collect();
                            report.diagnostics.push(
                                Diagnostic::new(
                                    Lint::NonReplicaOperand,
                                    set.span,
                                    format!(
                                        "predicate waits on {}, which is not a replica of this stream",
                                        self.topo.node_name(*n)
                                    ),
                                )
                                .with_note(format!(
                                    "the stream's replica set is {{{}}}; a non-replica never receives or acks the stream, so the frontier could never advance",
                                    members.join(", ")
                                )),
                            );
                        }
                    }
                    Some(nodes)
                }
                Err(e) => {
                    report.diagnostics.push(Diagnostic::new(
                        Lint::UnknownName,
                        set.span,
                        strip_stage(&e),
                    ));
                    None
                }
            },
        }
    }

    /// Walk the sets inside a scalar (rank/arith) expression so unknown
    /// names in e.g. `SIZEOF($AZ_Nope)` are still reported.
    fn walk_scalar_sets(&self, expr: &SpannedExpr, report: &mut Report) {
        match &expr.kind {
            SpannedExprKind::Sizeof(set) => {
                self.walk_set(set, report, false);
            }
            SpannedExprKind::Arith(_, l, r) => {
                self.walk_scalar_sets(l, report);
                self.walk_scalar_sets(r, report);
            }
            SpannedExprKind::Call(..) => self.walk_call(expr, report),
            SpannedExprKind::Int(_) | SpannedExprKind::Values(..) => {}
        }
    }

    /// Lenient compile-time constant evaluation of a rank expression,
    /// returning a ready-to-push diagnostic on failure.
    fn const_eval(&self, expr: &SpannedExpr) -> Result<u64, Diagnostic> {
        match &expr.kind {
            SpannedExprKind::Int(n) => Ok(*n),
            SpannedExprKind::Sizeof(set) => {
                // Name errors are reported by the caller's set walk; here
                // just propagate "unknown" as a BadRank-free failure.
                expand_set(&set.strip(), self.topo, self.me)
                    .map(|nodes| nodes.len() as u64)
                    .map_err(|e| Diagnostic::new(Lint::UnknownName, set.span, strip_stage(&e)))
            }
            SpannedExprKind::Arith(op, l, r) => {
                let a = self.const_eval(l)?;
                let b = self.const_eval(r)?;
                use stabilizer_dsl::BinOp;
                let v = match op {
                    BinOp::Add => a.checked_add(b),
                    BinOp::Sub => a.checked_sub(b),
                    BinOp::Mul => a.checked_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(Diagnostic::new(
                                Lint::BadRank,
                                expr.span,
                                "division by zero in rank expression",
                            ));
                        }
                        Some(a / b)
                    }
                };
                v.ok_or_else(|| {
                    Diagnostic::new(
                        Lint::BadRank,
                        expr.span,
                        format!("constant arithmetic overflow: {a} {op} {b}"),
                    )
                })
            }
            SpannedExprKind::Call(op, ..) => Err(Diagnostic::new(
                Lint::BadRank,
                expr.span,
                format!(
                    "KTH rank must be a compile-time constant; {op}(...) is evaluated at run time"
                ),
            )),
            SpannedExprKind::Values(..) => Err(Diagnostic::new(
                Lint::BadRank,
                expr.span,
                "a node set cannot be used where a number is required",
            )),
        }
    }
}

/// Drop the "lexical error at byte N:"-style prefix duplication: the
/// diagnostic already renders position; keep only the message body for
/// DslErrors that carry one, and the whole Display otherwise.
fn strip_stage(e: &DslError) -> String {
    match e {
        DslError::Lex { msg, .. } | DslError::Parse { msg, .. } => msg.clone(),
        DslError::Resolve(m) | DslError::Type(m) | DslError::Invalid(m) | DslError::Topology(m) => {
            m.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::builder()
            .az("East", &["e1", "e2"])
            .az("West", &["w1", "w2"])
            .az("Solo", &["s1"])
            .build()
            .unwrap()
    }

    fn lint_ids(src: &str, me: u16) -> Vec<&'static str> {
        let acks = AckTypeRegistry::new();
        let t = topo();
        let a = Analyzer::new(&t, &acks, NodeId(me));
        a.analyze("p", src)
            .diagnostics
            .iter()
            .map(|d| d.lint.id())
            .collect()
    }

    #[test]
    fn clean_predicate_has_no_findings() {
        assert!(lint_ids("MIN($ALLWNODES-$MYWNODE)", 0).is_empty());
        assert!(lint_ids("KTH_MAX(2, $ALLWNODES-$MYWNODE)", 0).is_empty());
    }

    #[test]
    fn syntax_error_is_reported_with_span() {
        let acks = AckTypeRegistry::new();
        let t = topo();
        let a = Analyzer::new(&t, &acks, NodeId(0));
        let r = a.analyze("p", "MAX($1");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].lint, Lint::SyntaxError);
        assert_eq!(r.diagnostics[0].span, Span::point(6));
    }

    #[test]
    fn unknown_names_all_reported_in_one_pass() {
        // Leniency: both bad names surface, not just the first.
        let ids = lint_ids("MAX($WNODE_nope, $AZ_Mars)", 0);
        assert_eq!(ids, vec!["unknown-name", "unknown-name"]);
    }

    #[test]
    fn empty_subset_inside_nonempty_reduction_is_flagged() {
        // s1 is alone in its AZ: $MYAZWNODES-$MYWNODE = {} but the
        // reduction still has $1 — the resolver accepts this silently,
        // the analyzer does not.
        let ids = lint_ids("MAX($1, $MYAZWNODES-$MYWNODE)", 4);
        assert_eq!(ids, vec!["empty-set"]);
    }

    #[test]
    fn fully_empty_reduction_is_flagged() {
        let ids = lint_ids("MIN($MYAZWNODES-$MYWNODE)", 4);
        assert!(ids.contains(&"empty-set"));
    }

    #[test]
    fn static_rank_out_of_range_is_flagged() {
        let ids = lint_ids("KTH_MAX(9, $ALLWNODES)", 0);
        assert_eq!(ids, vec!["rank-out-of-range"]);
        assert!(lint_ids("KTH_MAX(5, $ALLWNODES)", 0).is_empty());
    }

    #[test]
    fn bad_ranks_are_flagged() {
        assert_eq!(lint_ids("KTH_MAX(0, $ALLWNODES)", 0), vec!["bad-rank"]);
        assert_eq!(
            lint_ids("KTH_MAX(MAX($1), $ALLWNODES)", 0),
            vec!["bad-rank"]
        );
        assert_eq!(lint_ids("KTH_MAX(1/0, $ALLWNODES)", 0), vec!["bad-rank"]);
    }

    #[test]
    fn duplicate_operands_are_flagged() {
        // (me = e2 throughout so MAX over node $1 isn't also vacuous.)
        assert_eq!(lint_ids("MAX($1, $1)", 1), vec!["duplicate-operand"]);
        // $ALLWNODES already contains $2.
        assert_eq!(
            lint_ids("MIN($ALLWNODES, $2)", 1),
            vec!["duplicate-operand"]
        );
        // Distinct suffixes are distinct cells — no duplicate.
        assert!(lint_ids("MAX($1.received, $1.persisted)", 1).is_empty());
    }

    #[test]
    fn useless_difference_is_flagged() {
        // At e1, $AZ_West does not intersect $MYAZWNODES. (MIN keeps the
        // predicate non-vacuous: it still waits on e2.)
        let ids = lint_ids("MIN($MYAZWNODES-$AZ_West)", 0);
        assert_eq!(ids, vec!["useless-difference"]);
    }

    #[test]
    fn vacuous_predicate_is_flagged() {
        assert_eq!(lint_ids("MAX($ALLWNODES)", 0), vec!["vacuous-predicate"]);
        assert_eq!(lint_ids("MAX($MYWNODE)", 0), vec!["vacuous-predicate"]);
        assert!(lint_ids("MAX($ALLWNODES-$MYWNODE)", 0).is_empty());
    }

    #[test]
    fn constant_frontier_is_flagged() {
        assert_eq!(lint_ids("MAX(7)", 0), vec!["constant-frontier"]);
    }

    #[test]
    fn unknown_ack_type_is_flagged() {
        assert_eq!(
            lint_ids("MIN($ALLWNODES.verified)", 0),
            vec!["unknown-ack-type"]
        );
    }

    #[test]
    fn unemitted_ack_type_needs_emissions_model() {
        let acks = AckTypeRegistry::new();
        let verified = acks.register("verified");
        let t = topo();
        // Without a model: silent.
        let a = Analyzer::new(&t, &acks, NodeId(0));
        assert!(a
            .analyze("p", "MIN(($ALLWNODES-$MYWNODE).verified)")
            .is_clean());
        // With a model where only e2 emits .verified: flagged.
        let mut em = AckEmissions::new();
        em.restrict(verified, &[NodeId(1)]);
        let a = Analyzer::new(&t, &acks, NodeId(0)).with_emissions(&em);
        let r = a.analyze("p", "MIN(($ALLWNODES-$MYWNODE).verified)");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].lint, Lint::UnemittedAckType);
        assert!(r.diagnostics[0].message.contains("w1"));
        // A predicate reading only e2 is fine.
        let r = a.analyze("p", "MAX($WNODE_e2.verified)");
        assert!(r.is_clean());
    }

    #[test]
    fn crash_unsatisfiable_needs_budget() {
        let acks = AckTypeRegistry::new();
        let t = topo();
        let a = Analyzer::new(&t, &acks, NodeId(0));
        assert!(a.analyze("p", "MIN($ALLWNODES-$MYWNODE)").is_clean());
        let a = Analyzer::new(&t, &acks, NodeId(0)).with_failure_budget(1);
        let r = a.analyze("p", "MIN($ALLWNODES-$MYWNODE)");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].lint, Lint::CrashUnsatisfiable);
        // MAX of remotes survives one crash.
        assert!(a.analyze("p", "MAX($ALLWNODES-$MYWNODE)").is_clean());
    }

    #[test]
    fn non_replica_operand_needs_a_replica_set() {
        let acks = AckTypeRegistry::new();
        let t = topo();
        // Without a replica set: silent.
        let a = Analyzer::new(&t, &acks, NodeId(0));
        assert!(a.analyze("p", "MAX($WNODE_w2)").is_clean());
        // Stream replicated on {e1, e2, w1}: naming w2 is an error.
        let reps = [NodeId(0), NodeId(1), NodeId(2)];
        let a = Analyzer::new(&t, &acks, NodeId(0)).with_replicas(&reps);
        let r = a.analyze("p", "MAX($WNODE_w2)");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].lint, Lint::NonReplicaOperand);
        assert!(r.diagnostics[0].message.contains("w2"));
        // Positional operands fire too ($4 is w2).
        let r = a.analyze("p", "MIN($2, $4)");
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.lint == Lint::NonReplicaOperand));
        // Macro sets restrict silently — no finding.
        assert!(a.analyze("p", "MIN($ALLWNODES-$MYWNODE)").is_clean());
        // Subtracting a non-replica is removal, not waiting: silent
        // (the difference is also not useless, w2 is in $ALLWNODES).
        assert!(a.analyze("p", "MIN($ALLWNODES-$WNODE_w2)").is_clean());
        // A replica named explicitly is fine.
        assert!(a.analyze("p", "MAX($WNODE_w1)").is_clean());
    }

    #[test]
    fn dominance_over_a_set_of_predicates() {
        let acks = AckTypeRegistry::new();
        let t = topo();
        let a = Analyzer::new(&t, &acks, NodeId(0));
        let preds = vec![
            ("All".to_string(), "MIN($ALLWNODES-$MYWNODE)".to_string()),
            ("One".to_string(), "MAX($ALLWNODES-$MYWNODE)".to_string()),
            (
                "AlsoOne".to_string(),
                "KTH_MAX(1, $ALLWNODES-$MYWNODE)".to_string(),
            ),
        ];
        let reports = a.analyze_set(&preds);
        // 'One' is implied by 'All' (info only — still clean).
        assert!(reports[1]
            .diagnostics
            .iter()
            .any(|d| d.lint == Lint::DominatedPredicate));
        assert!(reports[1].is_clean());
        // 'AlsoOne' is equivalent to 'One' (warning).
        assert!(reports[2]
            .diagnostics
            .iter()
            .any(|d| d.lint == Lint::EquivalentPredicates));
        assert!(!reports[2].is_clean());
    }

    #[test]
    fn rank_spans_point_at_the_rank_argument() {
        let acks = AckTypeRegistry::new();
        let t = topo();
        let a = Analyzer::new(&t, &acks, NodeId(0));
        let src = "KTH_MAX(9, $ALLWNODES)";
        let r = a.analyze("p", src);
        let d = &r.diagnostics[0];
        assert_eq!(&src[d.span.start..d.span.end], "9");
    }
}
