//! Numeric probing of compiled predicates.
//!
//! Some semantic properties are easiest to establish by *running* the
//! compiled program against synthetic ACK tables rather than reasoning
//! about the expression tree: vacuity (satisfied by the origin alone) and
//! crash-satisfiability (still able to advance once `f` nodes are dead).
//! Both exploit predicate monotonicity: every reduction is monotone in
//! each ACK cell, so probing with a single "high" value `H` against zeros
//! is conclusive — if the result is `H` (resp. `< H`) at the probe
//! point, it is for every sequence number.

use stabilizer_dsl::{AckTypeId, AckView, NodeId, Predicate, Program, Topology};

/// The "high watermark" used by probes; any value would do (monotonicity),
/// but a large one keeps it visually distinct from real sequence numbers
/// in debug output.
pub const PROBE_HIGH: u64 = 1 << 62;

/// An ACK table where a fixed node set has acknowledged everything
/// (`PROBE_HIGH` at every ACK type) and everyone else nothing.
struct SubsetView<'a> {
    up: &'a [NodeId],
}

impl AckView for SubsetView<'_> {
    fn ack(&self, node: NodeId, _ty: AckTypeId) -> u64 {
        if self.up.contains(&node) {
            PROBE_HIGH
        } else {
            0
        }
    }
}

/// True if the predicate is satisfied by the origin's own acknowledgment
/// alone: with `me` at `H` and every other node at 0 the program already
/// evaluates to `H`, so the predicate never waits for any remote node.
pub fn is_vacuous(program: &Program, me: NodeId) -> bool {
    program.eval(&SubsetView { up: &[me] }) == PROBE_HIGH
}

/// True if the predicate cannot advance while `unjoined` members are
/// still outside the cluster: with the unjoined set at 0 and every
/// joined node (including `me`) at `H`, the program evaluates `< H`.
///
/// Unlike [`crash_unsatisfiable`] this is not a hypothetical — the
/// nodes are *known* to be absent right now. The frontier stalls (a
/// well-defined state, hence a warning, not an error) until each
/// flagged member joins and completes §III-E state-transfer catch-up.
pub fn unjoined_blocked(
    program: &Program,
    topo: &Topology,
    me: NodeId,
    unjoined: &[NodeId],
) -> bool {
    if unjoined.is_empty() || unjoined.contains(&me) {
        return false;
    }
    let up: Vec<NodeId> = topo
        .all_nodes()
        .into_iter()
        .filter(|n| !unjoined.contains(n))
        .collect();
    program.eval(&SubsetView { up: &up }) < PROBE_HIGH
}

/// Evaluate `program` with the nodes in `down_mask` (a bitmask over node
/// ids) crashed and everyone else up; true if the predicate is blocked —
/// it needs an ACK from inside the crashed set. The workhorse probe of
/// the [availability prover](crate::avail).
pub fn blocked_with_down(program: &Program, topo: &Topology, down_mask: u64) -> bool {
    let up: Vec<NodeId> = topo
        .all_nodes()
        .into_iter()
        .filter(|n| down_mask & (1u64 << n.0) == 0)
        .collect();
    program.eval(&SubsetView { up: &up }) < PROBE_HIGH
}

/// If some set of `failure_budget` non-origin nodes can, by crashing,
/// permanently prevent the predicate from advancing, return the
/// smallest-index such set. `None` means every such crash set still lets
/// the frontier reach `H` (or the budget is 0).
///
/// The witness is derived from the [availability
/// prover](crate::avail)'s minimal blocking sets — each small-enough set
/// completed with the lowest free node ids, lexicographic minimum taken
/// — which reproduces, byte for byte, the witness the exhaustive
/// lexicographic subset DFS this replaced used to report, without its
/// `C(n, f)` blow-up on the 12–16-node topologies the scenario generator
/// draws. Note the runtime *can* recover by explicitly excluding crashed
/// nodes (§III-E rewrites the predicate), but only when failure
/// detection + `auto_exclude_suspects` are active; the lint flags
/// deployments that would stall without that.
pub fn crash_unsatisfiable(
    pred: &Predicate,
    topo: &Topology,
    me: NodeId,
    failure_budget: usize,
) -> Option<Vec<NodeId>> {
    if failure_budget == 0 {
        return None;
    }
    let avail = crate::avail::availability(pred, topo, me);
    crate::avail::crash_witness(&avail, topo, failure_budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabilizer_dsl::AckTypeRegistry;

    fn topo() -> Topology {
        Topology::builder()
            .az("East", &["e1", "e2"])
            .az("West", &["w1", "w2"])
            .build()
            .unwrap()
    }

    fn prog(src: &str, me: u16) -> Predicate {
        let acks = AckTypeRegistry::new();
        Predicate::compile(src, &topo(), &acks, NodeId(me)).unwrap()
    }

    #[test]
    fn max_including_self_is_vacuous() {
        assert!(is_vacuous(prog("MAX($ALLWNODES)", 0).program(), NodeId(0)));
        assert!(is_vacuous(
            prog("MAX($MYWNODE, $3)", 0).program(),
            NodeId(0)
        ));
    }

    #[test]
    fn remote_only_predicates_are_not_vacuous() {
        assert!(!is_vacuous(
            prog("MAX($ALLWNODES-$MYWNODE)", 0).program(),
            NodeId(0)
        ));
        assert!(!is_vacuous(prog("MIN($ALLWNODES)", 0).program(), NodeId(0)));
    }

    #[test]
    fn min_of_all_remotes_dies_with_any_crash() {
        let p = prog("MIN($ALLWNODES-$MYWNODE)", 0);
        let w = crash_unsatisfiable(&p, &topo(), NodeId(0), 1).unwrap();
        assert_eq!(w, vec![NodeId(1)]); // lexicographically first witness
    }

    #[test]
    fn max_of_remotes_survives_one_crash_but_not_three() {
        let p = prog("MAX($ALLWNODES-$MYWNODE)", 0);
        assert!(crash_unsatisfiable(&p, &topo(), NodeId(0), 1).is_none());
        assert!(crash_unsatisfiable(&p, &topo(), NodeId(0), 2).is_none());
        let w = crash_unsatisfiable(&p, &topo(), NodeId(0), 3).unwrap();
        assert_eq!(w, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn quorum_tolerates_exactly_its_slack() {
        // KTH_MIN(2, all 4) needs 4-2+1 = 3 acks (origin included):
        // tolerates 1 remote crash, not 2.
        let p = prog("KTH_MIN(2, $ALLWNODES)", 0);
        assert!(crash_unsatisfiable(&p, &topo(), NodeId(0), 1).is_none());
        assert!(crash_unsatisfiable(&p, &topo(), NodeId(0), 2).is_some());
    }

    #[test]
    fn min_over_everyone_blocks_on_an_unjoined_member() {
        let p = prog("MIN($ALLWNODES-$MYWNODE)", 0);
        assert!(unjoined_blocked(
            p.program(),
            &topo(),
            NodeId(0),
            &[NodeId(3)]
        ));
        assert!(!unjoined_blocked(p.program(), &topo(), NodeId(0), &[]));
    }

    #[test]
    fn max_of_remotes_tolerates_unjoined_members() {
        let p = prog("MAX($ALLWNODES-$MYWNODE)", 0);
        assert!(!unjoined_blocked(
            p.program(),
            &topo(),
            NodeId(0),
            &[NodeId(2), NodeId(3)]
        ));
        // ...until every remote is unjoined.
        assert!(unjoined_blocked(
            p.program(),
            &topo(),
            NodeId(0),
            &[NodeId(1), NodeId(2), NodeId(3)]
        ));
    }

    #[test]
    fn zero_budget_never_fires() {
        let p = prog("MIN($ALLWNODES-$MYWNODE)", 0);
        assert!(crash_unsatisfiable(&p, &topo(), NodeId(0), 0).is_none());
    }
}
