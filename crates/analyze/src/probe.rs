//! Numeric probing of compiled predicates.
//!
//! Some semantic properties are easiest to establish by *running* the
//! compiled program against synthetic ACK tables rather than reasoning
//! about the expression tree: vacuity (satisfied by the origin alone) and
//! crash-satisfiability (still able to advance once `f` nodes are dead).
//! Both exploit predicate monotonicity: every reduction is monotone in
//! each ACK cell, so probing with a single "high" value `H` against zeros
//! is conclusive — if the result is `H` (resp. `< H`) at the probe
//! point, it is for every sequence number.

use stabilizer_dsl::{AckTypeId, AckView, NodeId, Program, Topology};

/// The "high watermark" used by probes; any value would do (monotonicity),
/// but a large one keeps it visually distinct from real sequence numbers
/// in debug output.
pub const PROBE_HIGH: u64 = 1 << 62;

/// An ACK table where a fixed node set has acknowledged everything
/// (`PROBE_HIGH` at every ACK type) and everyone else nothing.
struct SubsetView<'a> {
    up: &'a [NodeId],
}

impl AckView for SubsetView<'_> {
    fn ack(&self, node: NodeId, _ty: AckTypeId) -> u64 {
        if self.up.contains(&node) {
            PROBE_HIGH
        } else {
            0
        }
    }
}

/// True if the predicate is satisfied by the origin's own acknowledgment
/// alone: with `me` at `H` and every other node at 0 the program already
/// evaluates to `H`, so the predicate never waits for any remote node.
pub fn is_vacuous(program: &Program, me: NodeId) -> bool {
    program.eval(&SubsetView { up: &[me] }) == PROBE_HIGH
}

/// True if the predicate cannot advance while `unjoined` members are
/// still outside the cluster: with the unjoined set at 0 and every
/// joined node (including `me`) at `H`, the program evaluates `< H`.
///
/// Unlike [`crash_unsatisfiable`] this is not a hypothetical — the
/// nodes are *known* to be absent right now. The frontier stalls (a
/// well-defined state, hence a warning, not an error) until each
/// flagged member joins and completes §III-E state-transfer catch-up.
pub fn unjoined_blocked(
    program: &Program,
    topo: &Topology,
    me: NodeId,
    unjoined: &[NodeId],
) -> bool {
    if unjoined.is_empty() || unjoined.contains(&me) {
        return false;
    }
    let up: Vec<NodeId> = topo
        .all_nodes()
        .into_iter()
        .filter(|n| !unjoined.contains(n))
        .collect();
    program.eval(&SubsetView { up: &up }) < PROBE_HIGH
}

/// If some set of `failure_budget` non-origin nodes can, by crashing,
/// permanently prevent the predicate from advancing, return the
/// smallest-index such set. `None` means every such crash set still lets
/// the frontier reach `H` (or the budget is 0).
///
/// The probe gives crashed nodes 0 at every ACK type and everyone else
/// (including `me`) `H`; a result `< H` means the predicate needs an ACK
/// from inside the crashed set. Note the runtime *can* recover by
/// explicitly excluding crashed nodes (§III-E rewrites the predicate),
/// but only when failure detection + `auto_exclude_suspects` are active;
/// the lint flags deployments that would stall without that.
pub fn crash_unsatisfiable(
    program: &Program,
    topo: &Topology,
    me: NodeId,
    failure_budget: usize,
) -> Option<Vec<NodeId>> {
    if failure_budget == 0 {
        return None;
    }
    let others: Vec<NodeId> = topo.all_nodes().into_iter().filter(|n| *n != me).collect();
    let f = failure_budget.min(others.len());
    let mut crashed: Vec<NodeId> = Vec::with_capacity(f);
    let mut up: Vec<NodeId> = Vec::with_capacity(others.len() + 1);
    search_subsets(program, &others, f, 0, &mut crashed, &mut up, me)
}

/// Depth-first enumeration of `f`-subsets of `others` (lexicographic, so
/// the reported witness is deterministic). Topologies are small (the
/// paper deploys 8 nodes); no cap is needed below ~30 nodes with small f.
fn search_subsets(
    program: &Program,
    others: &[NodeId],
    f: usize,
    from: usize,
    crashed: &mut Vec<NodeId>,
    up: &mut Vec<NodeId>,
    me: NodeId,
) -> Option<Vec<NodeId>> {
    if crashed.len() == f {
        up.clear();
        up.push(me);
        up.extend(others.iter().filter(|n| !crashed.contains(n)));
        if program.eval(&SubsetView { up }) < PROBE_HIGH {
            return Some(crashed.clone());
        }
        return None;
    }
    for i in from..others.len() {
        crashed.push(others[i]);
        if let Some(w) = search_subsets(program, others, f, i + 1, crashed, up, me) {
            return Some(w);
        }
        crashed.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabilizer_dsl::{AckTypeRegistry, Predicate};

    fn topo() -> Topology {
        Topology::builder()
            .az("East", &["e1", "e2"])
            .az("West", &["w1", "w2"])
            .build()
            .unwrap()
    }

    fn prog(src: &str, me: u16) -> Program {
        let acks = AckTypeRegistry::new();
        Predicate::compile(src, &topo(), &acks, NodeId(me))
            .unwrap()
            .program()
            .clone()
    }

    #[test]
    fn max_including_self_is_vacuous() {
        assert!(is_vacuous(&prog("MAX($ALLWNODES)", 0), NodeId(0)));
        assert!(is_vacuous(&prog("MAX($MYWNODE, $3)", 0), NodeId(0)));
    }

    #[test]
    fn remote_only_predicates_are_not_vacuous() {
        assert!(!is_vacuous(&prog("MAX($ALLWNODES-$MYWNODE)", 0), NodeId(0)));
        assert!(!is_vacuous(&prog("MIN($ALLWNODES)", 0), NodeId(0)));
    }

    #[test]
    fn min_of_all_remotes_dies_with_any_crash() {
        let p = prog("MIN($ALLWNODES-$MYWNODE)", 0);
        let w = crash_unsatisfiable(&p, &topo(), NodeId(0), 1).unwrap();
        assert_eq!(w, vec![NodeId(1)]); // lexicographically first witness
    }

    #[test]
    fn max_of_remotes_survives_one_crash_but_not_three() {
        let p = prog("MAX($ALLWNODES-$MYWNODE)", 0);
        assert!(crash_unsatisfiable(&p, &topo(), NodeId(0), 1).is_none());
        assert!(crash_unsatisfiable(&p, &topo(), NodeId(0), 2).is_none());
        let w = crash_unsatisfiable(&p, &topo(), NodeId(0), 3).unwrap();
        assert_eq!(w, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn quorum_tolerates_exactly_its_slack() {
        // KTH_MIN(2, all 4) needs 4-2+1 = 3 acks (origin included):
        // tolerates 1 remote crash, not 2.
        let p = prog("KTH_MIN(2, $ALLWNODES)", 0);
        assert!(crash_unsatisfiable(&p, &topo(), NodeId(0), 1).is_none());
        assert!(crash_unsatisfiable(&p, &topo(), NodeId(0), 2).is_some());
    }

    #[test]
    fn min_over_everyone_blocks_on_an_unjoined_member() {
        let p = prog("MIN($ALLWNODES-$MYWNODE)", 0);
        assert!(unjoined_blocked(&p, &topo(), NodeId(0), &[NodeId(3)]));
        assert!(!unjoined_blocked(&p, &topo(), NodeId(0), &[]));
    }

    #[test]
    fn max_of_remotes_tolerates_unjoined_members() {
        let p = prog("MAX($ALLWNODES-$MYWNODE)", 0);
        assert!(!unjoined_blocked(
            &p,
            &topo(),
            NodeId(0),
            &[NodeId(2), NodeId(3)]
        ));
        // ...until every remote is unjoined.
        assert!(unjoined_blocked(
            &p,
            &topo(),
            NodeId(0),
            &[NodeId(1), NodeId(2), NodeId(3)]
        ));
    }

    #[test]
    fn zero_budget_never_fires() {
        let p = prog("MIN($ALLWNODES-$MYWNODE)", 0);
        assert!(crash_unsatisfiable(&p, &topo(), NodeId(0), 0).is_none());
    }
}
