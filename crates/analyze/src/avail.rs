//! The availability prover: exact crash tolerance `f*`, minimal blocking
//! sets, and partition-cut analysis for compiled predicates.
//!
//! Every resolved predicate is a **monotone threshold function** over
//! node-up sets: a normalized reduction `KTH(k, x₁..xₙ)` reaches the
//! probe high-watermark iff enough of its operands do (`k` of them for
//! `Largest`, `n−k+1` for `Smallest`), and each operand is itself a cell
//! (up iff its node is up), a constant, or a nested reduction. That
//! structure lets us enumerate *all minimal blocking sets* — the minimal
//! sets of crashed nodes that stop the frontier forever — by structural
//! recursion instead of blind subset search:
//!
//! * `MIN(S)` (Smallest, rank 1): any single operand down blocks — the
//!   blocking sets are the union of the operands' singletons.
//! * `MAX(S)` (Largest, rank 1): every operand must be down — one
//!   blocking set, the whole operand node set.
//! * `KTH(k, S)`: every way of choosing "enough down" operands and one
//!   minimal blocking set from each, unioned, then minimalized.
//!
//! Mixed expressions (nested reductions, constants, duplicate cells) go
//! through the same recursion; every structurally derived set is then
//! cross-checked by [probe](crate::probe) (blocked with the set down,
//! unblocked with any member revived), and the engine falls back to
//! exhaustive probe enumeration over the dependency nodes if the
//! structural pass overflows or fails verification.
//!
//! From the minimal blocking sets everything else is cheap:
//!
//! * `f*` — the exact crash tolerance — is (smallest blocking set) − 1,
//!   or the number of other nodes when no blocking set exists.
//! * Partition-cut analysis: a network cut isolating a set of AZs from
//!   the vantage makes the far side behave as crashed (its ACKs never
//!   arrive), so a cut strands the vantage iff the far side contains a
//!   blocking set. Cut cost counts only `linked` node pairs (consulting
//!   the [`PlacementMap`]) — links partial replication never opens
//!   cannot be severed.

use crate::diag::{Diagnostic, Lint};
use crate::probe::{self, PROBE_HIGH};
use stabilizer_dsl::{
    resolve::{Operand, ResolvedExpr},
    NodeId, Predicate, Span, Topology,
};
use stabilizer_place::PlacementMap;

/// Cap on intermediate candidate sets during structural recursion; above
/// this the engine falls back to exhaustive probe enumeration (which is
/// bounded by the dependency count, not the candidate product).
const STRUCTURAL_CAP: usize = 20_000;

/// The availability verdict for one predicate at one vantage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Availability {
    /// The vantage the predicate was compiled at.
    pub me: NodeId,
    /// All minimal blocking sets: each sorted by node id, the list sorted
    /// by (size, lexicographic). Empty when no crash set of other nodes
    /// can ever block the predicate.
    pub blocking_sets: Vec<Vec<NodeId>>,
    /// Exact crash tolerance `f*`: the maximum number of crashed
    /// non-vantage nodes under which the frontier still advances.
    /// `-1` when the predicate is blocked even with zero crashes (it
    /// waits on a constant below the probe high), `num_nodes - 1` when
    /// unbounded (no blocking set exists).
    pub tolerance: i64,
    /// True when the sets came from structural recursion (probe-verified);
    /// false when the exhaustive probe fallback produced them.
    pub structural: bool,
}

impl Availability {
    /// Size of the smallest blocking set, if any set exists.
    pub fn min_blocking(&self) -> Option<usize> {
        self.blocking_sets.first().map(Vec::len)
    }

    /// True when no crash set of other nodes can block the predicate.
    pub fn unbounded(&self) -> bool {
        self.blocking_sets.is_empty()
    }
}

/// A network cut isolating `far_azs` (and their member nodes) from the
/// vantage's side of the topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionCut {
    /// Names of the AZs on the far side, in topology order.
    pub far_azs: Vec<String>,
    /// Every node stranded on the far side.
    pub far_nodes: Vec<NodeId>,
    /// How many live overlay links the cut severs — only `linked` node
    /// pairs count under partial replication (a full mesh otherwise).
    pub severed_links: usize,
}

/// Compute the availability verdict for `pred` evaluated at `me`.
///
/// The caller is expected to pass the predicate *as installed* — i.e.
/// already [`restricted_to`](Predicate::restricted_to) the stream's
/// replica set under partial replication — so the verdict matches what
/// the runtime actually waits on.
pub fn availability(pred: &Predicate, topo: &Topology, me: NodeId) -> Availability {
    let (masks, structural) = blocking_masks(pred, topo, me);
    let blocking_sets = masks_to_sets(&masks);
    Availability {
        me,
        tolerance: tolerance_from(&blocking_sets, topo),
        blocking_sets,
        structural,
    }
}

/// Exhaustive probe enumeration of minimal blocking sets — the oracle the
/// property suite compares the structural engine against. Cost is
/// `2^d` probe evaluations for `d` dependency nodes; callers keep `d`
/// small.
pub fn brute_force_availability(pred: &Predicate, topo: &Topology, me: NodeId) -> Availability {
    let masks = brute_force_masks(pred, topo, me);
    let blocking_sets = masks_to_sets(&masks);
    Availability {
        me,
        tolerance: tolerance_from(&blocking_sets, topo),
        blocking_sets,
        structural: false,
    }
}

/// `f*` from a minimal-set list: smallest set size minus one, or the
/// number of non-vantage nodes when no set exists.
fn tolerance_from(sets: &[Vec<NodeId>], topo: &Topology) -> i64 {
    match sets.first() {
        Some(smallest) => smallest.len() as i64 - 1,
        None => topo.num_nodes() as i64 - 1,
    }
}

/// Every cut of a union of non-vantage AZs that strands `me`: the far
/// side contains a blocking set, so the frontier can never advance while
/// the cut holds. Sorted by (severed links, AZ count, AZ names) — the
/// first entry is the *worst* cut: the cheapest network event that
/// stalls the predicate. `placement` scopes link counting; `None` means
/// full replication (every pair linked).
pub fn stranding_cuts(
    avail: &Availability,
    topo: &Topology,
    placement: Option<&PlacementMap>,
) -> Vec<PartitionCut> {
    if avail.blocking_sets.is_empty() {
        return Vec::new();
    }
    let masks: Vec<u64> = avail.blocking_sets.iter().map(|s| set_to_mask(s)).collect();
    let my_az = topo.az_of(avail.me);
    let other_azs: Vec<(stabilizer_dsl::AzId, &[NodeId])> =
        topo.azs().filter(|(az, _)| *az != my_az).collect();
    let mut cuts = Vec::new();
    for sel in 1u32..(1 << other_azs.len()) {
        let mut far_mask = 0u64;
        let mut far_azs = Vec::new();
        let mut far_nodes = Vec::new();
        for (i, (az, members)) in other_azs.iter().enumerate() {
            if sel & (1 << i) != 0 {
                far_azs.push(topo.az_name(*az).to_owned());
                for n in *members {
                    far_mask |= 1 << n.0;
                    far_nodes.push(*n);
                }
            }
        }
        if !masks.iter().any(|m| m & !far_mask == 0) {
            continue; // far side contains no blocking set: frontier advances
        }
        let severed = severed_links(topo, far_mask, placement);
        if severed == 0 {
            continue; // no live link crosses this cut: nothing to sever
        }
        far_nodes.sort_unstable();
        cuts.push(PartitionCut {
            far_azs,
            far_nodes,
            severed_links: severed,
        });
    }
    cuts.sort_by(|a, b| {
        (a.severed_links, a.far_azs.len(), &a.far_azs).cmp(&(
            b.severed_links,
            b.far_azs.len(),
            &b.far_azs,
        ))
    });
    cuts
}

/// The cheapest cut that strands the vantage, if any.
pub fn worst_cut(
    avail: &Availability,
    topo: &Topology,
    placement: Option<&PlacementMap>,
) -> Option<PartitionCut> {
    stranding_cuts(avail, topo, placement).into_iter().next()
}

/// The cheapest *single-AZ* cut that strands the vantage: the classic
/// geo-replication event of one region dropping off the WAN. This is the
/// trigger for the `partition-vulnerable` lint.
pub fn single_az_cut(
    avail: &Availability,
    topo: &Topology,
    placement: Option<&PlacementMap>,
) -> Option<PartitionCut> {
    stranding_cuts(avail, topo, placement)
        .into_iter()
        .find(|c| c.far_azs.len() == 1)
}

/// Count the live overlay links a cut severs: unordered node pairs with
/// one end on each side that partial replication actually connects.
fn severed_links(topo: &Topology, far_mask: u64, placement: Option<&PlacementMap>) -> usize {
    let nodes = topo.all_nodes();
    let mut severed = 0;
    for (i, a) in nodes.iter().enumerate() {
        for b in &nodes[i + 1..] {
            let crosses = (far_mask >> a.0) & 1 != (far_mask >> b.0) & 1;
            if crosses && placement.is_none_or(|p| p.linked(*a, *b)) {
                severed += 1;
            }
        }
    }
    severed
}

/// The lexicographically-first crash witness within `budget`: the
/// smallest-index `budget`-subset of non-vantage nodes containing a
/// blocking set — byte-identical to the witness the old exhaustive DFS
/// in [`probe::crash_unsatisfiable`](crate::crash_unsatisfiable)
/// reported, but derived from the minimal sets: complete each small
/// enough blocking set with the lowest free node ids and take the
/// lexicographic minimum.
pub fn crash_witness(avail: &Availability, topo: &Topology, budget: usize) -> Option<Vec<NodeId>> {
    if budget == 0 {
        return None;
    }
    let others: Vec<NodeId> = topo
        .all_nodes()
        .into_iter()
        .filter(|n| *n != avail.me)
        .collect();
    let f = budget.min(others.len());
    let mut best: Option<Vec<NodeId>> = None;
    for set in &avail.blocking_sets {
        if set.len() > f {
            continue; // sets are size-sorted, but keep it robust
        }
        let mut witness = set.clone();
        for n in &others {
            if witness.len() == f {
                break;
            }
            if !witness.contains(n) {
                witness.push(*n);
            }
        }
        witness.sort_unstable();
        if best.as_ref().is_none_or(|b| witness < *b) {
            best = Some(witness);
        }
    }
    best
}

/// Render a blocking-set list as `{a, b} {c}` with topology names.
pub fn render_sets(sets: &[Vec<NodeId>], topo: &Topology) -> String {
    sets.iter()
        .map(|s| {
            format!(
                "{{{}}}",
                s.iter()
                    .map(|n| topo.node_name(*n))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// The `tolerance-asymmetry` diagnostic: `f*` for the same predicate
/// differs across vantages. `per_vantage` pairs vantage names with their
/// tolerance; `span` should cover the predicate source.
pub fn asymmetry_diagnostic(per_vantage: &[(&str, i64)], span: Span) -> Option<Diagnostic> {
    let min = per_vantage.iter().map(|(_, t)| *t).min()?;
    let max = per_vantage.iter().map(|(_, t)| *t).max()?;
    if min == max {
        return None;
    }
    let table = per_vantage
        .iter()
        .map(|(name, t)| format!("{name}={t}"))
        .collect::<Vec<_>>()
        .join(", ");
    Some(
        Diagnostic::new(
            Lint::ToleranceAsymmetry,
            span,
            format!("crash tolerance f* differs across vantages: {table}"),
        )
        .with_note(
            "availability depends on where the predicate is evaluated; the weakest vantage bounds the deployment",
        ),
    )
}

// ----------------------------------------------------------------------
// The blocking-set engine
// ----------------------------------------------------------------------

/// Structural recursion with probe verification, falling back to
/// exhaustive probe enumeration. Returns (minimal masks, structural?).
fn blocking_masks(pred: &Predicate, topo: &Topology, me: NodeId) -> (Vec<u64>, bool) {
    if topo.num_nodes() <= 64 {
        if let Ok(masks) = expr_masks(&pred.resolved().expr, me) {
            if verify_masks(pred, topo, &masks) {
                return (masks, true);
            }
        }
    }
    (brute_force_masks(pred, topo, me), false)
}

/// Overflow marker: the candidate product exceeded [`STRUCTURAL_CAP`].
struct Overflow;

/// Minimal blocking masks of one operand. `vec![]` = never blockable
/// (the vantage's own cell, or a constant at/above the probe high);
/// `vec![0]` = blocked with zero crashes (a constant below it).
fn operand_masks(op: &Operand, me: NodeId) -> Result<Vec<u64>, Overflow> {
    match op {
        Operand::Cell(n, _) if *n == me => Ok(Vec::new()),
        Operand::Cell(n, _) => Ok(vec![1u64 << n.0]),
        Operand::Const(c) if *c >= PROBE_HIGH => Ok(Vec::new()),
        Operand::Const(_) => Ok(vec![0]),
        Operand::Nested(e) => expr_masks(e, me),
    }
}

/// Minimal blocking masks of a resolved reduction, as a minimal
/// antichain sorted by (popcount, value).
fn expr_masks(expr: &ResolvedExpr, me: NodeId) -> Result<Vec<u64>, Overflow> {
    let n = expr.operands.len();
    // Operands that must reach the probe high for the reduction to;
    // blocking means driving more than `n - req` of them down.
    let req = expr.up_requirement();
    let need_down = n - req + 1;
    let per_op: Vec<Vec<u64>> = expr
        .operands
        .iter()
        .map(|op| operand_masks(op, me))
        .collect::<Result<_, _>>()?;
    // Always-blocked operands (antichain exactly [0]) count for free.
    let free = per_op.iter().filter(|m| m.as_slice() == [0]).count();
    let need = need_down.saturating_sub(free);
    if need == 0 {
        return Ok(vec![0]);
    }
    let blockable: Vec<&Vec<u64>> = per_op
        .iter()
        .filter(|m| !m.is_empty() && m.as_slice() != [0])
        .collect();
    if blockable.len() < need {
        return Ok(Vec::new());
    }
    // Every minimal blocking set is a union of one minimal set from each
    // of `need` blockable operands (choose any `need` operands it blocks
    // and shrink — monotonicity makes the union block, minimality makes
    // it equal). Enumerate those unions, then minimalize.
    let mut out = Vec::new();
    let mut chosen = Vec::with_capacity(need);
    combine(&blockable, need, 0, 0u64, &mut chosen, &mut out)?;
    Ok(minimalize(out))
}

/// Recursive choice of `need` operands (by ascending index) and one mask
/// from each, pushing the running unions.
fn combine(
    blockable: &[&Vec<u64>],
    need: usize,
    from: usize,
    acc: u64,
    chosen: &mut Vec<usize>,
    out: &mut Vec<u64>,
) -> Result<(), Overflow> {
    if chosen.len() == need {
        if out.len() >= STRUCTURAL_CAP {
            return Err(Overflow);
        }
        out.push(acc);
        return Ok(());
    }
    // Not enough operands left to reach `need`: prune.
    let remaining = need - chosen.len();
    for i in from..=blockable.len().saturating_sub(remaining) {
        chosen.push(i);
        for mask in blockable[i] {
            combine(blockable, need, i + 1, acc | mask, chosen, out)?;
        }
        chosen.pop();
    }
    Ok(())
}

/// Keep only the minimal masks (no other mask is a subset), deduped,
/// sorted by (popcount, value).
fn minimalize(mut masks: Vec<u64>) -> Vec<u64> {
    masks.sort_by_key(|m| (m.count_ones(), *m));
    masks.dedup();
    let mut out: Vec<u64> = Vec::new();
    for m in masks {
        if !out.iter().any(|kept| kept & !m == 0) {
            out.push(m);
        }
    }
    out
}

/// Probe-check every structurally derived set: the predicate must be
/// blocked with the set crashed and unblocked after reviving any single
/// member (minimality). Monotonicity makes one probe per case
/// conclusive.
fn verify_masks(pred: &Predicate, topo: &Topology, masks: &[u64]) -> bool {
    masks.iter().all(|m| {
        probe::blocked_with_down(pred.program(), topo, *m)
            && (0..64)
                .filter(|b| m & (1 << b) != 0)
                .all(|b| !probe::blocked_with_down(pred.program(), topo, m & !(1 << b)))
    })
}

/// Exhaustive enumeration over the dependency nodes (crashing a node the
/// predicate never reads cannot change its value): probe every subset,
/// keep the minimal blocked ones.
fn brute_force_masks(pred: &Predicate, topo: &Topology, me: NodeId) -> Vec<u64> {
    let mut deps: Vec<NodeId> = pred.dependencies().iter().map(|(n, _)| *n).collect();
    deps.sort_unstable();
    deps.dedup();
    deps.retain(|n| *n != me);
    let d = deps.len().min(63);
    let mut blocked = Vec::new();
    for sub in 0u64..(1 << d) {
        let mask: u64 = (0..d)
            .filter(|i| sub & (1 << i) != 0)
            .map(|i| 1u64 << deps[i].0)
            .sum();
        if probe::blocked_with_down(pred.program(), topo, mask) {
            blocked.push(mask);
        }
    }
    minimalize(blocked)
}

fn masks_to_sets(masks: &[u64]) -> Vec<Vec<NodeId>> {
    masks
        .iter()
        .map(|m| {
            (0u16..64)
                .filter(|b| m & (1 << b) != 0)
                .map(NodeId)
                .collect()
        })
        .collect()
}

fn set_to_mask(set: &[NodeId]) -> u64 {
    set.iter().fold(0u64, |acc, n| acc | (1 << n.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabilizer_dsl::AckTypeRegistry;

    fn topo() -> Topology {
        Topology::builder()
            .az("East", &["e1", "e2"])
            .az("West", &["w1", "w2"])
            .az("Solo", &["s1"])
            .build()
            .unwrap()
    }

    fn avail(src: &str, me: u16) -> Availability {
        let acks = AckTypeRegistry::new();
        let pred = Predicate::compile(src, &topo(), &acks, NodeId(me)).unwrap();
        availability(&pred, &topo(), NodeId(me))
    }

    fn sets(a: &Availability) -> Vec<Vec<u16>> {
        a.blocking_sets
            .iter()
            .map(|s| s.iter().map(|n| n.0).collect())
            .collect()
    }

    #[test]
    fn min_over_remotes_has_singleton_sets_and_zero_tolerance() {
        let a = avail("MIN($ALLWNODES-$MYWNODE)", 0);
        assert_eq!(sets(&a), vec![vec![1], vec![2], vec![3], vec![4]]);
        assert_eq!(a.tolerance, 0);
        assert!(a.structural);
    }

    #[test]
    fn max_over_remotes_has_one_whole_set() {
        let a = avail("MAX($ALLWNODES-$MYWNODE)", 0);
        assert_eq!(sets(&a), vec![vec![1, 2, 3, 4]]);
        assert_eq!(a.tolerance, 3);
    }

    #[test]
    fn kth_min_blocks_on_k_subsets() {
        // Smallest rank 2 over 5 cells (me included, never crashable):
        // any 2 of the 4 remotes down blocks.
        let a = avail("KTH_MIN(2, $ALLWNODES)", 0);
        assert_eq!(a.tolerance, 1);
        assert_eq!(sets(&a).len(), 6); // C(4,2)
        assert!(sets(&a).iter().all(|s| s.len() == 2));
    }

    #[test]
    fn vacuous_predicate_is_unbounded() {
        let a = avail("MAX($ALLWNODES)", 0);
        assert!(a.unbounded());
        assert_eq!(a.tolerance, 4);
    }

    #[test]
    fn constant_operand_counts_as_permanently_down() {
        // MIN over a remote and a constant: blocked with zero crashes.
        let a = avail("MIN($2, 7)", 0);
        assert_eq!(sets(&a), vec![Vec::<u16>::new()]);
        assert_eq!(a.tolerance, -1);
    }

    #[test]
    fn nested_reductions_recurse() {
        // Needs both AZ-East (without me: just e2) and one of West.
        let a = avail("MIN(MAX($AZ_East-$MYWNODE), MAX($AZ_West))", 0);
        assert_eq!(sets(&a), vec![vec![1], vec![2, 3]]);
        assert_eq!(a.tolerance, 0);
    }

    #[test]
    fn duplicate_cells_union_correctly() {
        // The same node in both operands: one crash downs both.
        let a = avail("KTH_MIN(2, $2, $2)", 0);
        assert_eq!(sets(&a), vec![vec![1]]);
    }

    #[test]
    fn structural_matches_brute_force_on_fixtures() {
        for src in [
            "MIN($ALLWNODES-$MYWNODE)",
            "MAX($ALLWNODES-$MYWNODE)",
            "KTH_MIN(2, $ALLWNODES)",
            "KTH_MAX(SIZEOF($ALLWNODES)/2+1, $ALLWNODES-$MYWNODE)",
            "MIN(MAX($AZ_East), KTH_MAX(2, $AZ_West, $WNODE_s1))",
        ] {
            let acks = AckTypeRegistry::new();
            let t = topo();
            let pred = Predicate::compile(src, &t, &acks, NodeId(0)).unwrap();
            let a = availability(&pred, &t, NodeId(0));
            let b = brute_force_availability(&pred, &t, NodeId(0));
            assert_eq!(a.blocking_sets, b.blocking_sets, "{src}");
            assert_eq!(a.tolerance, b.tolerance, "{src}");
        }
    }

    #[test]
    fn witness_is_lexicographically_first() {
        let a = avail("MIN($ALLWNODES-$MYWNODE)", 0);
        assert_eq!(crash_witness(&a, &topo(), 1), Some(vec![NodeId(1)]),);
        // Budget 2: the {1} set padded with the next free id.
        assert_eq!(
            crash_witness(&a, &topo(), 2),
            Some(vec![NodeId(1), NodeId(2)]),
        );
        let m = avail("MAX($ALLWNODES-$MYWNODE)", 0);
        assert_eq!(crash_witness(&m, &topo(), 3), None);
        assert_eq!(
            crash_witness(&m, &topo(), 4),
            Some(vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]),
        );
    }

    #[test]
    fn worst_cut_prefers_fewest_severed_links() {
        // Majority of the 4 remotes: needs 3 up; stranded iff ≥ 2
        // unreachable. Cutting West (2 nodes) strands; cutting Solo (1
        // node) does not; West+Solo also strands but severs more links.
        let a = avail("KTH_MAX(3, $ALLWNODES-$MYWNODE)", 0);
        assert_eq!(a.tolerance, 1);
        let cut = worst_cut(&a, &topo(), None).unwrap();
        assert_eq!(cut.far_azs, vec!["West".to_string()]);
        assert_eq!(cut.far_nodes, vec![NodeId(2), NodeId(3)]);
        // West's 2 nodes each link to the 3 near-side nodes.
        assert_eq!(cut.severed_links, 6);
        assert!(single_az_cut(&a, &topo(), None).is_some());
    }

    #[test]
    fn max_predicate_survives_every_az_cut() {
        // The blocking set contains e2, which shares the vantage's AZ and
        // so is always on the near side of an AZ-granular cut: no cut
        // strands a MAX over all remotes.
        let a = avail("MAX($ALLWNODES-$MYWNODE)", 0);
        assert!(single_az_cut(&a, &topo(), None).is_none());
        assert!(worst_cut(&a, &topo(), None).is_none());
    }

    #[test]
    fn placement_restricts_severed_link_counting() {
        // Stream 0 placed on {0, 2}: the only live links are 0-2 plus
        // each node's self-stream links.
        let t = topo();
        let p = PlacementMap::from_sets(
            5,
            &[
                (NodeId(0), vec![NodeId(0), NodeId(2)]),
                (NodeId(1), vec![NodeId(1), NodeId(2)]),
                (NodeId(2), vec![NodeId(2), NodeId(0)]),
                (NodeId(3), vec![NodeId(3), NodeId(0)]),
                (NodeId(4), vec![NodeId(4), NodeId(2)]),
            ],
        )
        .unwrap();
        let acks = AckTypeRegistry::new();
        let pred = Predicate::compile("MAX($WNODE_w1)", &t, &acks, NodeId(0)).unwrap();
        let a = availability(&pred, &t, NodeId(0));
        // Isolating West alone severs the 4 open links 0-2, 0-3, 1-2,
        // 2-4; taking Solo (node 4) to the far side as well removes the
        // 2-4 crossing, so the cheapest stranding cut is West+Solo at 3.
        let cut = worst_cut(&a, &t, Some(&p)).unwrap();
        assert_eq!(cut.far_azs, vec!["West".to_string(), "Solo".to_string()]);
        assert_eq!(cut.severed_links, 3);
        let single = single_az_cut(&a, &t, Some(&p)).unwrap();
        assert_eq!(single.far_azs, vec!["West".to_string()]);
        assert_eq!(single.severed_links, 4);
    }

    #[test]
    fn asymmetry_fires_only_on_differing_tolerances() {
        let span = Span::new(0, 10);
        assert!(asymmetry_diagnostic(&[("e1", 1), ("e2", 1)], span).is_none());
        let d = asymmetry_diagnostic(&[("e1", 1), ("w1", 2)], span).unwrap();
        assert_eq!(d.lint, Lint::ToleranceAsymmetry);
        assert!(d.message.contains("e1=1, w1=2"));
    }
}
