//! Diagnostics: lint identities, severities, and rendering.
//!
//! Every finding the analyzer produces is a [`Diagnostic`] — a lint id, a
//! byte-offset [`Span`] into the predicate source, a message, and optional
//! notes. A [`Report`] bundles the diagnostics for one predicate and
//! renders them caret-style for humans or as JSON for machines.

use stabilizer_dsl::Span;
use std::fmt;

/// How serious a finding is.
///
/// `Error` findings mean the predicate is statically wrong (it cannot
/// behave as written); `Warning` findings are almost certainly mistakes
/// but have well-defined runtime behavior; `Info` findings are facts a
/// user may want to know (e.g. a predicate dominated by a co-installed
/// one). Ordering: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational finding; never gates installation.
    Info,
    /// Suspicious but well-defined; rejected only under `analysis deny`.
    Warning,
    /// Statically wrong; rejected under both `warn` (reported) and `deny`.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The lint catalog: every distinct class of finding `stabcheck` can
/// produce. See the README "Predicate analysis" section for the full
/// id / severity / example / fix table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// The source does not lex/parse/type-check as a predicate.
    SyntaxError,
    /// Unknown node name, AZ name, or node operand out of range.
    UnknownName,
    /// `.suffix` names an ACK type that is not registered.
    UnknownAckType,
    /// A set expression expands to no nodes (the reduction silently
    /// loses those operands, or has none at all).
    EmptySet,
    /// A compile-time-constant `KTH_*` rank exceeds the operand count.
    RankOutOfRange,
    /// A `KTH_*` rank that is zero, non-constant, or fails to fold
    /// (overflow, division by zero).
    BadRank,
    /// The same `(node, ack-type)` cell appears more than once in one
    /// reduction, skewing rank semantics.
    DuplicateOperand,
    /// A set difference whose right-hand side removes nothing.
    UselessDifference,
    /// The predicate is satisfied by the origin's own acknowledgment
    /// alone — it never waits for any remote node.
    VacuousPredicate,
    /// The predicate reads no ACK cell at all; its frontier is a
    /// constant.
    ConstantFrontier,
    /// The predicate waits on an ACK type that a referenced node never
    /// emits under the configured topology.
    UnemittedAckType,
    /// This predicate's frontier is provably always ≥ a co-installed
    /// predicate's — satisfying the other one implies this one.
    DominatedPredicate,
    /// Two co-installed predicates provably compute the same frontier.
    EquivalentPredicates,
    /// With the configured failure budget `f`, some set of `f` crashed
    /// nodes prevents the predicate from ever advancing.
    CrashUnsatisfiable,
    /// The predicate waits on a configured member that has not joined
    /// the cluster yet; its frontier cannot advance until that node
    /// joins and completes state-transfer catch-up.
    UnjoinedNode,
    /// The predicate explicitly names a node outside the stream's
    /// replica set (partial replication): that node never receives or
    /// acks the stream, so the frontier can never advance past it.
    NonReplicaOperand,
    /// The availability prover found `f* = 0`: a single crash of the
    /// wrong node stalls the frontier forever.
    ZeroFaultTolerance,
    /// The predicate tolerates crashes (`f* ≥ 1`) but a single-AZ
    /// network cut still strands the vantage from every blocking-set
    /// complement.
    PartitionVulnerable,
    /// The same predicate has different crash tolerance `f*` at
    /// different vantages; the weakest vantage bounds the deployment.
    ToleranceAsymmetry,
}

impl Lint {
    /// Every lint, in catalog order.
    pub const ALL: [Lint; 19] = [
        Lint::SyntaxError,
        Lint::UnknownName,
        Lint::UnknownAckType,
        Lint::EmptySet,
        Lint::RankOutOfRange,
        Lint::BadRank,
        Lint::DuplicateOperand,
        Lint::UselessDifference,
        Lint::VacuousPredicate,
        Lint::ConstantFrontier,
        Lint::UnemittedAckType,
        Lint::DominatedPredicate,
        Lint::EquivalentPredicates,
        Lint::CrashUnsatisfiable,
        Lint::UnjoinedNode,
        Lint::NonReplicaOperand,
        Lint::ZeroFaultTolerance,
        Lint::PartitionVulnerable,
        Lint::ToleranceAsymmetry,
    ];

    /// Stable kebab-case identifier (used in rendered output and JSON).
    pub fn id(&self) -> &'static str {
        match self {
            Lint::SyntaxError => "syntax-error",
            Lint::UnknownName => "unknown-name",
            Lint::UnknownAckType => "unknown-ack-type",
            Lint::EmptySet => "empty-set",
            Lint::RankOutOfRange => "rank-out-of-range",
            Lint::BadRank => "bad-rank",
            Lint::DuplicateOperand => "duplicate-operand",
            Lint::UselessDifference => "useless-difference",
            Lint::VacuousPredicate => "vacuous-predicate",
            Lint::ConstantFrontier => "constant-frontier",
            Lint::UnemittedAckType => "unemitted-ack-type",
            Lint::DominatedPredicate => "dominated-predicate",
            Lint::EquivalentPredicates => "equivalent-predicates",
            Lint::CrashUnsatisfiable => "crash-unsatisfiable",
            Lint::UnjoinedNode => "unjoined-node",
            Lint::NonReplicaOperand => "non-replica-operand",
            Lint::ZeroFaultTolerance => "zero-fault-tolerance",
            Lint::PartitionVulnerable => "partition-vulnerable",
            Lint::ToleranceAsymmetry => "tolerance-asymmetry",
        }
    }

    /// The fixed severity of this lint class.
    pub fn severity(&self) -> Severity {
        match self {
            Lint::SyntaxError
            | Lint::UnknownName
            | Lint::UnknownAckType
            | Lint::EmptySet
            | Lint::RankOutOfRange
            | Lint::BadRank
            | Lint::UnemittedAckType
            | Lint::NonReplicaOperand => Severity::Error,
            Lint::DuplicateOperand
            | Lint::UselessDifference
            | Lint::VacuousPredicate
            | Lint::ConstantFrontier
            | Lint::EquivalentPredicates
            | Lint::CrashUnsatisfiable
            | Lint::UnjoinedNode
            | Lint::ZeroFaultTolerance
            | Lint::PartitionVulnerable => Severity::Warning,
            Lint::DominatedPredicate | Lint::ToleranceAsymmetry => Severity::Info,
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One analyzer finding: a lint instance anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// Byte range of the offending source text.
    pub span: Span,
    /// Human-readable description of the problem.
    pub message: String,
    /// Supplementary notes (rendered as `= note:` lines).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Construct a diagnostic with no notes.
    pub fn new(lint: Lint, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            lint,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Append a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Severity of this diagnostic (fixed per lint class).
    pub fn severity(&self) -> Severity {
        self.lint.severity()
    }
}

/// The analysis result for one named predicate: its source plus every
/// diagnostic that fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Name of the analyzed predicate (config key or CLI-assigned).
    pub name: String,
    /// The predicate source text the spans index into.
    pub source: String,
    /// Findings, in source-walk order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// A report with no findings yet.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        Report {
            name: name.into(),
            source: source.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Number of diagnostics at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == sev)
            .count()
    }

    /// The most severe finding, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity()).max()
    }

    /// True if the predicate has no error- or warning-level findings
    /// (informational findings do not spoil cleanliness).
    pub fn is_clean(&self) -> bool {
        self.worst().is_none_or(|w| w <= Severity::Info)
    }

    /// True if any finding is at or above `sev`.
    pub fn has_at_least(&self, sev: Severity) -> bool {
        self.worst().is_some_and(|w| w >= sev)
    }

    /// Render every diagnostic caret-style for a terminal, e.g.:
    ///
    /// ```text
    /// error[empty-set]: set expression expands to no nodes
    ///  --> OneRemote:1:5
    ///   |
    /// 1 | MIN($MYAZWNODES-$MYWNODE)
    ///   |     ^^^^^^^^^^^^^^^^^^^^
    ///   = note: evaluated at n7 (the only node in its AZ)
    /// ```
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&self.render_one(d));
        }
        out
    }

    fn render_one(&self, d: &Diagnostic) -> String {
        let (line_no, col, line_text, line_start) = self.locate(d.span);
        let mut out = format!("{}[{}]: {}\n", d.severity(), d.lint.id(), d.message);
        out.push_str(&format!(" --> {}:{}:{}\n", self.name, line_no, col));
        let gutter = line_no.to_string();
        let pad = " ".repeat(gutter.len());
        out.push_str(&format!("{pad} |\n"));
        out.push_str(&format!("{gutter} | {line_text}\n"));
        // Caret run covering the span's intersection with this line.
        let start_in_line = d.span.start.saturating_sub(line_start);
        let end_in_line = d.span.end.saturating_sub(line_start).min(line_text.len());
        let width = end_in_line.saturating_sub(start_in_line).max(1);
        out.push_str(&format!(
            "{pad} | {}{}\n",
            " ".repeat(start_in_line),
            "^".repeat(width)
        ));
        for note in &d.notes {
            out.push_str(&format!("{pad} = note: {note}\n"));
        }
        out
    }

    /// Map a span to (1-based line, 1-based column, line text, line start
    /// offset).
    fn locate(&self, span: Span) -> (usize, usize, &str, usize) {
        let start = span.start.min(self.source.len());
        let line_start = self.source[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_no = self.source[..line_start].matches('\n').count() + 1;
        let line_end = self.source[line_start..]
            .find('\n')
            .map_or(self.source.len(), |i| line_start + i);
        (
            line_no,
            start - line_start + 1,
            &self.source[line_start..line_end],
            line_start,
        )
    }

    /// Render the report as a JSON object (no trailing newline):
    ///
    /// ```json
    /// {"name":"p","source":"MAX($1)","clean":true,"diagnostics":[...]}
    /// ```
    ///
    /// Each diagnostic carries `lint`, `severity`, `start`, `end`,
    /// `line`, `column`, `message`, and `notes`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"name\":{}", json_string(&self.name)));
        out.push_str(&format!(",\"source\":{}", json_string(&self.source)));
        out.push_str(&format!(",\"clean\":{}", self.is_clean()));
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (line, col, _, _) = self.locate(d.span);
            out.push_str(&format!(
                "{{\"lint\":{},\"severity\":{},\"start\":{},\"end\":{},\"line\":{line},\
                 \"column\":{col},\"message\":{},\"notes\":[{}]}}",
                json_string(d.lint.id()),
                json_string(&d.severity().to_string()),
                d.span.start,
                d.span.end,
                json_string(&d.message),
                d.notes
                    .iter()
                    .map(|n| json_string(n))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Encode `s` as a JSON string literal (with surrounding quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn every_lint_has_a_unique_id() {
        let mut ids: Vec<&str> = Lint::ALL.iter().map(Lint::id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Lint::ALL.len());
    }

    #[test]
    fn report_cleanliness_ignores_info() {
        let mut r = Report::new("p", "MAX($1)");
        assert!(r.is_clean());
        r.diagnostics.push(Diagnostic::new(
            Lint::DominatedPredicate,
            Span::new(0, 7),
            "x",
        ));
        assert!(r.is_clean());
        r.diagnostics.push(Diagnostic::new(
            Lint::DuplicateOperand,
            Span::new(0, 7),
            "y",
        ));
        assert!(!r.is_clean());
        assert_eq!(r.worst(), Some(Severity::Warning));
    }

    #[test]
    fn caret_rendering_underlines_the_span() {
        let mut r = Report::new("p", "MAX($1, $1)");
        r.diagnostics
            .push(Diagnostic::new(Lint::DuplicateOperand, Span::new(8, 10), "dup").with_note("n"));
        let text = r.render_human();
        assert!(text.contains("warning[duplicate-operand]: dup"));
        assert!(text.contains(" --> p:1:9"));
        assert!(text.contains("1 | MAX($1, $1)"));
        assert!(text.contains("  |         ^^"));
        assert!(text.contains("  = note: n"));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn json_report_is_structurally_sound() {
        let mut r = Report::new("p", "MAX($9)");
        r.diagnostics.push(Diagnostic::new(
            Lint::UnknownName,
            Span::new(4, 6),
            "no such node",
        ));
        let j = r.render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"lint\":\"unknown-name\""));
        assert!(j.contains("\"severity\":\"error\""));
        assert!(j.contains("\"start\":4"));
        assert!(j.contains("\"clean\":false"));
    }
}
