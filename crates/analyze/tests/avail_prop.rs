//! Property tests for the availability prover: across random small
//! topologies and random predicates, the structural blocking-set
//! enumeration must agree exactly with brute-force probe enumeration,
//! and the reported crash tolerance `f*` must be probe-consistent —
//! no crash set of size `f*` blocks the predicate, and (when bounded)
//! the smallest claimed blocking set really is minimal under probing.

use proptest::prelude::*;
use stabilizer_analyze::{
    availability, blocked_with_down, brute_force_availability, crash_witness,
};
use stabilizer_dsl::{AckTypeRegistry, NodeId, Predicate, Topology};

/// Shape = node count per AZ; node names are n1..nN across AZs Z0..Zk.
fn build_topo(shape: &[usize]) -> Topology {
    let mut b = Topology::builder();
    let mut next = 0usize;
    for (azi, &sz) in shape.iter().enumerate() {
        let names: Vec<String> = (0..sz)
            .map(|_| {
                next += 1;
                format!("n{next}")
            })
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b = b.az(&format!("Z{azi}"), &refs);
    }
    b.build().unwrap()
}

fn arb_set_leaf(n: usize, azs: usize) -> BoxedStrategy<String> {
    prop_oneof![
        Just("$ALLWNODES".to_owned()),
        Just("$MYAZWNODES".to_owned()),
        Just("$MYWNODE".to_owned()),
        (1..=n).prop_map(|k| format!("${k}")),
        (1..=n).prop_map(|k| format!("$WNODE_n{k}")),
        (0..azs).prop_map(|a| format!("$AZ_Z{a}")),
    ]
    .boxed()
}

fn arb_set(n: usize, azs: usize) -> BoxedStrategy<String> {
    let diff = (arb_set_leaf(n, azs), arb_set_leaf(n, azs)).prop_map(|(a, b)| format!("({a}-{b})"));
    prop_oneof![4 => arb_set_leaf(n, azs), 1 => diff].boxed()
}

fn arb_pred(n: usize, azs: usize, depth: u32) -> BoxedStrategy<String> {
    let op = prop_oneof![Just("MAX"), Just("MIN"), Just("KTH_MAX"), Just("KTH_MIN")];
    let rank = (1..=n).prop_map(|k| k.to_string());
    let consts = prop_oneof![
        4 => Just(String::new()),
        1 => Just(", 0".to_owned()),
        1 => Just(", 12345".to_owned()),
    ];
    let base = (op, rank, arb_set(n, azs), arb_set(n, azs), consts).prop_map(
        |(op, k, s1, s2, c)| match op {
            "MAX" | "MIN" => format!("{op}({s1}, {s2}{c})"),
            _ => format!("{op}({k}, {s1}, {s2}{c})"),
        },
    );
    if depth == 0 {
        base.boxed()
    } else {
        let inner = arb_pred(n, azs, depth - 1);
        prop_oneof![
            3 => base,
            1 => (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("MIN({a}, {b})")),
            1 => (inner.clone(), inner).prop_map(|(a, b)| format!("MAX({a}, {b})")),
        ]
        .boxed()
    }
}

/// Topology shape (≤ 8 nodes) + a predicate generated to fit it.
fn arb_case() -> impl Strategy<Value = (Vec<usize>, String)> {
    proptest::collection::vec(1usize..=2, 1..=4).prop_flat_map(|shape| {
        let n: usize = shape.iter().sum();
        let azs = shape.len();
        (Just(shape), arb_pred(n, azs, 1))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn structural_enumeration_matches_brute_force(
        case in arb_case(),
        me_raw in 0u16..16,
    ) {
        let (shape, src) = case;
        let topo = build_topo(&shape);
        let acks = AckTypeRegistry::new();
        let me = NodeId(me_raw % topo.num_nodes() as u16);
        let Ok(pred) = Predicate::compile(&src, &topo, &acks, me) else {
            return Ok(());
        };
        let fast = availability(&pred, &topo, me);
        let slow = brute_force_availability(&pred, &topo, me);
        prop_assert_eq!(
            &fast.blocking_sets, &slow.blocking_sets,
            "minimal blocking sets diverged for {} at n{}", src, me.0 + 1
        );
        prop_assert_eq!(fast.tolerance, slow.tolerance);
    }

    #[test]
    fn tolerance_is_probe_consistent(
        case in arb_case(),
        me_raw in 0u16..16,
    ) {
        let (shape, src) = case;
        let topo = build_topo(&shape);
        let acks = AckTypeRegistry::new();
        let me = NodeId(me_raw % topo.num_nodes() as u16);
        let Ok(pred) = Predicate::compile(&src, &topo, &acks, me) else {
            return Ok(());
        };
        let avail = availability(&pred, &topo, me);
        let n = topo.num_nodes();
        let others: Vec<NodeId> = topo
            .all_nodes()
            .into_iter()
            .filter(|&x| x != me)
            .collect();

        // Exhaustively probe every crash subset of the other nodes
        // (n ≤ 8, so at most 2^7 probes): subsets of size ≤ f* never
        // block; the smallest blocking subset has size f* + 1.
        let mut min_blocking_size: Option<usize> = None;
        for bits in 0u32..(1u32 << others.len()) {
            let mut mask = 0u64;
            let mut size = 0usize;
            for (i, node) in others.iter().enumerate() {
                if bits & (1 << i) != 0 {
                    mask |= 1u64 << node.0;
                    size += 1;
                }
            }
            if blocked_with_down(pred.program(), &topo, mask) {
                min_blocking_size = Some(min_blocking_size.map_or(size, |m| m.min(size)));
            }
        }
        match min_blocking_size {
            None => prop_assert_eq!(
                avail.tolerance, n as i64 - 1,
                "no crash set blocks {} at n{} but prover claims bounded f*", src, me.0 + 1
            ),
            Some(sz) => prop_assert_eq!(
                avail.tolerance, sz as i64 - 1,
                "smallest probe-blocking set for {} at n{} has {} nodes", src, me.0 + 1, sz
            ),
        }

        // Every claimed minimal set blocks, and is minimal: dropping any
        // single member unblocks.
        for set in &avail.blocking_sets {
            let full: u64 = set.iter().map(|nd| 1u64 << nd.0).sum();
            prop_assert!(blocked_with_down(pred.program(), &topo, full));
            for drop in set {
                let reduced = full & !(1u64 << drop.0);
                prop_assert!(
                    !blocked_with_down(pred.program(), &topo, reduced),
                    "claimed minimal set {:?} for {} is not minimal", set, src
                );
            }
        }

        // The witness API is consistent with f*: no witness within a
        // budget of f*, and one exists at f* + 1 whenever f* is bounded.
        if avail.tolerance >= 0 {
            prop_assert!(crash_witness(&avail, &topo, avail.tolerance as usize).is_none());
            if !avail.unbounded() {
                let w = crash_witness(&avail, &topo, avail.tolerance as usize + 1)
                    .expect("bounded f* must admit a witness at f*+1");
                prop_assert_eq!(w.len(), avail.tolerance as usize + 1);
            }
        }
    }
}
