//! Golden-file tests: one fixture per lint class pinning the exact
//! human-rendered diagnostic, plus a shape test for the JSON rendering.
//!
//! Regenerate fixtures after an intentional renderer/message change with
//! `GOLDEN_UPDATE=1 cargo test -p stabilizer-analyze --test golden`.

use stabilizer_analyze::{asymmetry_diagnostic, AckEmissions, Analyzer, Lint, Report};
use stabilizer_dsl::{AckTypeRegistry, NodeId, Span, Topology};
use std::path::PathBuf;

fn topo() -> Topology {
    Topology::builder()
        .az("East", &["e1", "e2"])
        .az("West", &["w1", "w2"])
        .az("Solo", &["s1"])
        .build()
        .unwrap()
}

fn check(lint: Lint, report: &Report) {
    assert!(
        report.diagnostics.iter().any(|d| d.lint == lint),
        "scenario for {} did not produce it:\n{}",
        lint.id(),
        report.render_human()
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}.txt", lint.id()));
    let rendered = report.render_human();
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with GOLDEN_UPDATE=1",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "rendered output for {} diverged from {}",
        lint.id(),
        path.display()
    );
}

/// Analyze one predicate at `me` with a default analyzer.
fn analyze_at(me: u16, name: &str, src: &str) -> Report {
    let t = topo();
    let acks = AckTypeRegistry::new();
    Analyzer::new(&t, &acks, NodeId(me)).analyze(name, src)
}

#[test]
fn golden_syntax_error() {
    check(Lint::SyntaxError, &analyze_at(0, "P", "MAX($1"));
}

#[test]
fn golden_unknown_name() {
    check(Lint::UnknownName, &analyze_at(0, "P", "MAX($AZ_Mars)"));
}

#[test]
fn golden_unknown_ack_type() {
    check(
        Lint::UnknownAckType,
        &analyze_at(0, "P", "MIN($ALLWNODES.validated)"),
    );
}

#[test]
fn golden_empty_set() {
    // At s1 (alone in its AZ) the AZ-local remote set is empty; the
    // reduction still has the $2 operand, so the resolver accepts it.
    check(
        Lint::EmptySet,
        &analyze_at(4, "P", "MAX($2, $MYAZWNODES-$MYWNODE)"),
    );
}

#[test]
fn golden_rank_out_of_range() {
    check(
        Lint::RankOutOfRange,
        &analyze_at(0, "P", "KTH_MAX(9, $ALLWNODES)"),
    );
}

#[test]
fn golden_bad_rank() {
    check(Lint::BadRank, &analyze_at(0, "P", "KTH_MIN(0, $ALLWNODES)"));
}

#[test]
fn golden_unemitted_ack_type() {
    let t = topo();
    let acks = AckTypeRegistry::new();
    let verified = acks.register("verified");
    let mut em = AckEmissions::new();
    em.restrict(verified, &[t.node("e2").unwrap()]);
    let report = Analyzer::new(&t, &acks, NodeId(0))
        .with_emissions(&em)
        .analyze("P", "MAX($WNODE_w1.verified)");
    check(Lint::UnemittedAckType, &report);
}

#[test]
fn golden_non_replica_operand() {
    let t = topo();
    let acks = AckTypeRegistry::new();
    // Stream replicated on {e1, e2, w1}; the predicate names w2.
    let reps = [NodeId(0), NodeId(1), NodeId(2)];
    let report = Analyzer::new(&t, &acks, NodeId(0))
        .with_replicas(&reps)
        .analyze("P", "MAX($WNODE_w2)");
    check(Lint::NonReplicaOperand, &report);
}

#[test]
fn golden_duplicate_operand() {
    check(Lint::DuplicateOperand, &analyze_at(0, "P", "MAX($2, $2)"));
}

#[test]
fn golden_useless_difference() {
    check(
        Lint::UselessDifference,
        &analyze_at(0, "P", "MIN($MYAZWNODES-$AZ_West)"),
    );
}

#[test]
fn golden_vacuous_predicate() {
    check(
        Lint::VacuousPredicate,
        &analyze_at(0, "P", "MAX($ALLWNODES)"),
    );
}

#[test]
fn golden_constant_frontier() {
    check(Lint::ConstantFrontier, &analyze_at(0, "P", "MAX(7)"));
}

#[test]
fn golden_crash_unsatisfiable() {
    let t = topo();
    let acks = AckTypeRegistry::new();
    let report = Analyzer::new(&t, &acks, NodeId(0))
        .with_failure_budget(1)
        .analyze("P", "MIN($ALLWNODES-$MYWNODE)");
    check(Lint::CrashUnsatisfiable, &report);
}

#[test]
fn golden_unjoined_node() {
    let t = topo();
    let acks = AckTypeRegistry::new();
    let unjoined = [t.node("w2").unwrap()];
    let report = Analyzer::new(&t, &acks, NodeId(0))
        .with_unjoined(&unjoined)
        .analyze("P", "MIN($ALLWNODES-$MYWNODE)");
    check(Lint::UnjoinedNode, &report);
}

#[test]
fn golden_equivalent_predicates() {
    let t = topo();
    let acks = AckTypeRegistry::new();
    let reports = Analyzer::new(&t, &acks, NodeId(0)).analyze_set(&[
        ("All".to_string(), "MIN($ALLWNODES-$MYWNODE)".to_string()),
        (
            "AlsoAll".to_string(),
            "KTH_MAX(4, $ALLWNODES-$MYWNODE)".to_string(),
        ),
    ]);
    check(Lint::EquivalentPredicates, &reports[1]);
}

#[test]
fn golden_dominated_predicate() {
    let t = topo();
    let acks = AckTypeRegistry::new();
    let reports = Analyzer::new(&t, &acks, NodeId(0)).analyze_set(&[
        ("All".to_string(), "MIN($ALLWNODES-$MYWNODE)".to_string()),
        ("One".to_string(), "MAX($ALLWNODES-$MYWNODE)".to_string()),
    ]);
    check(Lint::DominatedPredicate, &reports[1]);
}

#[test]
fn golden_zero_fault_tolerance() {
    // The audit lints stay silent unless enabled.
    let t = topo();
    let acks = AckTypeRegistry::new();
    let src = "MIN($ALLWNODES-$MYWNODE)";
    assert!(Analyzer::new(&t, &acks, NodeId(0))
        .analyze("P", src)
        .is_clean());
    let report = Analyzer::new(&t, &acks, NodeId(0))
        .with_availability_audit()
        .analyze("P", src);
    check(Lint::ZeroFaultTolerance, &report);
}

#[test]
fn golden_partition_vulnerable() {
    // Needs 3 of the 4 remotes: f* = 1 (no zero-fault warning), but
    // cutting off AZ West (2 nodes) strands the vantage.
    let t = topo();
    let acks = AckTypeRegistry::new();
    let report = Analyzer::new(&t, &acks, NodeId(0))
        .with_availability_audit()
        .analyze("P", "KTH_MAX(3, $ALLWNODES-$MYWNODE)");
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.lint == Lint::ZeroFaultTolerance));
    check(Lint::PartitionVulnerable, &report);
}

#[test]
fn golden_tolerance_asymmetry() {
    // Inside East the predicate reads one node (the other East peer);
    // outside it reads two, so f* differs by vantage. The per-vantage
    // tolerances below match what the prover computes for this source.
    let src = "MAX($AZ_East-$MYWNODE)";
    let d = asymmetry_diagnostic(
        &[("e1", 0), ("e2", 0), ("w1", 1), ("w2", 1), ("s1", 1)],
        Span::new(0, src.len()),
    )
    .expect("differing tolerances must fire");
    let mut report = Report::new("P", src);
    report.diagnostics.push(d);
    check(Lint::ToleranceAsymmetry, &report);
}

#[test]
fn every_lint_class_has_a_golden_fixture() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for lint in Lint::ALL {
        let path = dir.join(format!("{}.txt", lint.id()));
        assert!(
            path.is_file(),
            "no golden fixture for lint class {}",
            lint.id()
        );
    }
}

#[test]
fn json_rendering_has_the_documented_shape() {
    let report = analyze_at(0, "BadRank", "KTH_MAX(9, $ALLWNODES)");
    let json = report.render_json();
    for needle in [
        "\"name\":\"BadRank\"",
        "\"source\":\"KTH_MAX(9, $ALLWNODES)\"",
        "\"clean\":false",
        "\"diagnostics\":[",
        "\"lint\":\"rank-out-of-range\"",
        "\"severity\":\"error\"",
        "\"start\":8",
        "\"end\":9",
        "\"line\":1",
        "\"column\":9",
        "\"message\":",
        "\"notes\":[",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
    // Balanced and quote-escaped enough to be real JSON: a clean report
    // also renders, with an empty diagnostics array.
    let clean = analyze_at(0, "Ok \"quoted\"", "MIN($ALLWNODES-$MYWNODE)");
    let json = clean.render_json();
    assert!(json.contains("\"clean\":true"));
    assert!(json.contains("\"diagnostics\":[]"));
    assert!(json.contains("\\\"quoted\\\""));
}
