//! Differential property test tying the analyzer to both evaluation
//! engines: any predicate the analyzer passes without an *error* must
//! compile, and the bytecode VM and the AST interpreter must agree on it
//! for every ACK table — across randomly shaped topologies, not just the
//! fixed fixtures the unit tests use.
//!
//! This pins the analyzer's soundness contract from the other side: an
//! error-free report is a promise that the predicate is executable, and a
//! compile failure here is an analyzer false negative.

use proptest::prelude::*;
use stabilizer_analyze::{Analyzer, Severity};
use stabilizer_dsl::{
    compile, interp::eval_resolved, parse, resolve, AckTypeId, AckTypeRegistry, AckView, NodeId,
    Topology,
};

/// Shape = node count per AZ; node names are n1..nN across AZs Z0..Zk.
fn build_topo(shape: &[usize]) -> Topology {
    let mut b = Topology::builder();
    let mut next = 0usize;
    for (azi, &sz) in shape.iter().enumerate() {
        let names: Vec<String> = (0..sz)
            .map(|_| {
                next += 1;
                format!("n{next}")
            })
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b = b.az(&format!("Z{azi}"), &refs);
    }
    b.build().unwrap()
}

#[derive(Debug, Clone)]
struct Table(Vec<Vec<u64>>);

impl AckView for Table {
    fn ack(&self, node: NodeId, ty: AckTypeId) -> u64 {
        self.0[node.0 as usize][ty.0 as usize]
    }
}

/// A set fragment whose names are all valid for an `n`-node, `azs`-AZ
/// topology, so most generated predicates survive resolution and the
/// differential half of the property gets real coverage.
fn arb_set_leaf(n: usize, azs: usize) -> BoxedStrategy<String> {
    prop_oneof![
        Just("$ALLWNODES".to_owned()),
        Just("$MYAZWNODES".to_owned()),
        Just("$MYWNODE".to_owned()),
        (1..=n).prop_map(|k| format!("${k}")),
        (1..=n).prop_map(|k| format!("$WNODE_n{k}")),
        (0..azs).prop_map(|a| format!("$AZ_Z{a}")),
    ]
    .boxed()
}

fn arb_set(n: usize, azs: usize) -> BoxedStrategy<String> {
    let diff = (arb_set_leaf(n, azs), arb_set_leaf(n, azs)).prop_map(|(a, b)| format!("({a}-{b})"));
    prop_oneof![4 => arb_set_leaf(n, azs), 1 => diff].boxed()
}

fn arb_pred(n: usize, azs: usize, depth: u32) -> BoxedStrategy<String> {
    let op = prop_oneof![Just("MAX"), Just("MIN"), Just("KTH_MAX"), Just("KTH_MIN")];
    let rank = prop_oneof![
        3 => (1..=n).prop_map(|k| k.to_string()),
        1 => Just("SIZEOF($ALLWNODES)/2+1".to_owned()),
    ];
    let suffix = prop_oneof![
        3 => Just(String::new()),
        1 => Just(".persisted".to_owned()),
        1 => Just(".delivered".to_owned()),
    ];
    let base =
        (op, rank, arb_set(n, azs), arb_set(n, azs), suffix).prop_map(|(op, k, s1, s2, suf)| {
            let s2 = if suf.is_empty() {
                s2
            } else if s2.starts_with('(') {
                format!("{s2}{suf}")
            } else {
                format!("({s2}){suf}")
            };
            match op {
                "MAX" | "MIN" => format!("{op}({s1}, {s2})"),
                _ => format!("{op}({k}, {s1}, {s2})"),
            }
        });
    if depth == 0 {
        base.boxed()
    } else {
        let inner = arb_pred(n, azs, depth - 1);
        prop_oneof![
            3 => base,
            1 => (inner.clone(), inner).prop_map(|(a, b)| format!("MIN({a}, {b})")),
        ]
        .boxed()
    }
}

/// Topology shape + a predicate generated to fit it.
fn arb_case() -> impl Strategy<Value = (Vec<usize>, String)> {
    proptest::collection::vec(1usize..=3, 1..=3).prop_flat_map(|shape| {
        let n: usize = shape.iter().sum();
        let azs = shape.len();
        (Just(shape), arb_pred(n, azs, 1))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn error_free_predicates_compile_and_engines_agree(
        case in arb_case(),
        rows in proptest::collection::vec(proptest::collection::vec(0u64..1_000_000, 4), 9),
        me_raw in 0u16..16,
    ) {
        let (shape, src) = case;
        let topo = build_topo(&shape);
        let acks = AckTypeRegistry::new();
        let me = NodeId(me_raw % topo.num_nodes() as u16);
        let report = Analyzer::new(&topo, &acks, me).analyze("P", &src);
        if report.has_at_least(Severity::Error) {
            return Ok(());
        }
        // No error diagnostic: the analyzer promises this is executable.
        let ast = parse(&src).expect("error-free report but parse failed");
        let resolved = resolve(&ast, &topo, &acks, me)
            .unwrap_or_else(|e| panic!("analyzer passed {src:?} at {me:?} but resolve failed: {e}"));
        let program = compile(&resolved);
        let table = Table(rows);
        prop_assert_eq!(
            program.eval(&table),
            eval_resolved(&resolved.expr, &table),
            "VM and interpreter diverged on {} at node {}", src, me.0
        );
    }
}
