//! Regression tests for the two halves of the §III-E rank story:
//!
//! * **Runtime**: when crash handling shrinks a `KTH_*` operand list below
//!   the rank, `exclude_node` clamps the rank and the predicate stays
//!   evaluable.
//! * **Static**: the same out-of-range rank written directly in the source
//!   is a bug (there is no crash to blame), and the analyzer surfaces it as
//!   a `rank-out-of-range` error pointing at the rank argument.

use stabilizer_analyze::{Analyzer, Lint, Severity};
use stabilizer_dsl::{
    compile, exclude_node, parse, resolve, AckTypeId, AckTypeRegistry, AckView, NodeId, Topology,
};

struct Uniform(u64);

impl AckView for Uniform {
    fn ack(&self, node: NodeId, _ty: AckTypeId) -> u64 {
        // Distinct per-node values so rank selection is observable.
        self.0 + node.0 as u64
    }
}

fn topo(n: usize) -> Topology {
    let names: Vec<String> = (1..=n).map(|i| format!("n{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    Topology::builder().az("A", &refs).build().unwrap()
}

#[test]
fn runtime_crash_shrink_clamps_rank_and_stays_evaluable() {
    let topo = topo(5);
    let acks = AckTypeRegistry::new();
    let src = "KTH_MIN(4, $ALLWNODES)";

    // The predicate is statically fine on 5 nodes: the analyzer is clean.
    let report = Analyzer::new(&topo, &acks, NodeId(0)).analyze("Quorum", src);
    assert!(
        !report.has_at_least(Severity::Error),
        "in-range rank must not be flagged:\n{}",
        report.render_human()
    );

    // Crash three nodes; the operand list shrinks to 2 < rank 4, so the
    // clamp must kick in instead of producing an unsatisfiable reduction.
    let mut resolved = resolve(&parse(src).unwrap(), &topo, &acks, NodeId(0)).unwrap();
    for dead in [4u16, 3, 2] {
        resolved = exclude_node(&resolved, NodeId(dead)).unwrap();
    }
    assert_eq!(resolved.expr.operands.len(), 2);
    assert!(resolved.expr.k as usize <= resolved.expr.operands.len());

    // Still evaluable, and KTH_MIN over survivors {n1, n2} with clamped
    // rank 2 selects the larger of the two remaining cells.
    let frontier = compile(&resolved).eval(&Uniform(100));
    assert_eq!(frontier, 101);
}

#[test]
fn static_out_of_range_rank_is_an_error_not_a_clamp() {
    // The same rank 4 on a 3-node topology cannot be blamed on a crash:
    // it can never be satisfied as written, so analysis rejects it rather
    // than silently clamping.
    let topo = topo(3);
    let acks = AckTypeRegistry::new();
    let report = Analyzer::new(&topo, &acks, NodeId(0)).analyze("Quorum", "KTH_MIN(4, $ALLWNODES)");
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.lint == Lint::RankOutOfRange)
        .unwrap_or_else(|| panic!("expected rank-out-of-range:\n{}", report.render_human()));
    assert_eq!(diag.lint.severity(), Severity::Error);
    // The span anchors on the rank argument, not the whole call.
    assert_eq!(
        &"KTH_MIN(4, $ALLWNODES)"[diag.span.start..diag.span.end],
        "4"
    );
}
