//! A tiny dependency-free pull endpoint: one blocking listener thread
//! serving the live telemetry of a running node over HTTP/1.1.
//!
//! This is deliberately not a web framework — it parses exactly one
//! request line, serves four fixed routes, and closes the connection:
//!
//! - `/metrics` — Prometheus text exposition (with OpenMetrics
//!   exemplars on the latency histograms)
//! - `/metrics.json` — the JSON snapshot ([`Telemetry::render_json`])
//! - `/trace?n=N` — the newest `N` trace-ring events as JSONL (whole
//!   ring without `?n=`)
//! - `/stall` — the frontier blame diagnosis from the optional stall
//!   provider (`404` when the host runtime didn't wire one)
//!
//! The accept loop polls a nonblocking listener a few hundred times a
//! second, so shutdown latency is bounded without any extra wakeup
//! machinery; scrape traffic is assumed to be humans and a Prometheus
//! scraper, not a load target.

use crate::stability::Telemetry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What one stall-diagnosis callback returns: the `/stall` body, ready
/// to serve. Runtimes wire a closure that locks the node(s) and renders
/// `explain_all()` as JSON.
pub type StallProvider = Arc<dyn Fn() -> String + Send + Sync>;

/// The data sources behind the four routes.
#[derive(Clone)]
pub struct ServerRoutes {
    /// The hub whose registry / trace ring is served.
    pub telemetry: Arc<Telemetry>,
    /// Optional `/stall` body provider; `None` serves 404 on `/stall`.
    pub stall: Option<StallProvider>,
}

impl ServerRoutes {
    /// Routes serving `telemetry` with no stall diagnoser.
    pub fn new(telemetry: Arc<Telemetry>) -> Self {
        ServerRoutes {
            telemetry,
            stall: None,
        }
    }

    /// Attach a `/stall` body provider.
    pub fn with_stall(mut self, stall: StallProvider) -> Self {
        self.stall = Some(stall);
        self
    }
}

/// The listener: a background thread accepting scrapes until dropped
/// or [`TelemetryServer::shutdown`].
pub struct TelemetryServer {
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer")
            .field("addr", &self.addr)
            .field("running", &self.running.load(Ordering::Relaxed))
            .finish()
    }
}

impl TelemetryServer {
    /// Bind `addr` (e.g. `127.0.0.1:9464`, port 0 for ephemeral) and
    /// start serving `routes` on a background thread.
    pub fn bind(addr: &str, routes: ServerRoutes) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let flag = Arc::clone(&running);
        let handle = std::thread::Builder::new()
            .name(format!("stab-http-{}", local.port()))
            .spawn(move || accept_loop(listener, routes, flag))?;
        Ok(TelemetryServer {
            addr: local,
            running,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the listener thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, routes: ServerRoutes, running: Arc<AtomicBool>) {
    while running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: requests are tiny and responses are
                // bounded, so one slow client at a time is acceptable
                // for a diagnostics endpoint.
                let _ = serve_one(stream, &routes);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Read the request head (first line is all we use) with a bounded
/// buffer and timeout, then dispatch.
fn serve_one(mut stream: TcpStream, routes: &ServerRoutes) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.set_nonblocking(false)?;
    let mut buf = [0u8; 4096];
    let mut filled = 0usize;
    // Read until the end of the request head or the buffer is full —
    // GET requests fit comfortably; anything longer is malformed.
    loop {
        let n = stream.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
        if buf[..filled].windows(4).any(|w| w == b"\r\n\r\n") || filled == buf.len() {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..filled]);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/metrics" => {
            let body = routes.telemetry.render_prometheus();
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/metrics.json" => {
            let body = routes.telemetry.render_json();
            respond(&mut stream, 200, "application/json", &body)
        }
        "/trace" => {
            let trace = routes.telemetry.trace();
            let body = match query.and_then(parse_n) {
                Some(n) => trace.to_jsonl_tail(n),
                None => trace.to_jsonl(),
            };
            respond(&mut stream, 200, "application/jsonl", &body)
        }
        "/stall" => match &routes.stall {
            Some(provider) => {
                let body = provider();
                respond(&mut stream, 200, "application/json", &body)
            }
            None => respond(&mut stream, 404, "text/plain", "no stall diagnoser wired\n"),
        },
        _ => respond(&mut stream, 404, "text/plain", "unknown route\n"),
    }
}

/// `n=<usize>` out of a query string.
fn parse_n(query: &str) -> Option<usize> {
    query
        .split('&')
        .find_map(|kv| kv.strip_prefix("n="))
        .and_then(|v| v.parse().ok())
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Blocking one-shot GET against a served route; returns
/// `(status, body)`. Shared by `stabtop`, the chaos smoke tests and the
/// unit tests below — it speaks exactly the dialect [`TelemetryServer`]
/// serves (HTTP/1.0-style connection-close framing).
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = match text.find("\r\n\r\n") {
        Some(i) => text[i + 4..].to_owned(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;
    use stabilizer_dsl::NodeId;

    fn served() -> (TelemetryServer, Arc<Telemetry>) {
        let t = Telemetry::new_sim();
        t.note_publish(1_000, NodeId(0), 1, 64);
        let mut obs = t.observer(NodeId(0));
        stabilizer_core::RuntimeObserver::on_deliver(
            &mut obs,
            5_000,
            NodeId(0),
            1,
            &bytes::Bytes::from_static(b"x"),
        );
        let server = TelemetryServer::bind("127.0.0.1:0", ServerRoutes::new(Arc::clone(&t)))
            .expect("bind ephemeral");
        (server, t)
    }

    #[test]
    fn serves_metrics_and_json_and_trace() {
        let (server, t) = served();
        let addr = server.local_addr().to_string();

        let (status, body) = http_get(&addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE stab_build_info gauge"));
        assert!(body.contains("stab_deliveries_total{node=\"0\"} 1"));

        let (status, body) = http_get(&addr, "/metrics.json").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, t.render_json());
        parse_json(&body).expect("valid json");

        let (status, body) = http_get(&addr, "/trace").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, t.trace().to_jsonl());

        let (status, body) = http_get(&addr, "/trace?n=1").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"event\":\"deliver\""));
    }

    #[test]
    fn stall_route_uses_provider_or_404s() {
        let (mut server, t) = served();
        let addr = server.local_addr().to_string();
        let (status, _) = http_get(&addr, "/stall").unwrap();
        assert_eq!(status, 404);
        server.shutdown();

        let routes = ServerRoutes::new(t).with_stall(Arc::new(|| "{\"reports\":[]}".to_owned()));
        let server = TelemetryServer::bind("127.0.0.1:0", routes).unwrap();
        let addr = server.local_addr().to_string();
        let (status, body) = http_get(&addr, "/stall").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"reports\":[]}");
    }

    #[test]
    fn unknown_route_404s_and_post_is_rejected() {
        let (server, _t) = served();
        let addr = server.local_addr().to_string();
        let (status, _) = http_get(&addr, "/nope").unwrap();
        assert_eq!(status, 404);

        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"));
    }

    #[test]
    fn shutdown_is_idempotent_and_joins() {
        let (mut server, _t) = served();
        server.shutdown();
        server.shutdown();
    }
}
