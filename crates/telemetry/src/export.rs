//! Exporters: Prometheus text format and a machine-readable JSON
//! snapshot.
//!
//! Both render from a [`RegistrySnapshot`](crate::registry::RegistrySnapshot),
//! whose `BTreeMap`s fix the iteration order — identical recorded values
//! always render to identical bytes, which is what the sim replay
//! acceptance test pins. Histogram bucket bounds are integers
//! (nanoseconds), never floats, for the same reason.

use crate::histogram::HistogramSnapshot;
use crate::json::push_key;
use crate::registry::RegistrySnapshot;
use crate::stability::Telemetry;

/// Quantiles reported in the JSON export.
const QUANTILES: &[(&str, f64)] = &[("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

fn series_name(name: &str, labels: &str) -> String {
    if labels.is_empty() {
        name.to_owned()
    } else {
        format!("{name}{{{labels}}}")
    }
}

/// Render a snapshot in the Prometheus text exposition format.
pub fn render_prometheus_snapshot(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_type_hdr = String::new();
    let mut type_header = |out: &mut String, name: &str, kind: &str| {
        if last_type_hdr != name {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            last_type_hdr = name.to_owned();
        }
    };
    for ((name, labels), v) in &snap.counters {
        type_header(&mut out, name, "counter");
        out.push_str(&series_name(name, labels));
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    for ((name, labels), v) in &snap.gauges {
        type_header(&mut out, name, "gauge");
        out.push_str(&series_name(name, labels));
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    for ((name, labels), h) in &snap.histograms {
        type_header(&mut out, name, "histogram");
        // Cumulative buckets over the non-empty slots plus +Inf; bounds
        // are integer nanoseconds so the text is bit-stable.
        let mut cumulative = 0u64;
        for (upper, count) in h.nonzero_buckets() {
            cumulative += count;
            let le = format!("le=\"{upper}\"");
            let labels = if labels.is_empty() {
                le
            } else {
                format!("{labels},{le}")
            };
            out.push_str(&format!("{name}_bucket{{{labels}}} {cumulative}\n"));
        }
        let inf = if labels.is_empty() {
            "le=\"+Inf\"".to_owned()
        } else {
            format!("{labels},le=\"+Inf\"")
        };
        out.push_str(&format!("{name}_bucket{{{inf}}} {}\n", h.count));
        out.push_str(&series_name(&format!("{name}_sum"), labels));
        out.push_str(&format!(" {}\n", h.sum));
        out.push_str(&series_name(&format!("{name}_count"), labels));
        out.push_str(&format!(" {}\n", h.count));
    }
    out
}

fn push_histogram_json(out: &mut String, h: &HistogramSnapshot) {
    out.push_str(&format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}",
        h.count,
        h.sum,
        h.min,
        h.max,
        h.mean()
    ));
    for (label, q) in QUANTILES {
        out.push_str(&format!(",\"{label}\":{}", h.quantile(*q)));
    }
    out.push_str(",\"buckets\":[");
    for (i, (upper, count)) in h.nonzero_buckets().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{upper},{count}]"));
    }
    out.push_str("]}");
}

/// Render a snapshot as one JSON object:
/// `{"counters": {...}, "gauges": {...}, "histograms": {...}}` with
/// series keyed `name{labels}`. Histogram values carry count/sum/min/
/// max/mean, quantiles, and `[upper_bound, count]` bucket pairs.
pub fn render_json_snapshot(snap: &RegistrySnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, ((name, labels), v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_key(&mut out, &series_name(name, labels));
        out.push_str(&v.to_string());
    }
    out.push_str("},\"gauges\":{");
    for (i, ((name, labels), v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_key(&mut out, &series_name(name, labels));
        out.push_str(&v.to_string());
    }
    out.push_str("},\"histograms\":{");
    for (i, ((name, labels), h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_key(&mut out, &series_name(name, labels));
        push_histogram_json(&mut out, h);
    }
    out.push_str("}}");
    out
}

impl Telemetry {
    /// Prometheus text snapshot of every registered series.
    pub fn render_prometheus(&self) -> String {
        render_prometheus_snapshot(&self.registry().snapshot())
    }

    /// JSON snapshot of every registered series (see
    /// [`render_json_snapshot`]).
    pub fn render_json(&self) -> String {
        render_json_snapshot(&self.registry().snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("x_total", &[("node", "0")]).add(3);
        reg.counter("x_total", &[("node", "1")]).add(5);
        reg.gauge("depth", &[]).set(-2);
        let h = reg.histogram("lat_ns", &[("key", "All")]);
        h.record(100);
        h.record(100);
        h.record(5_000);
        reg
    }

    #[test]
    fn prometheus_text_shape() {
        let text = render_prometheus_snapshot(&sample_registry().snapshot());
        assert!(text.contains("# TYPE x_total counter\n"));
        assert!(text.contains("x_total{node=\"0\"} 3\n"));
        assert!(text.contains("x_total{node=\"1\"} 5\n"));
        assert!(text.contains("# TYPE depth gauge\ndepth -2\n"));
        assert!(text.contains("# TYPE lat_ns histogram\n"));
        assert!(text.contains("lat_ns_bucket{key=\"All\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_ns_sum{key=\"All\"} 5200\n"));
        assert!(text.contains("lat_ns_count{key=\"All\"} 3\n"));
        // One TYPE line per metric name even with multiple series.
        assert_eq!(text.matches("# TYPE x_total").count(), 1);
    }

    #[test]
    fn json_is_stable_and_parseable_shape() {
        let a = render_json_snapshot(&sample_registry().snapshot());
        let b = render_json_snapshot(&sample_registry().snapshot());
        assert_eq!(a, b, "identical values must render identically");
        assert!(a.starts_with("{\"counters\":{"));
        assert!(a.contains("\"x_total{node=\\\"0\\\"}\":3"));
        assert!(a.contains("\"depth\":-2"));
        assert!(a.contains("\"count\":3,\"sum\":5200"));
        assert!(a.ends_with("}}"));
    }

    #[test]
    fn empty_registry_renders_empty_objects() {
        let reg = MetricsRegistry::new();
        assert_eq!(
            render_json_snapshot(&reg.snapshot()),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
        assert_eq!(render_prometheus_snapshot(&reg.snapshot()), "");
    }
}
