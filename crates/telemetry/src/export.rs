//! Exporters: Prometheus text format and a machine-readable JSON
//! snapshot.
//!
//! Both render from a [`RegistrySnapshot`](crate::registry::RegistrySnapshot),
//! whose `BTreeMap`s fix the iteration order — identical recorded values
//! always render to identical bytes, which is what the sim replay
//! acceptance test pins. Histogram bucket bounds are integers
//! (nanoseconds), never floats, for the same reason.

use crate::exemplar::Exemplar;
use crate::histogram::HistogramSnapshot;
use crate::json::push_key;
use crate::registry::RegistrySnapshot;
use crate::stability::Telemetry;
use std::collections::BTreeMap;

/// Quantiles reported in the JSON export.
const QUANTILES: &[(&str, f64)] = &[("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

fn series_name(name: &str, labels: &str) -> String {
    if labels.is_empty() {
        name.to_owned()
    } else {
        format!("{name}{{{labels}}}")
    }
}

/// Escape `# HELP` text: backslash and newline per the exposition
/// format.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Render a snapshot in the Prometheus text exposition format.
pub fn render_prometheus_snapshot(snap: &RegistrySnapshot) -> String {
    render_prometheus_with_exemplars(snap, &BTreeMap::new())
}

/// The OpenMetrics exemplar suffix for one bucket line:
/// ` # {trace_id="<cursor>"} <latency>`.
fn exemplar_suffix(ex: &Exemplar) -> String {
    format!(" # {{trace_id=\"{}\"}} {}", ex.trace_cursor, ex.latency_ns)
}

/// [`render_prometheus_snapshot`] with OpenMetrics exemplars attached
/// to histogram buckets. `exemplars` is keyed like the snapshot's
/// histogram series — `(name, rendered labels)` — with each list in
/// latency-descending order; at most one exemplar (the worst) is
/// attached per bucket line.
pub fn render_prometheus_with_exemplars(
    snap: &RegistrySnapshot,
    exemplars: &BTreeMap<(String, String), Vec<Exemplar>>,
) -> String {
    let mut out = String::new();
    let mut last_type_hdr = String::new();
    let mut type_header = |out: &mut String, name: &str, kind: &str| {
        if last_type_hdr != name {
            if let Some(help) = snap.help.get(name) {
                out.push_str("# HELP ");
                out.push_str(name);
                out.push(' ');
                out.push_str(&escape_help(help));
                out.push('\n');
            }
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            last_type_hdr = name.to_owned();
        }
    };
    for ((name, labels), v) in &snap.counters {
        type_header(&mut out, name, "counter");
        out.push_str(&series_name(name, labels));
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    for ((name, labels), v) in &snap.gauges {
        type_header(&mut out, name, "gauge");
        out.push_str(&series_name(name, labels));
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    for ((name, labels), h) in &snap.histograms {
        type_header(&mut out, name, "histogram");
        let series_exemplars = exemplars
            .get(&(name.clone(), labels.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        // Cumulative buckets over the non-empty slots plus +Inf; bounds
        // are integer nanoseconds so the text is bit-stable.
        let mut cumulative = 0u64;
        let mut prev_upper = 0u64;
        for (upper, count) in h.nonzero_buckets() {
            cumulative += count;
            let le = format!("le=\"{upper}\"");
            let bucket_labels = if labels.is_empty() {
                le
            } else {
                format!("{labels},{le}")
            };
            out.push_str(&format!("{name}_bucket{{{bucket_labels}}} {cumulative}"));
            // Worst exemplar falling inside this bucket's range, if any
            // (the lists are latency-descending, so first match wins).
            if let Some(ex) = series_exemplars
                .iter()
                .find(|e| e.latency_ns > prev_upper && e.latency_ns <= upper)
            {
                out.push_str(&exemplar_suffix(ex));
            }
            out.push('\n');
            prev_upper = upper;
        }
        let inf = if labels.is_empty() {
            "le=\"+Inf\"".to_owned()
        } else {
            format!("{labels},le=\"+Inf\"")
        };
        out.push_str(&format!("{name}_bucket{{{inf}}} {}", h.count));
        if let Some(ex) = series_exemplars.iter().find(|e| e.latency_ns > prev_upper) {
            out.push_str(&exemplar_suffix(ex));
        }
        out.push('\n');
        out.push_str(&series_name(&format!("{name}_sum"), labels));
        out.push_str(&format!(" {}\n", h.sum));
        out.push_str(&series_name(&format!("{name}_count"), labels));
        out.push_str(&format!(" {}\n", h.count));
    }
    out
}

fn push_histogram_json(out: &mut String, h: &HistogramSnapshot) {
    out.push_str(&format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}",
        h.count,
        h.sum,
        h.min,
        h.max,
        h.mean()
    ));
    for (label, q) in QUANTILES {
        out.push_str(&format!(",\"{label}\":{}", h.quantile(*q)));
    }
    out.push_str(",\"buckets\":[");
    for (i, (upper, count)) in h.nonzero_buckets().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{upper},{count}]"));
    }
    out.push_str("]}");
}

/// Render a snapshot as one JSON object:
/// `{"counters": {...}, "gauges": {...}, "histograms": {...}}` with
/// series keyed `name{labels}`. Histogram values carry count/sum/min/
/// max/mean, quantiles, and `[upper_bound, count]` bucket pairs.
pub fn render_json_snapshot(snap: &RegistrySnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, ((name, labels), v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_key(&mut out, &series_name(name, labels));
        out.push_str(&v.to_string());
    }
    out.push_str("},\"gauges\":{");
    for (i, ((name, labels), v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_key(&mut out, &series_name(name, labels));
        out.push_str(&v.to_string());
    }
    out.push_str("},\"histograms\":{");
    for (i, ((name, labels), h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_key(&mut out, &series_name(name, labels));
        push_histogram_json(&mut out, h);
    }
    out.push_str("}}");
    out
}

impl Telemetry {
    /// Prometheus text snapshot of every registered series, with
    /// OpenMetrics exemplars on the latency histogram buckets.
    pub fn render_prometheus(&self) -> String {
        self.refresh_uptime();
        render_prometheus_with_exemplars(&self.registry().snapshot(), &self.exemplar_series())
    }

    /// JSON snapshot of every registered series (see
    /// [`render_json_snapshot`]) plus an `"exemplars"` section
    /// (see [`Telemetry::render_exemplars_json`]).
    pub fn render_json(&self) -> String {
        self.refresh_uptime();
        let mut out = render_json_snapshot(&self.registry().snapshot());
        debug_assert!(out.ends_with('}'));
        out.pop();
        out.push_str(",\"exemplars\":");
        out.push_str(&self.render_exemplars_json());
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("x_total", &[("node", "0")]).add(3);
        reg.counter("x_total", &[("node", "1")]).add(5);
        reg.gauge("depth", &[]).set(-2);
        let h = reg.histogram("lat_ns", &[("key", "All")]);
        h.record(100);
        h.record(100);
        h.record(5_000);
        reg
    }

    #[test]
    fn prometheus_text_shape() {
        let text = render_prometheus_snapshot(&sample_registry().snapshot());
        assert!(text.contains("# TYPE x_total counter\n"));
        assert!(text.contains("x_total{node=\"0\"} 3\n"));
        assert!(text.contains("x_total{node=\"1\"} 5\n"));
        assert!(text.contains("# TYPE depth gauge\ndepth -2\n"));
        assert!(text.contains("# TYPE lat_ns histogram\n"));
        assert!(text.contains("lat_ns_bucket{key=\"All\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_ns_sum{key=\"All\"} 5200\n"));
        assert!(text.contains("lat_ns_count{key=\"All\"} 3\n"));
        // One TYPE line per metric name even with multiple series.
        assert_eq!(text.matches("# TYPE x_total").count(), 1);
    }

    #[test]
    fn json_is_stable_and_parseable_shape() {
        let a = render_json_snapshot(&sample_registry().snapshot());
        let b = render_json_snapshot(&sample_registry().snapshot());
        assert_eq!(a, b, "identical values must render identically");
        assert!(a.starts_with("{\"counters\":{"));
        assert!(a.contains("\"x_total{node=\\\"0\\\"}\":3"));
        assert!(a.contains("\"depth\":-2"));
        assert!(a.contains("\"count\":3,\"sum\":5200"));
        assert!(a.ends_with("}}"));
    }

    #[test]
    fn prometheus_conformance_label_escaping_and_single_headers() {
        let reg = MetricsRegistry::new();
        reg.describe("odd_total", "A counter with hostile labels.");
        reg.counter("odd_total", &[("key", "a\\b\"c\nd")]).inc();
        reg.counter("odd_total", &[("key", "plain")]).add(2);
        reg.counter("odd_total", &[("key", "other")]).add(3);
        let text = render_prometheus_snapshot(&reg.snapshot());
        // Backslash, quote and newline escaped per the text format.
        assert!(text.contains("odd_total{key=\"a\\\\b\\\"c\\nd\"} 1\n"));
        // HELP and TYPE exactly once each despite three label sets.
        assert_eq!(
            text.matches("# HELP odd_total A counter with hostile labels.\n")
                .count(),
            1
        );
        assert_eq!(text.matches("# TYPE odd_total counter\n").count(), 1);
        // HELP precedes TYPE.
        assert!(text.find("# HELP odd_total").unwrap() < text.find("# TYPE odd_total").unwrap());
        // No raw (unescaped) newline inside any label value: every line
        // is either a comment or ends in a sample value.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.rsplit(' ').next().unwrap().parse::<i64>().is_ok(),
                "malformed line: {line:?}"
            );
        }
    }

    #[test]
    fn histogram_with_many_label_sets_has_one_type_header() {
        let reg = MetricsRegistry::new();
        for key in ["All", "Maj", "One"] {
            reg.histogram("lat_ns", &[("key", key)]).record(100);
        }
        let text = render_prometheus_snapshot(&reg.snapshot());
        assert_eq!(text.matches("# TYPE lat_ns histogram").count(), 1);
    }

    #[test]
    fn exemplars_attach_to_matching_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns", &[]);
        h.record(100);
        h.record(5_000);
        let mut exemplars = BTreeMap::new();
        exemplars.insert(
            ("lat_ns".to_owned(), String::new()),
            vec![
                Exemplar {
                    origin: stabilizer_dsl::NodeId(1),
                    seq: 9,
                    publish_nanos: 0,
                    stable_nanos: 5_000,
                    latency_ns: 5_000,
                    trace_cursor: 42,
                },
                Exemplar {
                    origin: stabilizer_dsl::NodeId(0),
                    seq: 3,
                    publish_nanos: 0,
                    stable_nanos: 100,
                    latency_ns: 100,
                    trace_cursor: 7,
                },
            ],
        );
        let text = render_prometheus_with_exemplars(&reg.snapshot(), &exemplars);
        assert!(
            text.contains("# {trace_id=\"42\"} 5000"),
            "missing worst exemplar: {text}"
        );
        assert!(
            text.contains("# {trace_id=\"7\"} 100"),
            "missing small exemplar: {text}"
        );
        // Without exemplars the same snapshot renders clean.
        let plain = render_prometheus_snapshot(&reg.snapshot());
        assert!(!plain.contains("trace_id"));
    }

    #[test]
    fn telemetry_renders_build_info_and_exemplar_section() {
        let t = crate::Telemetry::new_sim();
        let text = t.render_prometheus();
        assert!(text.contains("# TYPE stab_build_info gauge"));
        assert!(text.contains("stab_build_info{git_hash=\""));
        assert!(text.contains("shards=\"1\""));
        assert!(text.contains("stab_uptime_seconds 0\n"));
        let json = t.render_json();
        assert!(json.ends_with(",\"exemplars\":{\"deliver\":[],\"stability\":{}}}"));
        assert!(json.contains("\"stab_uptime_seconds\":0"));
    }

    #[test]
    fn empty_registry_renders_empty_objects() {
        let reg = MetricsRegistry::new();
        assert_eq!(
            render_json_snapshot(&reg.snapshot()),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
        assert_eq!(render_prometheus_snapshot(&reg.snapshot()), "");
    }
}
