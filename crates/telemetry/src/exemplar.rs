//! Histogram exemplars: a bounded reservoir of the worst-latency
//! samples seen by a histogram, each carrying enough identity (origin,
//! seq, publish/stable stamps, trace-ring cursor) to join the outlier
//! back to the structured trace.
//!
//! The reservoir is deterministic: it keeps the top-`capacity` samples
//! by latency, replacing the current minimum only when a new sample is
//! *strictly* larger, and export order is a pure function of the
//! contents — so a sim seed replay produces byte-identical exemplar
//! JSON.

use crate::json::push_key;
use stabilizer_dsl::{NodeId, SeqNo};

/// One outlier sample: which payload it was, when it was published and
/// when it became stable/delivered, and where in the trace ring the
/// completing event landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Stream the payload originated on.
    pub origin: NodeId,
    /// Its sequence number.
    pub seq: SeqNo,
    /// Publish stamp (virtual or epoch-relative nanoseconds).
    pub publish_nanos: u64,
    /// Stamp of the completing event (delivery or frontier coverage).
    pub stable_nanos: u64,
    /// `stable_nanos - publish_nanos`.
    pub latency_ns: u64,
    /// Absolute trace-ring cursor of the completing event, usable as an
    /// OpenMetrics `trace_id` to find the event in a `/trace` tail.
    pub trace_cursor: u64,
}

impl Exemplar {
    /// Render as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"origin\":{},\"seq\":{},\"publish_ns\":{},\"stable_ns\":{},\
             \"latency_ns\":{},\"trace_cursor\":{}}}",
            self.origin.0,
            self.seq,
            self.publish_nanos,
            self.stable_nanos,
            self.latency_ns,
            self.trace_cursor
        )
    }
}

/// Default reservoir capacity per histogram.
pub const DEFAULT_EXEMPLAR_CAPACITY: usize = 8;

/// Keeps the `capacity` largest-latency exemplars offered to it.
/// On a tie with the current minimum the incumbent wins, which makes
/// the contents independent of anything but the offered sequence.
#[derive(Debug, Clone)]
pub struct ExemplarReservoir {
    slots: Vec<Exemplar>,
    capacity: usize,
}

impl Default for ExemplarReservoir {
    fn default() -> Self {
        Self::new(DEFAULT_EXEMPLAR_CAPACITY)
    }
}

impl ExemplarReservoir {
    /// A reservoir holding at most `capacity` exemplars.
    pub fn new(capacity: usize) -> Self {
        ExemplarReservoir {
            slots: Vec::with_capacity(capacity.min(64)),
            capacity,
        }
    }

    /// Offer a sample; it is kept iff the reservoir has room or the
    /// sample's latency strictly exceeds the current minimum.
    pub fn offer(&mut self, ex: Exemplar) {
        if self.capacity == 0 {
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.push(ex);
            return;
        }
        let (min_idx, min_lat) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.latency_ns)
            .map(|(i, e)| (i, e.latency_ns))
            .expect("capacity > 0");
        if ex.latency_ns > min_lat {
            self.slots[min_idx] = ex;
        }
    }

    /// Number of retained exemplars.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the reservoir is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The retained exemplars in export order: latency descending, ties
    /// broken by (origin, seq) ascending — a pure function of the
    /// contents, never of insertion order.
    pub fn sorted(&self) -> Vec<Exemplar> {
        let mut out = self.slots.clone();
        out.sort_by(|a, b| {
            b.latency_ns
                .cmp(&a.latency_ns)
                .then(a.origin.0.cmp(&b.origin.0))
                .then(a.seq.cmp(&b.seq))
        });
        out
    }

    /// Render the reservoir as a JSON array in export order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, ex) in self.sorted().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&ex.to_json());
        }
        out.push(']');
        out
    }
}

/// Render the full exemplar section for the JSON export:
/// `{"deliver":[...],"stability":{"<key>":[...]}}`.
pub(crate) fn render_exemplars_json(
    deliver: &ExemplarReservoir,
    stability: &std::collections::BTreeMap<String, ExemplarReservoir>,
) -> String {
    let mut out = String::from("{\"deliver\":");
    out.push_str(&deliver.to_json());
    out.push_str(",\"stability\":{");
    for (i, (key, res)) in stability.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_key(&mut out, key);
        out.push_str(&res.to_json());
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(seq: SeqNo, lat: u64) -> Exemplar {
        Exemplar {
            origin: NodeId(0),
            seq,
            publish_nanos: 10,
            stable_nanos: 10 + lat,
            latency_ns: lat,
            trace_cursor: seq,
        }
    }

    #[test]
    fn keeps_top_k_by_latency() {
        let mut r = ExemplarReservoir::new(2);
        r.offer(ex(1, 100));
        r.offer(ex(2, 50));
        r.offer(ex(3, 200)); // evicts the 50
        r.offer(ex(4, 10)); // too small, dropped
        let lats: Vec<u64> = r.sorted().iter().map(|e| e.latency_ns).collect();
        assert_eq!(lats, [200, 100]);
    }

    #[test]
    fn tie_keeps_incumbent() {
        let mut r = ExemplarReservoir::new(1);
        r.offer(ex(1, 100));
        r.offer(ex(2, 100)); // equal latency: incumbent wins
        assert_eq!(r.sorted()[0].seq, 1);
    }

    #[test]
    fn json_shape() {
        let mut r = ExemplarReservoir::new(4);
        r.offer(ex(1, 100));
        assert_eq!(
            r.to_json(),
            "[{\"origin\":0,\"seq\":1,\"publish_ns\":10,\"stable_ns\":110,\
             \"latency_ns\":100,\"trace_cursor\":1}]"
        );
        assert_eq!(ExemplarReservoir::new(4).to_json(), "[]");
    }
}
