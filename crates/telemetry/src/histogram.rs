//! Fixed-bucket log-scale histograms with atomic recording.
//!
//! The record path is a handful of relaxed atomic operations — no
//! allocation, no locking — because observers run **under the node
//! lock** (see `stabilizer_core::observe`): anything slower would
//! serialize the runtime threads behind the metrics layer.
//!
//! Buckets are log-linear ("HDR-lite"): values 0–3 are exact, and every
//! power-of-two range above that is split into four sub-buckets, so the
//! relative quantization error is bounded by 25% while the whole `u64`
//! range fits in [`NUM_BUCKETS`] fixed slots. Stability latencies span
//! six orders of magnitude (micros on a LAN pair to seconds under WAN
//! faults), which is exactly the regime where log-scale buckets beat
//! linear ones.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of fixed buckets: 4 exact + 62 octaves × 4 sub-buckets.
pub const NUM_BUCKETS: usize = 252;

/// Bucket index for a value (total function over `u64`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // floor(log2 v), >= 2
        (exp - 1) * 4 + ((v >> (exp - 2)) & 3) as usize
    }
}

/// Inclusive lower bound of bucket `i`.
#[inline]
pub fn bucket_lower(i: usize) -> u64 {
    if i < 4 {
        i as u64
    } else {
        let exp = i / 4 + 1;
        let frac = (i % 4) as u64;
        (1u64 << exp) + (frac << (exp - 2))
    }
}

/// Inclusive upper bound of bucket `i`.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(i + 1) - 1
    }
}

/// A log-scale histogram of `u64` samples (latencies in nanoseconds,
/// sizes in bytes, queue depths — anything non-negative).
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: Box::new([const { AtomicU64::new(0) }; NUM_BUCKETS]),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample: five relaxed atomic RMWs, nothing else.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for quantile math and export.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`LogHistogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (length [`NUM_BUCKETS`]).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Quantile estimate: the upper bound of the bucket containing the
    /// `q`-th sample, clamped to the observed max. `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, in order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        // Every bucket's lower bound is one past the previous upper
        // bound, starting at 0 and ending at u64::MAX.
        assert_eq!(bucket_lower(0), 0);
        for i in 1..NUM_BUCKETS {
            assert_eq!(
                bucket_lower(i),
                bucket_upper(i - 1) + 1,
                "gap or overlap at bucket {i}"
            );
        }
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn values_land_in_their_own_bucket() {
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 100, 1_000_000, u64::MAX] {
            let i = bucket_index(v);
            assert!(
                bucket_lower(i) <= v && v <= bucket_upper(i),
                "{v} outside bucket {i} [{}, {}]",
                bucket_lower(i),
                bucket_upper(i)
            );
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // For v >= 4, the bucket width is at most a quarter of its lower
        // bound: quantization error <= 25%.
        for v in [4u64, 1000, 12_345, 1 << 40] {
            let i = bucket_index(v);
            let width = bucket_upper(i) - bucket_lower(i) + 1;
            assert!(width * 4 <= bucket_lower(i).max(4), "bucket {i} too wide");
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.mean(), 500);
        let p50 = s.quantile(0.5);
        // Within one bucket (25%) of the exact median.
        assert!((375..=625).contains(&p50), "p50 = {p50}");
        assert_eq!(s.quantile(1.0), 1000);
        assert!(s.quantile(0.0) >= 1);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = LogHistogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max, s.mean()), (0, 0, 0, 0, 0));
        assert_eq!(s.quantile(0.99), 0);
        assert!(s.nonzero_buckets().is_empty());
    }
}
