//! # stabilizer-telemetry
//!
//! Dependency-light metrics and tracing for the Stabilizer
//! reproduction: the observation substrate for the paper's evaluation
//! quantities — stability latency (publish→frontier-covered, Figs 7–8),
//! delivery latency, throughput, and per-node control-plane progress —
//! on **both** runtimes (deterministic netsim and threaded TCP).
//!
//! Pieces:
//!
//! - [`MetricsRegistry`]: named counters / gauges / histograms with
//!   Prometheus-style labels. Handles are `Arc`-backed atomics: the
//!   record path never allocates or locks the registry, because
//!   observers run under the node's state-machine lock.
//! - [`LogHistogram`]: fixed-bucket log-scale histogram (252 buckets,
//!   ≤ 25% quantization error over the whole `u64` range).
//! - [`Telemetry`]: the per-cluster hub — publish-time stamp table,
//!   per-predicate stability-latency histograms, trace ring, exporters
//!   ([`Telemetry::render_prometheus`], [`Telemetry::render_json`]).
//! - [`MetricsObserver`]: per-node observer implementing both
//!   [`RuntimeObserver`](stabilizer_core::RuntimeObserver) (TCP) and
//!   [`AppHooks`](stabilizer_core::sim_driver::AppHooks) (sim), feeding
//!   one shared [`Telemetry`].
//! - [`TraceRing`]: bounded ring of typed [`TraceEvent`]s with JSONL
//!   export — deterministic virtual timestamps in sim, monotonic
//!   nanoseconds since a shared epoch on TCP.
//!
//! Determinism contract: with identical recorded values, every export
//! is byte-identical — all iteration happens over `BTreeMap`s and all
//! numbers are integers. A netsim run therefore exports the same bytes
//! on every replay of the same seed; the chaos acceptance test pins
//! this.

#![warn(missing_docs)]

mod exemplar;
mod export;
mod histogram;
mod json;
mod registry;
mod server;
mod stability;
mod trace;

pub use exemplar::{Exemplar, ExemplarReservoir, DEFAULT_EXEMPLAR_CAPACITY};
pub use export::{
    render_json_snapshot, render_prometheus_snapshot, render_prometheus_with_exemplars,
};
pub use histogram::{
    bucket_index, bucket_lower, bucket_upper, HistogramSnapshot, LogHistogram, NUM_BUCKETS,
};
pub use json::{parse_json, JsonValue};
pub use registry::{
    register_build_info, Counter, Gauge, MetricsRegistry, RegistrySnapshot, GIT_HASH,
};
pub use server::{http_get, ServerRoutes, StallProvider, TelemetryServer};
pub use stability::{MetricsObserver, Telemetry};
pub use trace::{TraceEvent, TraceKind, TraceRing, DEFAULT_TRACE_CAPACITY};
