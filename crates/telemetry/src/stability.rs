//! The cluster-wide telemetry hub and the observer that feeds it.
//!
//! [`Telemetry`] owns the metrics registry, the trace ring, the
//! publish-time stamp table and the per-predicate stability-latency
//! histograms. The data plane calls [`Telemetry::note_publish`] when a
//! payload is published; [`MetricsObserver`]s — one per node, attached
//! as a [`RuntimeObserver`] on the TCP runtime or as
//! [`AppHooks`](stabilizer_core::sim_driver::AppHooks) in the simulator
//! — record publish→deliver and publish→frontier-covered latencies from
//! the upcalls, reproducing the paper's headline stability-latency
//! metric (Figs 7–8) on both runtimes.
//!
//! ## Clocks
//!
//! In the simulator every timestamp is virtual [`SimTime`] nanoseconds,
//! passed straight through — two replays of the same seed produce
//! byte-identical exports. On the TCP runtime each node's
//! `RuntimeObserver` timestamps are relative to that node's own start
//! instant, so they do not share an epoch with publish stamps taken on
//! another node. A wall-clock `Telemetry` therefore carries one shared
//! [`Instant`] epoch and re-timestamps every event against it.

use crate::exemplar::{render_exemplars_json, Exemplar, ExemplarReservoir};
use crate::histogram::{HistogramSnapshot, LogHistogram};
use crate::registry::{register_build_info, Counter, Gauge, MetricsRegistry};
use crate::trace::{TraceEvent, TraceKind, TraceRing, DEFAULT_TRACE_CAPACITY};
use bytes::Bytes;
use parking_lot::Mutex;
use stabilizer_core::{FrontierUpdate, RuntimeObserver, WaitToken};
use stabilizer_dsl::{NodeId, SeqNo};
use stabilizer_netsim::SimTime;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Per-origin publish counters, created on first publish from a stream.
#[derive(Debug, Clone)]
struct PubCounters {
    publishes: Counter,
    published_bytes: Counter,
}

#[derive(Debug, Default)]
struct StampState {
    /// `stamps[origin][seq-1]` = publish time + 1 (0 = never stamped).
    stamps: Vec<Vec<u64>>,
    per_origin: Vec<Option<PubCounters>>,
    /// Per predicate key: per-stream highest frontier already folded
    /// into the stability histogram (max-merged, so a generation bump
    /// that moves a frontier backwards never double-counts).
    covered: BTreeMap<String, Vec<SeqNo>>,
    /// Per predicate key: the stability-latency histogram (also
    /// registered in the registry for export).
    stability: BTreeMap<String, Arc<LogHistogram>>,
    /// Worst publish→deliver outliers, joined to the trace ring.
    deliver_exemplars: ExemplarReservoir,
    /// Per predicate key: worst publish→stable outliers.
    stability_exemplars: BTreeMap<String, ExemplarReservoir>,
}

/// The telemetry hub for one cluster (or one node under test). Shared
/// via `Arc` between the workload driver (publish stamps) and every
/// node's [`MetricsObserver`].
pub struct Telemetry {
    registry: MetricsRegistry,
    trace: TraceRing,
    /// `Some` on the TCP runtime: the single epoch all events are
    /// re-timestamped against. `None` in the simulator.
    wall_epoch: Option<Instant>,
    deliver_latency: Arc<LogHistogram>,
    uptime: Gauge,
    state: Mutex<StampState>,
}

impl Telemetry {
    fn build(wall_epoch: Option<Instant>, trace_capacity: usize, shards: usize) -> Arc<Self> {
        let registry = MetricsRegistry::new();
        registry.describe(
            "stab_deliver_latency_ns",
            "Publish-to-deliver latency in nanoseconds.",
        );
        registry.describe(
            "stab_stability_latency_ns",
            "Publish-to-stability-frontier latency per predicate key.",
        );
        let deliver_latency = registry.histogram("stab_deliver_latency_ns", &[]);
        let uptime = register_build_info(&registry, shards);
        Arc::new(Telemetry {
            registry,
            trace: TraceRing::new(trace_capacity),
            wall_epoch,
            deliver_latency,
            uptime,
            state: Mutex::new(StampState::default()),
        })
    }

    /// Telemetry for a simulated run: timestamps are taken verbatim from
    /// the upcalls (virtual time), so exports replay byte-identically.
    pub fn new_sim() -> Arc<Self> {
        Self::build(None, DEFAULT_TRACE_CAPACITY, 1)
    }

    /// Like [`Telemetry::new_sim`] with a custom trace-ring capacity
    /// (0 disables tracing).
    pub fn new_sim_with_trace(trace_capacity: usize) -> Arc<Self> {
        Self::build(None, trace_capacity, 1)
    }

    /// Telemetry for a TCP run: captures a wall-clock epoch now; every
    /// event is timestamped as monotonic nanoseconds since it.
    pub fn new_wall_clock() -> Arc<Self> {
        Self::build(Some(Instant::now()), DEFAULT_TRACE_CAPACITY, 1)
    }

    /// Like [`Telemetry::new_wall_clock`] for an engine running `shards`
    /// shards behind one hub; the count lands in `stab_build_info`.
    pub fn new_wall_clock_sharded(shards: usize) -> Arc<Self> {
        Self::build(Some(Instant::now()), DEFAULT_TRACE_CAPACITY, shards)
    }

    /// Refresh the `stab_uptime_seconds` gauge against the wall epoch.
    /// A no-op in sim mode, where uptime stays 0 so exports replay
    /// byte-identically. Called by the renderers before each snapshot.
    pub(crate) fn refresh_uptime(&self) {
        if let Some(epoch) = self.wall_epoch {
            self.uptime.set(epoch.elapsed().as_secs() as i64);
        }
    }

    /// The underlying registry, for registering extra series (the
    /// transport's frame/byte/reconnect counters live here).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The trace ring.
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Nanoseconds since the wall-clock epoch (0 in sim mode).
    pub fn now_nanos(&self) -> u64 {
        match self.wall_epoch {
            Some(epoch) => epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// The event timestamp to record: in wall-clock mode the shared
    /// epoch overrides whatever per-node clock the runtime passed.
    #[inline]
    fn event_now(&self, passed: u64) -> u64 {
        match self.wall_epoch {
            Some(epoch) => epoch.elapsed().as_nanos() as u64,
            None => passed,
        }
    }

    /// Stamp a publish: `(origin, seq)` was published at `now_nanos`
    /// with a `len`-byte payload. Call at publish time — sim harnesses
    /// pass virtual time; TCP callers use [`Telemetry::note_publish_now`].
    pub fn note_publish(&self, now_nanos: u64, origin: NodeId, seq: SeqNo, len: usize) {
        let idx = origin.0 as usize;
        {
            let mut state = self.state.lock();
            if state.stamps.len() <= idx {
                state.stamps.resize(idx + 1, Vec::new());
                state.per_origin.resize(idx + 1, None);
            }
            let stamps = &mut state.stamps[idx];
            let slot = (seq as usize).saturating_sub(1);
            if stamps.len() <= slot {
                stamps.resize(slot + 1, 0);
            }
            if stamps[slot] == 0 {
                stamps[slot] = now_nanos + 1;
            }
            let counters = state.per_origin[idx].get_or_insert_with(|| {
                let node = origin.0.to_string();
                PubCounters {
                    publishes: self
                        .registry
                        .counter("stab_publishes_total", &[("node", &node)]),
                    published_bytes: self
                        .registry
                        .counter("stab_published_bytes_total", &[("node", &node)]),
                }
            });
            counters.publishes.inc();
            counters.published_bytes.add(len as u64);
        }
        self.trace.push(TraceEvent {
            at_nanos: now_nanos,
            node: origin,
            kind: TraceKind::Publish { seq, len },
        });
    }

    /// [`Telemetry::note_publish`] timestamped against the wall-clock
    /// epoch (TCP runs).
    pub fn note_publish_now(&self, origin: NodeId, seq: SeqNo, len: usize) {
        self.note_publish(self.now_nanos(), origin, seq, len);
    }

    /// Build the observer for `node`. Attach it to the TCP runtime as a
    /// [`RuntimeObserver`] or drive it from sim hooks; either way it
    /// feeds this hub.
    pub fn observer(self: &Arc<Self>, node: NodeId) -> MetricsObserver {
        let id = node.0.to_string();
        let labels: &[(&str, &str)] = &[("node", &id)];
        MetricsObserver {
            node,
            hub: Arc::clone(self),
            deliveries: self.registry.counter("stab_deliveries_total", labels),
            delivered_bytes: self.registry.counter("stab_delivered_bytes_total", labels),
            frontier_advances: self
                .registry
                .counter("stab_frontier_advances_total", labels),
            wait_done: self.registry.counter("stab_wait_done_total", labels),
            suspicions: self.registry.counter("stab_suspicions_total", labels),
            recoveries: self.registry.counter("stab_recoveries_total", labels),
            catch_ups: self.registry.counter("stab_catch_ups_total", labels),
            catchup_lag: self.registry.gauge("stab_catchup_lag_seq", labels),
            connect_failures: self.registry.counter("stab_connect_failures_total", labels),
            transfer_chunks: self
                .registry
                .counter("stab_transfer_chunks_sent_total", labels),
            joins: self.registry.counter("stab_joins_total", labels),
        }
    }

    /// Register the placement-identity series: one
    /// `stab_stream_replicas{stream=...,replicas=...}` gauge per stream
    /// carrying the replica-set size (the membership itself rides in
    /// the `replicas` label), plus a `stab_placement_info` gauge pinned
    /// to 1 whose labels — `stab_build_info`-style — carry the
    /// deterministic placement hash, so dashboards can tell at a glance
    /// which placement a node runs and whether two nodes disagree.
    pub fn record_placement(&self, placement: &stabilizer_core::PlacementMap) {
        self.registry.describe(
            "stab_placement_info",
            "Placement identity; value is always 1.",
        );
        self.registry
            .gauge(
                "stab_placement_info",
                &[
                    (
                        "placement_hash",
                        &format!("{:016x}", placement.placement_hash()),
                    ),
                    (
                        "partial",
                        if placement.is_full_replication() {
                            "false"
                        } else {
                            "true"
                        },
                    ),
                ],
            )
            .set(1);
        self.registry.describe(
            "stab_stream_replicas",
            "Replica-set size per stream; the set itself is the `replicas` label.",
        );
        for s in 0..placement.num_nodes() {
            let stream = NodeId(s as u16);
            let members = placement
                .replicas(stream)
                .iter()
                .map(|n| n.0.to_string())
                .collect::<Vec<_>>()
                .join(",");
            self.registry
                .gauge(
                    "stab_stream_replicas",
                    &[("stream", &s.to_string()), ("replicas", &members)],
                )
                .set(placement.replicas(stream).len() as i64);
        }
    }

    /// Record the availability prover's exact crash tolerance `f*` for
    /// one installed predicate key, as computed at install time. `-1`
    /// means the predicate is blocked even with zero crashes; runtimes
    /// that install the same key on several nodes record the minimum
    /// across vantages (the weakest vantage bounds the deployment).
    pub fn record_predicate_tolerance(&self, key: &str, tolerance: i64) {
        self.registry.describe(
            "stab_predicate_tolerance",
            "Exact crash tolerance f* per predicate key (min across vantages).",
        );
        self.registry
            .gauge("stab_predicate_tolerance", &[("key", key)])
            .set(tolerance);
    }

    /// Mirror a node's control-plane counters
    /// ([`stabilizer_core::Metrics`]) into gauges. Runtimes call this
    /// periodically (TCP ticker) or at end of run (sim harness); the
    /// values are absolute, so re-recording is idempotent.
    pub fn record_node_metrics(&self, node: NodeId, m: &stabilizer_core::Metrics) {
        let id = node.0.to_string();
        let labels: &[(&str, &str)] = &[("node", &id)];
        let pairs: &[(&str, u64)] = &[
            ("stab_node_data_msgs_sent", m.data_msgs_sent),
            ("stab_node_data_bytes_sent", m.data_bytes_sent),
            ("stab_node_control_msgs_sent", m.control_msgs_sent),
            ("stab_node_acks_sent", m.acks_sent),
            ("stab_node_deliveries", m.deliveries),
            ("stab_node_acks_received", m.acks_received),
            ("stab_node_acks_stale", m.acks_stale),
            ("stab_node_retransmits", m.retransmits),
            ("stab_node_predicate_evals", m.predicate_evals),
            ("stab_node_frontier_updates", m.frontier_updates),
            ("stab_node_transfer_requests", m.transfer_requests),
            ("stab_node_transfer_chunks_sent", m.transfer_chunks_sent),
            ("stab_node_transfer_bytes_sent", m.transfer_bytes_sent),
            (
                "stab_node_transfer_chunks_received",
                m.transfer_chunks_received,
            ),
            ("stab_node_transfer_fast_forwards", m.transfer_fast_forwards),
        ];
        for (name, v) in pairs {
            self.registry.gauge(name, labels).set(*v as i64);
        }
    }

    /// Snapshot of the publish→deliver latency histogram.
    pub fn deliver_latency(&self) -> HistogramSnapshot {
        self.deliver_latency.snapshot()
    }

    /// Snapshot of the publish→frontier-covered latency histogram for a
    /// predicate key, if any latency was recorded for it.
    pub fn stability_latency(&self, key: &str) -> Option<HistogramSnapshot> {
        self.state.lock().stability.get(key).map(|h| h.snapshot())
    }

    /// Record a delivery upcall (shared by both observer impls).
    fn deliver(&self, ev_now: u64, obs_node: NodeId, origin: NodeId, seq: SeqNo, len: usize) {
        let cursor = self.trace.push(TraceEvent {
            at_nanos: ev_now,
            node: obs_node,
            kind: TraceKind::Deliver { origin, seq, len },
        });
        let mut state = self.state.lock();
        let stamp = state
            .stamps
            .get(origin.0 as usize)
            .and_then(|s| s.get((seq as usize).saturating_sub(1)))
            .copied()
            .unwrap_or(0);
        if stamp != 0 {
            let latency = ev_now.saturating_sub(stamp - 1);
            self.deliver_latency.record(latency);
            state.deliver_exemplars.offer(Exemplar {
                origin,
                seq,
                publish_nanos: stamp - 1,
                stable_nanos: ev_now,
                latency_ns: latency,
                trace_cursor: cursor,
            });
        }
    }

    /// Record a frontier upcall. Stability latency is folded in only at
    /// the origin (`obs_node == update.stream`): the paper's
    /// publish-to-stabilize latency is measured where the publish
    /// happened, and counting every mirror would multiply the samples
    /// by the cluster size.
    fn frontier(&self, ev_now: u64, obs_node: NodeId, update: &FrontierUpdate) {
        let cursor = self.trace.push(TraceEvent {
            at_nanos: ev_now,
            node: obs_node,
            kind: TraceKind::Frontier {
                stream: update.stream,
                key: update.key.clone(),
                seq: update.seq,
                generation: update.generation,
            },
        });
        if obs_node == update.stream {
            let mut state = self.state.lock();
            let hist = match state.stability.get(update.key.as_str()) {
                Some(h) => Arc::clone(h),
                None => {
                    let h = self
                        .registry
                        .histogram("stab_stability_latency_ns", &[("key", &update.key)]);
                    state.stability.insert(update.key.clone(), Arc::clone(&h));
                    h
                }
            };
            if !state.covered.contains_key(update.key.as_str()) {
                state.covered.insert(update.key.clone(), Vec::new());
            }
            if !state.stability_exemplars.contains_key(update.key.as_str()) {
                state
                    .stability_exemplars
                    .insert(update.key.clone(), ExemplarReservoir::default());
            }
            let idx = update.stream.0 as usize;
            // Split-borrow: cursor from `covered`, stamps from `stamps`,
            // reservoir from `stability_exemplars`.
            let StampState {
                covered,
                stamps,
                stability_exemplars,
                ..
            } = &mut *state;
            let reservoir = stability_exemplars
                .get_mut(update.key.as_str())
                .expect("just inserted");
            let cursors = covered.get_mut(update.key.as_str()).expect("just inserted");
            if cursors.len() <= idx {
                cursors.resize(idx + 1, 0);
            }
            let from = cursors[idx];
            if update.seq > from {
                if let Some(stream_stamps) = stamps.get(idx) {
                    for s in from + 1..=update.seq {
                        if let Some(&stamp) = stream_stamps.get((s as usize) - 1) {
                            if stamp != 0 {
                                let latency = ev_now.saturating_sub(stamp - 1);
                                hist.record(latency);
                                reservoir.offer(Exemplar {
                                    origin: update.stream,
                                    seq: s,
                                    publish_nanos: stamp - 1,
                                    stable_nanos: ev_now,
                                    latency_ns: latency,
                                    trace_cursor: cursor,
                                });
                            }
                        }
                    }
                }
                cursors[idx] = update.seq;
            }
        }
    }

    /// The exemplar section of the JSON export:
    /// `{"deliver":[...],"stability":{"<key>":[...]}}`. Deterministic
    /// under the sim clock — seed replay pins these bytes.
    pub fn render_exemplars_json(&self) -> String {
        let state = self.state.lock();
        render_exemplars_json(&state.deliver_exemplars, &state.stability_exemplars)
    }

    /// Exemplars keyed the way the Prometheus renderer keys histogram
    /// series — `(name, rendered labels)` — in export order.
    pub(crate) fn exemplar_series(&self) -> BTreeMap<(String, String), Vec<Exemplar>> {
        let state = self.state.lock();
        let mut out = BTreeMap::new();
        if !state.deliver_exemplars.is_empty() {
            out.insert(
                ("stab_deliver_latency_ns".to_owned(), String::new()),
                state.deliver_exemplars.sorted(),
            );
        }
        for (key, res) in &state.stability_exemplars {
            if !res.is_empty() {
                out.insert(
                    (
                        "stab_stability_latency_ns".to_owned(),
                        crate::registry::render_labels(&[("key", key)]),
                    ),
                    res.sorted(),
                );
            }
        }
        out
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("wall_clock", &self.wall_epoch.is_some())
            .field("registry", &self.registry)
            .field("trace_len", &self.trace.len())
            .finish()
    }
}

/// Per-node observer feeding a shared [`Telemetry`]. Implements both
/// runtime seams — [`RuntimeObserver`] for the TCP runtime and
/// [`AppHooks`](stabilizer_core::sim_driver::AppHooks) for the
/// simulator — so the same seeded workload produces the same histograms
/// on either.
pub struct MetricsObserver {
    node: NodeId,
    hub: Arc<Telemetry>,
    deliveries: Counter,
    delivered_bytes: Counter,
    frontier_advances: Counter,
    wait_done: Counter,
    suspicions: Counter,
    recoveries: Counter,
    catch_ups: Counter,
    /// Highest sequence jumped to by a §III-E fast-forward — how far the
    /// out-of-band transfer moved this node past normal delivery.
    catchup_lag: Gauge,
    connect_failures: Counter,
    transfer_chunks: Counter,
    joins: Counter,
}

impl MetricsObserver {
    /// The node this observer is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The hub this observer feeds.
    pub fn hub(&self) -> &Arc<Telemetry> {
        &self.hub
    }
}

impl RuntimeObserver for MetricsObserver {
    fn on_deliver(&mut self, now_nanos: u64, origin: NodeId, seq: SeqNo, payload: &Bytes) {
        let now = self.hub.event_now(now_nanos);
        self.deliveries.inc();
        self.delivered_bytes.add(payload.len() as u64);
        self.hub.deliver(now, self.node, origin, seq, payload.len());
    }

    fn on_frontier(&mut self, now_nanos: u64, update: &FrontierUpdate) {
        let now = self.hub.event_now(now_nanos);
        self.frontier_advances.inc();
        self.hub.frontier(now, self.node, update);
    }

    fn on_wait_done(&mut self, now_nanos: u64, token: WaitToken) {
        let now = self.hub.event_now(now_nanos);
        self.wait_done.inc();
        self.hub.trace.push(TraceEvent {
            at_nanos: now,
            node: self.node,
            kind: TraceKind::WaitDone { token },
        });
    }

    fn on_suspected(&mut self, now_nanos: u64, node: NodeId) {
        let now = self.hub.event_now(now_nanos);
        self.suspicions.inc();
        self.hub.trace.push(TraceEvent {
            at_nanos: now,
            node: self.node,
            kind: TraceKind::Suspected { peer: node },
        });
    }

    fn on_recovered(&mut self, now_nanos: u64, node: NodeId) {
        let now = self.hub.event_now(now_nanos);
        self.recoveries.inc();
        self.hub.trace.push(TraceEvent {
            at_nanos: now,
            node: self.node,
            kind: TraceKind::Recovered { peer: node },
        });
    }

    fn on_catch_up(&mut self, now_nanos: u64, stream: NodeId, seq: SeqNo) {
        let now = self.hub.event_now(now_nanos);
        self.catch_ups.inc();
        self.catchup_lag.set(seq as i64);
        self.hub.trace.push(TraceEvent {
            at_nanos: now,
            node: self.node,
            kind: TraceKind::CatchUp { stream, seq },
        });
    }

    fn on_connect_failed(&mut self, now_nanos: u64, peer: NodeId) {
        let now = self.hub.event_now(now_nanos);
        self.connect_failures.inc();
        self.hub.trace.push(TraceEvent {
            at_nanos: now,
            node: self.node,
            kind: TraceKind::ConnectFailed { peer },
        });
    }

    fn on_transfer_chunk(
        &mut self,
        now_nanos: u64,
        to: NodeId,
        stream: NodeId,
        seq: SeqNo,
        len: usize,
        done: bool,
    ) {
        let now = self.hub.event_now(now_nanos);
        self.transfer_chunks.inc();
        self.hub.trace.push(TraceEvent {
            at_nanos: now,
            node: self.node,
            kind: TraceKind::TransferChunk {
                to,
                stream,
                seq,
                len,
                done,
            },
        });
    }

    fn on_join(&mut self, now_nanos: u64, streams: usize) {
        let now = self.hub.event_now(now_nanos);
        self.joins.inc();
        self.hub.trace.push(TraceEvent {
            at_nanos: now,
            node: self.node,
            kind: TraceKind::Join { streams },
        });
    }
}

impl stabilizer_core::sim_driver::AppHooks for MetricsObserver {
    fn on_deliver(&mut self, now: SimTime, origin: NodeId, seq: SeqNo, payload: &Bytes) {
        RuntimeObserver::on_deliver(self, now.as_nanos(), origin, seq, payload);
    }

    fn on_frontier(&mut self, now: SimTime, update: &FrontierUpdate) {
        RuntimeObserver::on_frontier(self, now.as_nanos(), update);
    }

    fn on_wait_done(&mut self, now: SimTime, token: WaitToken) {
        RuntimeObserver::on_wait_done(self, now.as_nanos(), token);
    }

    fn on_suspected(&mut self, now: SimTime, node: NodeId) {
        RuntimeObserver::on_suspected(self, now.as_nanos(), node);
    }

    fn on_catch_up(&mut self, now: SimTime, stream: NodeId, seq: SeqNo) {
        RuntimeObserver::on_catch_up(self, now.as_nanos(), stream, seq);
    }

    fn on_transfer_chunk(
        &mut self,
        now: SimTime,
        to: NodeId,
        stream: NodeId,
        seq: SeqNo,
        len: usize,
        done: bool,
    ) {
        RuntimeObserver::on_transfer_chunk(self, now.as_nanos(), to, stream, seq, len, done);
    }

    fn on_join(&mut self, now: SimTime, streams: usize) {
        RuntimeObserver::on_join(self, now.as_nanos(), streams);
    }
}

impl std::fmt::Debug for MetricsObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsObserver")
            .field("node", &self.node)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(stream: u16, seq: SeqNo) -> FrontierUpdate {
        FrontierUpdate {
            stream: NodeId(stream),
            key: "All".to_owned(),
            seq,
            generation: 0,
        }
    }

    #[test]
    fn deliver_latency_from_publish_stamp() {
        let t = Telemetry::new_sim();
        t.note_publish(1_000, NodeId(0), 1, 64);
        let mut obs = t.observer(NodeId(1));
        RuntimeObserver::on_deliver(&mut obs, 5_000, NodeId(0), 1, &Bytes::from(vec![0u8; 64]));
        let snap = t.deliver_latency();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.min, 4_000);
        assert_eq!(
            t.registry()
                .counter("stab_deliveries_total", &[("node", "1")])
                .get(),
            1
        );
        assert_eq!(
            t.registry()
                .counter("stab_delivered_bytes_total", &[("node", "1")])
                .get(),
            64
        );
    }

    #[test]
    fn unstamped_delivery_counts_but_records_no_latency() {
        let t = Telemetry::new_sim();
        let mut obs = t.observer(NodeId(1));
        RuntimeObserver::on_deliver(&mut obs, 5_000, NodeId(0), 7, &Bytes::from_static(b"x"));
        assert_eq!(t.deliver_latency().count, 0);
        assert_eq!(
            t.registry()
                .counter("stab_deliveries_total", &[("node", "1")])
                .get(),
            1
        );
    }

    #[test]
    fn stability_latency_only_at_origin() {
        let t = Telemetry::new_sim();
        t.note_publish(1_000, NodeId(0), 1, 8);
        t.note_publish(2_000, NodeId(0), 2, 8);
        let mut origin_obs = t.observer(NodeId(0));
        let mut mirror_obs = t.observer(NodeId(1));
        // Mirror sees the frontier first: must not record stability.
        RuntimeObserver::on_frontier(&mut mirror_obs, 8_000, &update(0, 2));
        assert!(t.stability_latency("All").is_none());
        // Origin: covers seqs 1 and 2 in one advance.
        RuntimeObserver::on_frontier(&mut origin_obs, 9_000, &update(0, 2));
        let snap = t.stability_latency("All").expect("histogram exists");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.min, 7_000); // seq 2: 9000 - 2000
        assert_eq!(snap.max, 8_000); // seq 1: 9000 - 1000
    }

    #[test]
    fn frontier_regression_never_double_counts() {
        let t = Telemetry::new_sim();
        t.note_publish(0, NodeId(0), 1, 8);
        let mut obs = t.observer(NodeId(0));
        RuntimeObserver::on_frontier(&mut obs, 100, &update(0, 1));
        // Generation bump re-announces a lower frontier, then re-covers.
        RuntimeObserver::on_frontier(&mut obs, 200, &update(0, 0));
        RuntimeObserver::on_frontier(&mut obs, 300, &update(0, 1));
        assert_eq!(t.stability_latency("All").unwrap().count, 1);
    }

    #[test]
    fn publish_at_time_zero_still_stamps() {
        let t = Telemetry::new_sim();
        t.note_publish(0, NodeId(0), 1, 8);
        let mut obs = t.observer(NodeId(1));
        RuntimeObserver::on_deliver(&mut obs, 40, NodeId(0), 1, &Bytes::from_static(b"x"));
        let snap = t.deliver_latency();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.min, 40);
    }

    #[test]
    fn placement_series_carry_hash_and_replica_sets() {
        let t = Telemetry::new_sim();
        let p = stabilizer_core::PlacementMap::from_sets(
            4,
            &[
                (NodeId(0), vec![NodeId(0), NodeId(1), NodeId(2)]),
                (NodeId(1), vec![NodeId(0), NodeId(1), NodeId(2)]),
                (NodeId(2), vec![NodeId(1), NodeId(2), NodeId(3)]),
                (NodeId(3), vec![NodeId(2), NodeId(3), NodeId(0)]),
            ],
        )
        .unwrap();
        t.record_placement(&p);
        let hash = format!("{:016x}", p.placement_hash());
        assert_eq!(
            t.registry()
                .gauge(
                    "stab_placement_info",
                    &[("placement_hash", &hash), ("partial", "true")]
                )
                .get(),
            1
        );
        assert_eq!(
            t.registry()
                .gauge(
                    "stab_stream_replicas",
                    &[("stream", "3"), ("replicas", "0,2,3")]
                )
                .get(),
            3
        );
        let prom = t.render_prometheus();
        assert!(prom.contains("stab_placement_info{"), "{prom}");
        assert!(prom.contains("replicas=\"0,1,2\""), "{prom}");
    }

    #[test]
    fn sim_hooks_and_runtime_observer_agree() {
        let record = |via_hooks: bool| {
            let t = Telemetry::new_sim();
            t.note_publish(10, NodeId(0), 1, 4);
            let mut obs = t.observer(NodeId(0));
            let payload = Bytes::from_static(b"abcd");
            if via_hooks {
                use stabilizer_core::sim_driver::AppHooks;
                AppHooks::on_deliver(&mut obs, SimTime(70), NodeId(0), 1, &payload);
                AppHooks::on_frontier(&mut obs, SimTime(90), &update(0, 1));
            } else {
                RuntimeObserver::on_deliver(&mut obs, 70, NodeId(0), 1, &payload);
                RuntimeObserver::on_frontier(&mut obs, 90, &update(0, 1));
            }
            (
                t.deliver_latency(),
                t.stability_latency("All").unwrap(),
                t.trace().to_jsonl(),
            )
        };
        assert_eq!(record(true), record(false));
    }
}
