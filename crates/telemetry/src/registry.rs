//! A per-node / per-cluster metrics registry: named counters, gauges and
//! histograms with Prometheus-style labels.
//!
//! Registration (`counter()`, `gauge()`, `histogram()`) takes a lock and
//! may allocate; it happens once at setup. The returned handles are
//! `Arc`-backed atomics, so the *record* path — the only thing that runs
//! under the node lock — is a relaxed atomic op. All series live in
//! `BTreeMap`s keyed by `(name, rendered labels)`, which makes every
//! export deterministically ordered: byte-identical output for identical
//! recorded values, which the sim replay test relies on.

use crate::histogram::{HistogramSnapshot, LogHistogram};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter handle. Cloning is cheap; clones
/// share the underlying atomic.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can go up and down.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Series key: metric name plus rendered label pairs (`a="b",c="d"`).
type Series = (String, String);

#[derive(Default)]
struct Inner {
    counters: BTreeMap<Series, Arc<AtomicU64>>,
    gauges: BTreeMap<Series, Arc<AtomicI64>>,
    histograms: BTreeMap<Series, Arc<LogHistogram>>,
    /// Optional `# HELP` text per metric family name.
    help: BTreeMap<String, String>,
}

/// The registry. Cloning is cheap; clones share all series.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

/// Escape a label value for the Prometheus text exposition format:
/// backslash, double quote and newline must be backslash-escaped.
fn push_escaped_label_value(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Render label pairs in the Prometheus inner form: `a="b",c="d"`.
/// Pairs are sorted by key so the same label set always renders the
/// same way regardless of call-site ordering; values are escaped per
/// the text exposition format.
pub(crate) fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<&(&str, &str)> = labels.iter().collect();
    pairs.sort();
    let mut out = String::new();
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        push_escaped_label_value(&mut out, v);
        out.push('"');
    }
    out
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = (name.to_owned(), render_labels(labels));
        Counter(Arc::clone(
            self.inner.lock().counters.entry(key).or_default(),
        ))
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = (name.to_owned(), render_labels(labels));
        Gauge(Arc::clone(self.inner.lock().gauges.entry(key).or_default()))
    }

    /// Get or create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<LogHistogram> {
        let key = (name.to_owned(), render_labels(labels));
        Arc::clone(self.inner.lock().histograms.entry(key).or_default())
    }

    /// Attach `# HELP` text to the metric family `name`. Idempotent;
    /// the text is emitted once per family in the Prometheus export.
    pub fn describe(&self, name: &str, help: &str) {
        self.inner
            .lock()
            .help
            .entry(name.to_owned())
            .or_insert_with(|| help.to_owned());
    }

    /// A deterministic point-in-time copy of every series, for export.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock();
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            help: inner.help.clone(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// Everything the registry knew at one instant, in deterministic
/// (`BTreeMap`) order. Input to the exporters in [`crate::export`].
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// `(name, labels) -> value`.
    pub counters: BTreeMap<Series, u64>,
    /// `(name, labels) -> value`.
    pub gauges: BTreeMap<Series, i64>,
    /// `(name, labels) -> snapshot`.
    pub histograms: BTreeMap<Series, HistogramSnapshot>,
    /// `name -> # HELP` text for described families.
    pub help: BTreeMap<String, String>,
}

/// Short git hash baked in at compile time (build script), `unknown`
/// outside a git checkout.
pub const GIT_HASH: &str = env!("STAB_GIT_HASH");

/// Register the standard build-metadata series: a `stab_build_info`
/// gauge pinned to 1 carrying the crate version, git hash and shard
/// count as labels, and a `stab_uptime_seconds` gauge (0 until a
/// wall-clock hub refreshes it at render time). Returns the uptime
/// gauge so the caller can keep it current.
pub fn register_build_info(reg: &MetricsRegistry, shards: usize) -> Gauge {
    reg.describe("stab_build_info", "Build metadata; value is always 1.");
    reg.gauge(
        "stab_build_info",
        &[
            ("version", env!("CARGO_PKG_VERSION")),
            ("git_hash", GIT_HASH),
            ("shards", &shards.to_string()),
        ],
    )
    .set(1);
    reg.describe(
        "stab_uptime_seconds",
        "Seconds since the telemetry epoch (0 under the simulator).",
    );
    let uptime = reg.gauge("stab_uptime_seconds", &[]);
    uptime.set(0);
    uptime
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_identity_by_name_and_labels() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", &[("node", "0")]);
        let b = reg.counter("x_total", &[("node", "0")]);
        let c = reg.counter("x_total", &[("node", "1")]);
        a.inc();
        b.add(2);
        c.inc();
        assert_eq!(a.get(), 3); // a and b share the series
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("x", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth", &[]);
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn snapshot_is_ordered() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total", &[]).inc();
        reg.counter("a_total", &[]).inc();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.keys().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a_total", "b_total"]);
    }
}
