//! Structured trace: a bounded ring buffer of typed protocol events.
//!
//! Timestamps are whatever the runtime passes — deterministic
//! [`SimTime`](stabilizer_netsim::SimTime) nanoseconds in the simulator,
//! monotonic nanoseconds since the telemetry epoch on the TCP runtime —
//! so a sim trace is byte-identical across replays of the same seed.
//! When the ring is full the oldest event is dropped and a counter
//! remembers how many were lost; export is JSONL, one event per line.

use crate::json::{push_json_str, push_key};
use parking_lot::Mutex;
use stabilizer_dsl::{NodeId, SeqNo};
use std::collections::VecDeque;

/// What happened. Payloads are reduced to lengths; keys are cloned only
/// when a frontier event is pushed (trace pushes are already off the
/// per-message hot path for high-rate runs — disable the ring if not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A payload was published locally.
    Publish {
        /// Sequence assigned to the payload.
        seq: SeqNo,
        /// Payload size in bytes.
        len: usize,
    },
    /// A mirrored payload was delivered.
    Deliver {
        /// Stream the payload originated on.
        origin: NodeId,
        /// Its sequence number.
        seq: SeqNo,
        /// Payload size in bytes.
        len: usize,
    },
    /// A stability frontier advanced.
    Frontier {
        /// Stream whose frontier moved.
        stream: NodeId,
        /// Predicate key.
        key: String,
        /// New frontier.
        seq: SeqNo,
        /// Predicate generation.
        generation: u32,
    },
    /// A `waitfor` completed.
    WaitDone {
        /// The wait's token.
        token: u64,
    },
    /// A peer became suspected.
    Suspected {
        /// The suspected peer.
        peer: NodeId,
    },
    /// A suspected peer came back.
    Recovered {
        /// The recovered peer.
        peer: NodeId,
    },
    /// A writer permanently gave up connecting to a peer.
    ConnectFailed {
        /// The unreachable peer.
        peer: NodeId,
    },
    /// A stream was fast-forwarded out of band (§III-E state transfer).
    CatchUp {
        /// The fast-forwarded stream.
        stream: NodeId,
        /// Sequence delivery resumes after.
        seq: SeqNo,
    },
    /// A donor replayed one retained-log chunk to a recovering peer
    /// (§III-E state transfer, donor side).
    TransferChunk {
        /// The peer being caught up.
        to: NodeId,
        /// Stream origin of the replayed payload.
        stream: NodeId,
        /// Its original sequence number.
        seq: SeqNo,
        /// Payload size in bytes.
        len: usize,
        /// True on the last chunk of the session.
        done: bool,
    },
    /// A node (re)entered the cluster as a live member and started
    /// catch-up on every stream.
    Join {
        /// Number of streams the joiner requested catch-up for.
        streams: usize,
    },
}

impl TraceKind {
    fn name(&self) -> &'static str {
        match self {
            TraceKind::Publish { .. } => "publish",
            TraceKind::Deliver { .. } => "deliver",
            TraceKind::Frontier { .. } => "frontier",
            TraceKind::WaitDone { .. } => "wait_done",
            TraceKind::Suspected { .. } => "suspected",
            TraceKind::Recovered { .. } => "recovered",
            TraceKind::ConnectFailed { .. } => "connect_failed",
            TraceKind::CatchUp { .. } => "catch_up",
            TraceKind::TransferChunk { .. } => "transfer_chunk",
            TraceKind::Join { .. } => "join",
        }
    }
}

/// One trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds: virtual in sim, monotonic-since-epoch on TCP.
    pub at_nanos: u64,
    /// The node the event happened on.
    pub node: NodeId,
    /// The event itself.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Render as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"at_ns\":");
        s.push_str(&self.at_nanos.to_string());
        s.push_str(",\"node\":");
        s.push_str(&self.node.0.to_string());
        s.push_str(",\"event\":");
        push_json_str(&mut s, self.kind.name());
        match &self.kind {
            TraceKind::Publish { seq, len } => {
                s.push_str(&format!(",\"seq\":{seq},\"len\":{len}"));
            }
            TraceKind::Deliver { origin, seq, len } => {
                s.push_str(&format!(
                    ",\"origin\":{},\"seq\":{seq},\"len\":{len}",
                    origin.0
                ));
            }
            TraceKind::Frontier {
                stream,
                key,
                seq,
                generation,
            } => {
                s.push_str(&format!(",\"stream\":{},", stream.0));
                push_key(&mut s, "key");
                push_json_str(&mut s, key);
                s.push_str(&format!(",\"seq\":{seq},\"generation\":{generation}"));
            }
            TraceKind::WaitDone { token } => s.push_str(&format!(",\"token\":{token}")),
            TraceKind::Suspected { peer }
            | TraceKind::Recovered { peer }
            | TraceKind::ConnectFailed { peer } => {
                s.push_str(&format!(",\"peer\":{}", peer.0));
            }
            TraceKind::CatchUp { stream, seq } => {
                s.push_str(&format!(",\"stream\":{},\"seq\":{seq}", stream.0));
            }
            TraceKind::TransferChunk {
                to,
                stream,
                seq,
                len,
                done,
            } => {
                s.push_str(&format!(
                    ",\"to\":{},\"stream\":{},\"seq\":{seq},\"len\":{len},\"done\":{done}",
                    to.0, stream.0
                ));
            }
            TraceKind::Join { streams } => {
                s.push_str(&format!(",\"streams\":{streams}"));
            }
        }
        s.push('}');
        s
    }
}

#[derive(Debug, Default)]
struct RingInner {
    events: VecDeque<TraceEvent>,
    dropped: u64,
    /// Total events ever pushed — the absolute cursor of the *next*
    /// event. Exemplars store the cursor of the event they correspond
    /// to, so a trace tail can be joined against an exemplar even after
    /// the ring has wrapped.
    pushed: u64,
}

/// Bounded ring of [`TraceEvent`]s. Thread-safe; pushes from observers
/// take a short uncontended mutex (observers of one node never race each
/// other — they already run under the node lock).
#[derive(Debug)]
pub struct TraceRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

/// Default ring capacity: enough for a full chaos scenario.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

impl Default for TraceRing {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceRing {
    /// A ring holding at most `capacity` events (0 disables tracing).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            inner: Mutex::new(RingInner::default()),
            capacity,
        }
    }

    /// Append an event, evicting the oldest if full. Returns the
    /// event's absolute cursor (total events pushed before it); a
    /// disabled ring (capacity 0) returns 0 without recording.
    pub fn push(&self, ev: TraceEvent) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        let mut inner = self.inner.lock();
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        let cursor = inner.pushed;
        inner.pushed += 1;
        inner.events.push_back(ev);
        cursor
    }

    /// Total events ever pushed (the absolute cursor of the next push).
    pub fn pushed(&self) -> u64 {
        self.inner.lock().pushed
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Copy out the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Render the buffer as JSONL: one event object per line, oldest
    /// first, trailing newline after the last line.
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::with_capacity(inner.events.len() * 96);
        for ev in &inner.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Render the newest `n` buffered events as JSONL, oldest of the
    /// tail first (the `/trace?n=` endpoint). `n >= len` is the whole
    /// buffer.
    pub fn to_jsonl_tail(&self, n: usize) -> String {
        let inner = self.inner.lock();
        let skip = inner.events.len().saturating_sub(n);
        let mut out = String::with_capacity((inner.events.len() - skip) * 96);
        for ev in inner.events.iter().skip(skip) {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, seq: SeqNo) -> TraceEvent {
        TraceEvent {
            at_nanos: at,
            node: NodeId(0),
            kind: TraceKind::Publish { seq, len: 8 },
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = TraceRing::new(2);
        ring.push(ev(1, 1));
        ring.push(ev(2, 2));
        ring.push(ev(3, 3));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 1);
        let snap = ring.snapshot();
        assert_eq!(snap[0].at_nanos, 2);
        assert_eq!(snap[1].at_nanos, 3);
    }

    #[test]
    fn push_returns_absolute_cursor_across_eviction() {
        let ring = TraceRing::new(2);
        assert_eq!(ring.push(ev(1, 1)), 0);
        assert_eq!(ring.push(ev(2, 2)), 1);
        assert_eq!(ring.push(ev(3, 3)), 2);
        assert_eq!(ring.pushed(), 3);
    }

    #[test]
    fn tail_returns_newest_events_oldest_first() {
        let ring = TraceRing::new(4);
        for i in 1..=4 {
            ring.push(ev(i, i));
        }
        let tail = ring.to_jsonl_tail(2);
        let lines: Vec<&str> = tail.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"at_ns\":3"));
        assert!(lines[1].contains("\"at_ns\":4"));
        assert_eq!(ring.to_jsonl_tail(100), ring.to_jsonl());
        assert_eq!(ring.to_jsonl_tail(0), "");
    }

    #[test]
    fn transfer_and_join_events_render() {
        let ring = TraceRing::new(8);
        ring.push(TraceEvent {
            at_nanos: 1,
            node: NodeId(1),
            kind: TraceKind::TransferChunk {
                to: NodeId(2),
                stream: NodeId(0),
                seq: 7,
                len: 16,
                done: true,
            },
        });
        ring.push(TraceEvent {
            at_nanos: 2,
            node: NodeId(2),
            kind: TraceKind::Join { streams: 3 },
        });
        let jsonl = ring.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[0],
            "{\"at_ns\":1,\"node\":1,\"event\":\"transfer_chunk\",\
             \"to\":2,\"stream\":0,\"seq\":7,\"len\":16,\"done\":true}"
        );
        assert_eq!(
            lines[1],
            "{\"at_ns\":2,\"node\":2,\"event\":\"join\",\"streams\":3}"
        );
    }

    #[test]
    fn zero_capacity_disables() {
        let ring = TraceRing::new(0);
        ring.push(ev(1, 1));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn jsonl_shape() {
        let ring = TraceRing::new(8);
        ring.push(ev(5, 1));
        ring.push(TraceEvent {
            at_nanos: 9,
            node: NodeId(2),
            kind: TraceKind::Frontier {
                stream: NodeId(0),
                key: "All".to_owned(),
                seq: 1,
                generation: 0,
            },
        });
        let jsonl = ring.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"at_ns\":5,\"node\":0,\"event\":\"publish\",\"seq\":1,\"len\":8}"
        );
        assert_eq!(
            lines[1],
            "{\"at_ns\":9,\"node\":2,\"event\":\"frontier\",\"stream\":0,\
             \"key\":\"All\",\"seq\":1,\"generation\":0}"
        );
    }
}
