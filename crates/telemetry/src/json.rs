//! Minimal hand-rolled JSON writing and parsing.
//!
//! The workspace deliberately carries no serialization dependency (the
//! vendored shims cover rand/proptest/criterion only), so the telemetry
//! exporters build their JSON by hand. Everything we emit is flat enough
//! — strings, integers, arrays of integers — that a string escaper and a
//! few push helpers suffice. The reader side ([`parse_json`]) exists for
//! the consumers of our own exports (`stabtop`, endpoint smoke tests):
//! a small recursive-descent parser, not a general-purpose one.

/// Append `s` as a JSON string literal (with quotes) onto `out`.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `"key":` onto `out`.
pub fn push_key(out: &mut String, key: &str) {
    push_json_str(out, key);
    out.push(':');
}

/// A parsed JSON value. Objects keep source order in a `Vec` (our own
/// exports are already deterministically ordered).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (we only ever emit integers, parsed losslessly up to
    /// 2^53 as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object; `None` elsewhere or when absent.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload truncated to i64, if this is a number.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().map(|n| n as i64)
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse one JSON document; trailing whitespace is allowed, trailing
/// garbage is an error. Errors are a human-readable message with a byte
/// offset.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad utf8".to_owned())?;
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad utf8".to_owned())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn parses_what_we_emit() {
        let doc = "{\"counters\":{\"x{node=\\\"0\\\"}\":3},\"arr\":[1,-2,3.5],\
                   \"t\":true,\"n\":null,\"s\":\"a\\nb\"}";
        let v = parse_json(doc).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("x{node=\"0\"}")
                .unwrap()
                .as_i64(),
            Some(3)
        );
        let arr = v.get("arr").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_i64(), Some(-2));
        assert_eq!(arr[2].as_f64(), Some(3.5));
        assert_eq!(v.get("t").unwrap(), &JsonValue::Bool(true));
        assert_eq!(v.get("n").unwrap(), &JsonValue::Null);
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\nb"));
    }

    #[test]
    fn round_trips_own_exports() {
        let reg = crate::MetricsRegistry::new();
        reg.counter("x_total", &[("node", "0")]).add(3);
        reg.histogram("lat_ns", &[]).record(100);
        let doc = crate::render_json_snapshot(&reg.snapshot());
        let v = parse_json(&doc).unwrap();
        assert!(v.get("histograms").is_some());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("").is_err());
    }
}
