//! Minimal hand-rolled JSON writing.
//!
//! The workspace deliberately carries no serialization dependency (the
//! vendored shims cover rand/proptest/criterion only), so the telemetry
//! exporters build their JSON by hand. Everything we emit is flat enough
//! — strings, integers, arrays of integers — that a string escaper and a
//! few push helpers suffice.

/// Append `s` as a JSON string literal (with quotes) onto `out`.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `"key":` onto `out`.
pub fn push_key(out: &mut String, key: &str) {
    push_json_str(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
