//! Metric-overhead guard: instrumented vs. uninstrumented data-plane
//! delivery.
//!
//! The delivery upcall is the hottest observer path (once per message
//! per node), so this is where registry overhead would hurt. The bench
//! times the `on_deliver` upcall through a no-op observer, through a
//! `MetricsObserver` with tracing disabled, and with the trace ring on,
//! then prints the instrumented/uninstrumented ratio so future PRs can
//! eyeball drift. Expected: a handful of relaxed atomics — small-single-
//! digit ratio over the no-op.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stabilizer_core::RuntimeObserver;
use stabilizer_dsl::NodeId;
use stabilizer_telemetry::{MetricsObserver, Telemetry};
use std::sync::Arc;
use std::time::Instant;

struct NoopObserver;
impl RuntimeObserver for NoopObserver {}

const SEQS: u64 = 1024;
const PAYLOAD: usize = 64;

fn instrumented(trace_capacity: usize) -> MetricsObserver {
    let t: Arc<Telemetry> = Telemetry::new_sim_with_trace(trace_capacity);
    for s in 1..=SEQS {
        t.note_publish(s * 10, NodeId(0), s, PAYLOAD);
    }
    t.observer(NodeId(1))
}

/// Nanoseconds per call of `f`, via a calibrated loop (same idea as the
/// vendored criterion shim, but returning the number so we can print a
/// ratio).
fn ns_per_iter(mut f: impl FnMut()) -> f64 {
    let mut n: u64 = 1024;
    loop {
        let start = Instant::now();
        for _ in 0..n {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 100 || n >= 16_777_216 {
            return elapsed.as_nanos() as f64 / n as f64;
        }
        n *= 4;
    }
}

fn bench_delivery(c: &mut Criterion) {
    let payload = Bytes::from(vec![7u8; PAYLOAD]);

    let mut noop = NoopObserver;
    let mut seq = 0u64;
    c.bench_function("deliver/uninstrumented", |b| {
        b.iter(|| {
            seq = seq % SEQS + 1;
            noop.on_deliver(black_box(seq * 10 + 5), NodeId(0), seq, &payload);
        })
    });

    let mut obs = instrumented(0);
    let mut seq = 0u64;
    c.bench_function("deliver/instrumented", |b| {
        b.iter(|| {
            seq = seq % SEQS + 1;
            obs.on_deliver(black_box(seq * 10 + 5), NodeId(0), seq, &payload);
        })
    });

    let mut traced = instrumented(4096);
    let mut seq = 0u64;
    c.bench_function("deliver/instrumented+trace", |b| {
        b.iter(|| {
            seq = seq % SEQS + 1;
            traced.on_deliver(black_box(seq * 10 + 5), NodeId(0), seq, &payload);
        })
    });

    // The headline number: how much the metrics layer multiplies the
    // cost of a delivery upcall.
    let mut noop = NoopObserver;
    let mut seq = 0u64;
    let base = ns_per_iter(|| {
        seq = seq % SEQS + 1;
        noop.on_deliver(black_box(seq * 10 + 5), NodeId(0), seq, &payload);
    });
    let mut obs = instrumented(0);
    let mut seq = 0u64;
    let inst = ns_per_iter(|| {
        seq = seq % SEQS + 1;
        obs.on_deliver(black_box(seq * 10 + 5), NodeId(0), seq, &payload);
    });
    println!(
        "overhead ratio (instrumented / uninstrumented): {:.2}x \
         ({inst:.1} ns vs {base:.1} ns per delivery)",
        inst / base.max(f64::MIN_POSITIVE)
    );
}

criterion_group!(benches, bench_delivery);
criterion_main!(benches);
