//! Bakes the short git hash into the crate as `STAB_GIT_HASH` for the
//! `stab_build_info` metric. Falls back to `unknown` outside a checkout
//! (e.g. a vendored source tarball) so the build never fails on it.

use std::process::Command;

fn main() {
    let hash = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned());
    println!("cargo:rustc-env=STAB_GIT_HASH={hash}");
    // Re-run when HEAD moves so the hash stays honest in dev builds.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
