//! The Fig. 3 experiment: quorum read latency versus message size on the
//! CloudLab topology, with writer at Utah2 and reader at Utah1.

use crate::protocol::{build_quorum, QuorumSetup};
use stabilizer_core::ClusterConfig;
use stabilizer_netsim::{NetTopology, SimDuration, SimTime};

/// One point of the Fig. 3 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadLatencyPoint {
    /// Message (register value) size in bytes.
    pub size: usize,
    /// Latency from the writer's send to the reader observing the value.
    pub latency: SimDuration,
}

/// CloudLab cluster config matching [`NetTopology::cloudlab_table2`].
pub fn cloudlab_cfg() -> ClusterConfig {
    ClusterConfig::parse(
        "az Utah UT1 UT2\n\
         az Wisconsin WI\n\
         az Clemson CLEM\n\
         az Massachusetts MA\n",
    )
    .expect("static config parses")
}

/// Measure the quorum read latency for one message size: the writer
/// (UT2) publishes a version; the reader (UT1) polls a read quorum until
/// it observes it. Latency runs from the *send* time, per §VI-A.
pub fn quorum_read_latency(size: usize, seed: u64) -> ReadLatencyPoint {
    let cfg = cloudlab_cfg();
    let setup = QuorumSetup::fig3();
    let mut sim = build_quorum(&cfg, NetTopology::cloudlab_table2(), setup.clone(), seed)
        .expect("fig3 setup is valid");
    for i in 0..cfg.num_nodes() {
        sim.actor_mut(i).set_value_size(size);
    }
    let sent_at = sim.now();
    let seq = sim
        .with_ctx(setup.writer, |a, ctx| a.write_in(ctx, size))
        .expect("write");
    let deadline = sim.now() + SimDuration::from_secs(30);
    sim.with_ctx(setup.reader, |a, ctx| a.chase_version(ctx, seq, deadline));
    sim.run_until(deadline);
    let observed = sim
        .actor(setup.reader)
        .read_observed_at(seq)
        .expect("read quorum never observed the write");
    ReadLatencyPoint {
        size,
        latency: observed.since(sent_at),
    }
}

/// The reference RTTs drawn as dashed lines in Fig. 3.
pub fn reference_rtts() -> Vec<(String, SimDuration)> {
    let net = NetTopology::cloudlab_table2();
    [("Utah1", 1usize), ("Wisconsin", 2), ("Clemson", 3)]
        .into_iter()
        .map(|(name, idx)| {
            (
                name.to_owned(),
                stabilizer_netsim::measure_rtt(&net, 0, idx),
            )
        })
        .collect()
}

/// Convenience: when the writer's quorum-write committed, for write
/// latency reporting.
pub fn quorum_write_latency(size: usize, seed: u64) -> SimDuration {
    let cfg = cloudlab_cfg();
    let setup = QuorumSetup::fig3();
    let mut sim = build_quorum(&cfg, NetTopology::cloudlab_table2(), setup.clone(), seed)
        .expect("fig3 setup is valid");
    let seq = sim
        .with_ctx(setup.writer, |a, ctx| a.write_in(ctx, size))
        .expect("write");
    sim.run_until_idle();
    sim.actor(setup.writer)
        .write_committed_at(seq)
        .expect("write never committed")
        .since(SimTime::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_read_latency_tracks_wisconsin_rtt() {
        // The paper: "the quorum read latency is comparable to the RTT of
        // Wisconsin" (35.612 ms) because WI is the second-fastest member.
        let p = quorum_read_latency(1024, 1);
        let ms = p.latency.as_millis_f64();
        assert!((34.0..42.0).contains(&ms), "1 KiB read latency {ms}ms");
    }

    #[test]
    fn latency_increases_slightly_with_size() {
        let small = quorum_read_latency(1024, 2).latency;
        let large = quorum_read_latency(64 * 1024, 2).latency;
        assert!(large > small);
        // "a slight increase": well under 2x at 64 KiB.
        assert!(
            large.as_millis_f64() < small.as_millis_f64() * 2.0,
            "{small} vs {large}"
        );
    }

    #[test]
    fn write_commits_at_second_fastest_member() {
        // Write quorum of 2: UT1 (LAN, ~0.06 ms one-way) and WI
        // (~17.85 ms one-way + ack back = ~35.7 ms).
        let ms = quorum_write_latency(1024, 3).as_millis_f64();
        assert!((34.0..40.0).contains(&ms), "write commit at {ms}ms");
    }

    #[test]
    fn reference_rtts_match_table2() {
        let rtts = reference_rtts();
        assert_eq!(rtts.len(), 3);
        assert!((rtts[1].1.as_millis_f64() - 35.612).abs() < 0.5); // Wisconsin
        assert!((rtts[2].1.as_millis_f64() - 50.918).abs() < 0.5); // Clemson
    }
}
