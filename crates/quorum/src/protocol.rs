//! The quorum read/write protocol over simulated Stabilizer nodes.
//!
//! Roles (matching the paper's Fig. 3 setup): one *writer* originates a
//! stream of register versions; a set of *members* mirror it (they are
//! ordinary Stabilizer peers); a *reader* polls the members with read
//! requests and completes each read when `Nr` responses have arrived,
//! returning the highest version seen.

use bytes::Bytes;
use stabilizer_core::{
    Action, ClusterConfig, CoreError, FrontierUpdate, NodeId, SeqNo, StabilizerNode, WireMsg,
};
use stabilizer_dsl::{AckTypeRegistry, RECEIVED};
use stabilizer_netsim::{
    Actor, Ctx, MsgSize, NetTopology, SimDuration, SimTime, Simulation, TimerId,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Messages of the quorum overlay: Stabilizer traffic plus read RPCs.
#[derive(Debug, Clone)]
pub enum QuorumMsg {
    /// Mirroring and control traffic of the underlying Stabilizer.
    Stab(WireMsg),
    /// Reader's request for a member's current version.
    ReadReq {
        /// Correlates responses to a poll round.
        id: u64,
    },
    /// Member's response: its latest in-order version of the writer's
    /// stream and the size of the carried value (size drives the network
    /// model; the payload content is irrelevant to latency).
    ReadResp {
        /// Echoed request id.
        id: u64,
        /// Member's version (0 = nothing yet).
        version: SeqNo,
        /// Size of the carried value in bytes.
        size: usize,
    },
}

impl MsgSize for QuorumMsg {
    fn wire_size(&self) -> usize {
        match self {
            QuorumMsg::Stab(m) => m.wire_size(),
            QuorumMsg::ReadReq { .. } => 64,
            QuorumMsg::ReadResp { size, .. } => 64 + size,
        }
    }
}

/// Static description of a quorum deployment on a network topology.
#[derive(Debug, Clone)]
pub struct QuorumSetup {
    /// Index of the writing client (stream origin).
    pub writer: usize,
    /// Index of the reading client.
    pub reader: usize,
    /// Indices of the quorum members.
    pub members: Vec<usize>,
    /// Read quorum size.
    pub nr: usize,
    /// Write quorum size.
    pub nw: usize,
}

impl QuorumSetup {
    /// The Fig. 3 configuration: members {UT1, WI, CLEM}, writer UT2,
    /// reader UT1, `Nr = Nw = 2` on the CloudLab topology.
    pub fn fig3() -> Self {
        QuorumSetup {
            writer: 1,
            reader: 0,
            members: vec![0, 2, 3],
            nr: 2,
            nw: 2,
        }
    }

    /// The write predicate in the DSL: at least `Nw` members acked.
    pub fn write_predicate(&self) -> String {
        let operands: Vec<String> = self.members.iter().map(|m| format!("${}", m + 1)).collect();
        format!("KTH_MAX({}, {})", self.nw, operands.join(", "))
    }

    /// The read predicate (§IV-B): `Nr` members reachable.
    pub fn read_predicate(&self) -> String {
        let operands: Vec<String> = self.members.iter().map(|m| format!("${}", m + 1)).collect();
        format!("KTH_MAX({}, {})", self.nr, operands.join(", "))
    }

    /// Check the quorum-overlap requirement `Nr + Nw > N`.
    pub fn overlaps(&self) -> bool {
        self.nr + self.nw > self.members.len()
    }
}

/// A completed quorum read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResult {
    /// When the read completed (the `Nr`-th response arrived).
    pub at: SimTime,
    /// The highest version among the `Nr` responses — the value a classic
    /// quorum read returns (any overlap member supplies it).
    pub version: SeqNo,
    /// The *lowest* version among the `Nr` responses: every member of
    /// this read quorum holds at least this version. The paper's Fig. 3
    /// latency ("the time it is received by the reader") is measured
    /// against this, which is why larger values shift the curve slightly
    /// (the write and the response both serialize the value over the
    /// Wisconsin link).
    pub quorum_version: SeqNo,
}

const TAG_POLL: u64 = 100;

/// One node of the quorum deployment (every node embeds a Stabilizer
/// instance; the reader additionally polls).
pub struct QuorumActor {
    node: StabilizerNode,
    setup: QuorumSetup,
    /// Timestamped frontier log of the embedded Stabilizer.
    pub frontier_log: Vec<(SimTime, FrontierUpdate)>,
    /// Outstanding reads at the reader: id -> versions received.
    outstanding: HashMap<u64, Vec<SeqNo>>,
    next_read: u64,
    /// Completed reads in completion order.
    pub reads: Vec<ReadResult>,
    poll_every: SimDuration,
    target: Option<SeqNo>,
    poll_deadline: Option<SimTime>,
    value_size: usize,
}

impl QuorumActor {
    /// Build node `me` of the deployment.
    ///
    /// # Errors
    ///
    /// Propagates predicate-compile failures (e.g. an invalid setup).
    pub fn new(
        cfg: ClusterConfig,
        me: NodeId,
        acks: Arc<AckTypeRegistry>,
        setup: QuorumSetup,
    ) -> Result<Self, CoreError> {
        let mut node = StabilizerNode::new(cfg, me, acks)?;
        if me.0 as usize == setup.writer {
            node.register_predicate(me, "W", &setup.write_predicate())?;
        }
        Ok(QuorumActor {
            node,
            setup,
            frontier_log: Vec::new(),
            outstanding: HashMap::new(),
            next_read: 0,
            reads: Vec::new(),
            poll_every: SimDuration::from_micros(500),
            target: None,
            poll_deadline: None,
            value_size: 0,
        })
    }

    /// Writer: publish a new register version of `size` bytes.
    ///
    /// # Errors
    ///
    /// Data-plane errors (backpressure, payload too large).
    pub fn write_in(
        &mut self,
        ctx: &mut Ctx<'_, QuorumMsg>,
        size: usize,
    ) -> Result<SeqNo, CoreError> {
        self.value_size = size;
        let seq = self.node.publish(Bytes::from(vec![0u8; size]))?;
        self.drain(ctx);
        Ok(seq)
    }

    /// Reader: poll members until a read observes `target` (or `deadline`
    /// passes). Results accumulate in [`QuorumActor::reads`].
    pub fn chase_version(
        &mut self,
        ctx: &mut Ctx<'_, QuorumMsg>,
        target: SeqNo,
        deadline: SimTime,
    ) {
        self.target = Some(target);
        self.poll_deadline = Some(deadline);
        self.issue_read(ctx);
        ctx.set_timer(self.poll_every, TAG_POLL);
    }

    /// First time the write predicate covered `seq` at the writer.
    pub fn write_committed_at(&self, seq: SeqNo) -> Option<SimTime> {
        self.frontier_log
            .iter()
            .find(|(_, u)| u.key == "W" && u.seq >= seq)
            .map(|(t, _)| *t)
    }

    /// First completed read whose *whole* read quorum held at least
    /// `version` (the Fig. 3 "received by the reader" instant).
    pub fn read_observed_at(&self, version: SeqNo) -> Option<SimTime> {
        self.reads
            .iter()
            .find(|r| r.quorum_version >= version)
            .map(|r| r.at)
    }

    /// First completed read that *returned* at least `version` (classic
    /// quorum-read semantics: the max over the responses).
    pub fn read_returned_at(&self, version: SeqNo) -> Option<SimTime> {
        self.reads
            .iter()
            .find(|r| r.version >= version)
            .map(|r| r.at)
    }

    /// The wrapped Stabilizer node.
    pub fn stabilizer(&self) -> &StabilizerNode {
        &self.node
    }

    /// Tell members how large the register value is (read responses carry
    /// it; only its size matters to the network model).
    pub fn set_value_size(&mut self, size: usize) {
        self.value_size = size;
    }

    fn issue_read(&mut self, ctx: &mut Ctx<'_, QuorumMsg>) {
        let id = self.next_read;
        self.next_read += 1;
        self.outstanding.insert(id, Vec::new());
        let members = self.setup.members.clone();
        for m in members {
            if m == ctx.me() {
                let version = self.local_version(ctx.me());
                self.record_response(ctx, id, version);
            } else {
                ctx.send(m, QuorumMsg::ReadReq { id });
            }
        }
    }

    fn local_version(&self, me: usize) -> SeqNo {
        let writer = NodeId(self.setup.writer as u16);
        if me == self.setup.writer {
            self.node.last_published()
        } else {
            self.node
                .recorder()
                .get(writer, NodeId(me as u16), RECEIVED)
        }
    }

    fn record_response(&mut self, ctx: &mut Ctx<'_, QuorumMsg>, id: u64, version: SeqNo) {
        let Some(versions) = self.outstanding.get_mut(&id) else {
            return;
        };
        versions.push(version);
        if versions.len() >= self.setup.nr {
            let version = versions.iter().copied().max().unwrap_or(0);
            let quorum_version = versions.iter().copied().min().unwrap_or(0);
            self.outstanding.remove(&id);
            self.reads.push(ReadResult {
                at: ctx.now(),
                version,
                quorum_version,
            });
            if let Some(t) = self.target {
                if quorum_version >= t {
                    self.target = None; // satisfied; polling stops
                }
            }
        }
    }

    fn drain(&mut self, ctx: &mut Ctx<'_, QuorumMsg>) {
        for action in self.node.take_actions() {
            match action {
                Action::Send { to, msg } => ctx.send(to.0 as usize, QuorumMsg::Stab(msg)),
                Action::Frontier(u) => self.frontier_log.push((ctx.now(), u)),
                _ => {}
            }
        }
    }
}

impl Actor for QuorumActor {
    type Msg = QuorumMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, QuorumMsg>, from: usize, msg: QuorumMsg) {
        match msg {
            QuorumMsg::Stab(wire) => {
                self.node
                    .on_message(ctx.now().as_nanos(), NodeId(from as u16), wire);
                self.drain(ctx);
            }
            QuorumMsg::ReadReq { id } => {
                let version = self.local_version(ctx.me());
                let size = if version > 0 { self.value_size } else { 0 };
                ctx.send(from, QuorumMsg::ReadResp { id, version, size });
            }
            QuorumMsg::ReadResp { id, version, .. } => {
                self.record_response(ctx, id, version);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, QuorumMsg>, _timer: TimerId, tag: u64) {
        if tag != TAG_POLL {
            return;
        }
        if let (Some(_), Some(deadline)) = (self.target, self.poll_deadline) {
            if ctx.now() <= deadline {
                self.issue_read(ctx);
                ctx.set_timer(self.poll_every, TAG_POLL);
            }
        }
    }
}

/// Build a quorum deployment over `net` with one actor per site.
///
/// # Errors
///
/// Propagates configuration and predicate-compile errors.
///
/// # Panics
///
/// Panics if `setup` violates quorum overlap (`Nr + Nw <= N`) or the
/// network and cluster sizes differ.
pub fn build_quorum(
    cfg: &ClusterConfig,
    net: NetTopology,
    setup: QuorumSetup,
    seed: u64,
) -> Result<Simulation<QuorumActor>, CoreError> {
    assert!(setup.overlaps(), "quorum overlap requires Nr + Nw > N");
    assert_eq!(net.len(), cfg.num_nodes());
    let acks = Arc::new(AckTypeRegistry::new());
    let mut actors = Vec::with_capacity(cfg.num_nodes());
    for i in 0..cfg.num_nodes() {
        actors.push(QuorumActor::new(
            cfg.clone(),
            NodeId(i as u16),
            Arc::clone(&acks),
            setup.clone(),
        )?);
    }
    Ok(Simulation::new(net, actors, seed))
}
