//! # Quorum replication via stability-frontier predicates (§IV-B)
//!
//! Gifford's weighted-voting quorum protocol expressed with Stabilizer:
//! a write is committed once the *write predicate* — "at least `Nw`
//! quorum members acknowledged" (`KTH_MAX(Nw, $members)`) — covers its
//! sequence number, and a read gathers versions from at least `Nr`
//! members and returns the newest. With `Nw + Nr > N` every read quorum
//! intersects every write quorum, so a read that begins after a
//! non-concurrent committed write always observes it (verified by the
//! property tests in `tests/quorum_props.rs`).
//!
//! A note on operator choice: the paper's §IV-B text writes the majority
//! write predicate with `KTH_MIN(majority, ...)`, while its own Table III
//! expresses "at least k nodes acknowledged" as `KTH_MAX(k, ...)`. The
//! two differ: the k-th *largest* counter is `>= s` exactly when at least
//! `k` members have acknowledged `s`, which is the quorum condition, so
//! this crate follows Table III and uses `KTH_MAX(Nw, ...)`.

//! ```
//! use stabilizer_quorum::QuorumSetup;
//!
//! let setup = QuorumSetup::fig3();
//! assert!(setup.overlaps()); // Nr + Nw > N
//! assert_eq!(setup.write_predicate(), "KTH_MAX(2, $1, $3, $4)");
//! ```

pub mod experiment;
pub mod protocol;

pub use experiment::{
    cloudlab_cfg, quorum_read_latency, quorum_write_latency, reference_rtts, ReadLatencyPoint,
};
pub use protocol::{build_quorum, QuorumActor, QuorumMsg, QuorumSetup, ReadResult};
