//! Property tests for the quorum protocol's serial-consistency guarantee
//! (§IV-B): "a reader always sees the data committed by a previous
//! non-concurrent write". Topologies, link latencies, write counts, and
//! quorum parameters are randomized; the overlap property `Nw + Nr > N`
//! must make every post-commit read return the committed version.

use proptest::prelude::*;
use stabilizer_core::ClusterConfig;
use stabilizer_netsim::{LinkSpec, NetTopology, SimDuration, SimTime};
use stabilizer_quorum::protocol::build_quorum;
use stabilizer_quorum::QuorumSetup;

#[derive(Debug, Clone)]
struct Scenario {
    /// One-way latencies (ms) for each of the 5 sites' links to the rest.
    lat_ms: Vec<u64>,
    nr: usize,
    nw: usize,
    writes: usize,
    seed: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec(1u64..60, 5),
        1usize..=3,
        1usize..=3,
        1usize..4,
        0u64..1000,
    )
        .prop_map(|(lat_ms, nr, nw, writes, seed)| Scenario {
            lat_ms,
            nr,
            nw,
            writes,
            seed,
        })
        .prop_filter("quorums must overlap", |s| s.nr + s.nw > 3)
}

fn topology(lat_ms: &[u64]) -> NetTopology {
    let mut t = NetTopology::new(&["a", "b", "c", "d", "e"]);
    for i in 0..5 {
        for j in (i + 1)..5 {
            let ms = lat_ms[i].max(lat_ms[j]);
            t.set_symmetric(i, j, LinkSpec::from_rtt_mbit(ms as f64, 500.0));
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn committed_writes_are_visible_to_later_reads(s in arb_scenario()) {
        let cfg = ClusterConfig::parse("az A a b\naz B c d\naz C e").unwrap();
        let setup = QuorumSetup { writer: 1, reader: 0, members: vec![0, 2, 3], nr: s.nr, nw: s.nw };
        let mut sim = build_quorum(&cfg, topology(&s.lat_ms), setup.clone(), s.seed).unwrap();

        let mut last_seq = 0;
        for _ in 0..s.writes {
            last_seq = sim.with_ctx(setup.writer, |a, ctx| a.write_in(ctx, 256)).unwrap();
        }
        // Let the write commit (run until the write predicate covers it).
        sim.run_until_idle();
        let committed = sim.actor(setup.writer).write_committed_at(last_seq);
        prop_assert!(committed.is_some(), "write never committed");

        // A strictly-later, non-concurrent read.
        let deadline = sim.now() + SimDuration::from_secs(60);
        sim.with_ctx(setup.reader, |a, ctx| a.chase_version(ctx, last_seq, deadline));
        sim.run_until(deadline);
        let reader = sim.actor(setup.reader);
        // The FIRST completed read after commit must already return the
        // committed version (overlap guarantee) — not merely eventually.
        let first = reader.reads.first().expect("no read completed");
        prop_assert!(
            first.version >= last_seq,
            "first post-commit read returned {} < committed {last_seq}",
            first.version
        );
    }

    #[test]
    fn read_version_never_regresses(s in arb_scenario()) {
        let cfg = ClusterConfig::parse("az A a b\naz B c d\naz C e").unwrap();
        let setup = QuorumSetup { writer: 1, reader: 0, members: vec![0, 2, 3], nr: s.nr, nw: s.nw };
        let mut sim = build_quorum(&cfg, topology(&s.lat_ms), setup.clone(), s.seed).unwrap();
        let mut last_seq = 0;
        for _ in 0..s.writes {
            last_seq = sim.with_ctx(setup.writer, |a, ctx| a.write_in(ctx, 64)).unwrap();
        }
        let deadline = SimTime::ZERO + SimDuration::from_secs(120);
        sim.with_ctx(setup.reader, |a, ctx| a.chase_version(ctx, last_seq, deadline));
        sim.run_until(deadline);
        let reads = &sim.actor(setup.reader).reads;
        prop_assert!(!reads.is_empty());
        // Reads complete in order; quorum_version <= version always, and
        // both are monotone over time in a single-writer register.
        for w in reads.windows(2) {
            prop_assert!(w[1].version >= w[0].version);
        }
        for r in reads {
            prop_assert!(r.quorum_version <= r.version);
        }
    }
}
