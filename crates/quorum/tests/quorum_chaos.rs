//! The chaos invariant checker over the quorum overlay. `QuorumActor`
//! doesn't embed the `SimNode` driver, so this assembles `NodeView`s by
//! hand from its public `stabilizer()` + `frontier_log` — the checker
//! itself is reused unchanged (delivery/suspicion checks self-skip on
//! empty logs with `records_deliveries: false`).

use stabilizer_chaos::{InvariantChecker, NodeView};
use stabilizer_core::ClusterConfig;
use stabilizer_netsim::{LinkSpec, NetTopology, SimDuration};
use stabilizer_quorum::protocol::{build_quorum, QuorumActor};
use stabilizer_quorum::QuorumSetup;

macro_rules! check_all {
    ($checker:expr, $sim:expr, $n:expr) => {{
        let now = $sim.now();
        let views: Vec<NodeView<'_>> = (0..$n)
            .map(|i| {
                let a = $sim.actor(i);
                NodeView {
                    node: a.stabilizer(),
                    frontier_log: &a.frontier_log,
                    delivery_log: &[],
                    catchup_log: &[],
                    suspected_log: &[],
                    recovered_log: &[],
                    records_deliveries: false,
                    dirty: None,
                }
            })
            .collect();
        $checker
            .check(now, &views)
            .expect("quorum workload violated a chaos invariant");
    }};
}

fn topology() -> NetTopology {
    let mut t = NetTopology::new(&["a", "b", "c", "d", "e"]);
    for i in 0..5 {
        for j in (i + 1)..5 {
            t.set_symmetric(i, j, LinkSpec::from_rtt_mbit(12.0, 500.0));
        }
    }
    t
}

#[test]
fn quorum_workload_upholds_ack_and_frontier_invariants() {
    let cfg = ClusterConfig::parse("az A a b\naz B c d\naz C e").unwrap();
    let setup = QuorumSetup::fig3();
    let mut sim = build_quorum(&cfg, topology(), setup.clone(), 77).unwrap();
    let n = 5;
    let mut checker = InvariantChecker::new(n, sim.actor(0).stabilizer().recorder().num_types());

    // A lossy member link stresses the retransmission path while the
    // writer streams versions and the reader polls concurrently.
    sim.set_link_loss(1, 3, 0.25);
    let mut last_seq = 0;
    for _ in 0..8 {
        last_seq = sim
            .with_ctx(setup.writer, |a: &mut QuorumActor, ctx| {
                a.write_in(ctx, 256)
            })
            .unwrap();
        let deadline = sim.now() + SimDuration::from_millis(40);
        while sim.next_event_time().is_some_and(|t| t <= deadline) {
            sim.step();
            check_all!(checker, sim, n);
        }
    }
    sim.set_link_loss(1, 3, 0.0);
    let deadline = sim.now() + SimDuration::from_secs(30);
    sim.with_ctx(setup.reader, |a: &mut QuorumActor, ctx| {
        a.chase_version(ctx, last_seq, deadline)
    });
    while sim.next_event_time().is_some_and(|t| t <= deadline) {
        sim.step();
        check_all!(checker, sim, n);
    }

    // End-to-end sanity on top of the invariants: the read eventually
    // returned the committed version.
    let reader = sim.actor(setup.reader);
    assert!(
        reader.reads.iter().any(|r| r.version >= last_seq),
        "no read ever returned the final committed version"
    );
}
