//! Fault-path tests for the TCP runtime: staggered starts (messages
//! published before peers exist must still arrive) and failure detection
//! over real sockets.

use bytes::Bytes;
use stabilizer_core::{AckTypeRegistry, ClusterConfig, NodeId, Options};
use stabilizer_transport::spawn_node;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cfg(extra_opts: Option<Options>) -> ClusterConfig {
    let c =
        ClusterConfig::parse("az A a b\naz B c\npredicate AllRemote MIN($ALLWNODES-$MYWNODE)\n")
            .unwrap();
    match extra_opts {
        Some(o) => c.with_options(o),
        None => c,
    }
}

fn listeners(n: usize) -> (Vec<TcpListener>, Vec<std::net::SocketAddr>) {
    let ls: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let addrs = ls.iter().map(|l| l.local_addr().unwrap()).collect();
    (ls, addrs)
}

#[test]
fn messages_published_before_peers_start_still_arrive() {
    let cfg = cfg(None);
    let (mut ls, addrs) = listeners(3);
    let acks = Arc::new(AckTypeRegistry::new());
    let peers = |me: usize| -> Vec<(NodeId, std::net::SocketAddr)> {
        (0..3)
            .filter(|j| *j != me)
            .map(|j| (NodeId(j as u16), addrs[j]))
            .collect()
    };

    // Only node 0 is alive. Its writers retry-connect in the background.
    let n0 = spawn_node(
        cfg.clone(),
        NodeId(0),
        Arc::clone(&acks),
        ls.remove(0),
        peers(0),
    )
    .unwrap();
    let h0 = n0.handle();
    let seq = h0
        .publish(Bytes::from_static(b"early bird"), Duration::from_secs(1))
        .unwrap();

    // The stragglers join 150 ms later.
    std::thread::sleep(Duration::from_millis(150));
    let n1 = spawn_node(
        cfg.clone(),
        NodeId(1),
        Arc::clone(&acks),
        ls.remove(0),
        peers(1),
    )
    .unwrap();
    let n2 = spawn_node(cfg, NodeId(2), Arc::clone(&acks), ls.remove(0), peers(2)).unwrap();

    // The early message reaches everyone: full stability is achieved.
    assert!(h0
        .waitfor(NodeId(0), "AllRemote", seq, Duration::from_secs(10))
        .unwrap());
    assert_eq!(n1.handle().received_of(NodeId(0)), seq);
    assert_eq!(n2.handle().received_of(NodeId(0)), seq);
    for h in [h0, n1.handle(), n2.handle()] {
        h.shutdown();
    }
}

#[test]
fn silent_peer_is_suspected_over_tcp() {
    let opts = Options::default()
        .heartbeat_millis(50)
        .failure_timeout_millis(400);
    let cfg = cfg(Some(opts));
    let cluster = stabilizer_transport::spawn_local_cluster(&cfg).unwrap();
    let h0 = cluster[0].handle();

    // Warm up: traffic flows, nobody is suspected.
    let seq = h0
        .publish(Bytes::from_static(b"warmup"), Duration::from_secs(1))
        .unwrap();
    assert!(h0
        .waitfor(NodeId(0), "AllRemote", seq, Duration::from_secs(10))
        .unwrap());

    // Node 2 dies (its threads stop; its sockets go quiet).
    cluster[2].handle().shutdown();

    // Within a few failure-check periods node 0 suspects node 2 but not
    // node 1 (which keeps heartbeating).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let suspects_2 = {
            let shared = &h0;
            // `is_suspected` is exposed through the state machine.
            shared.stability_frontier(NodeId(0), "AllRemote").is_some()
                && shared_suspected(shared, NodeId(2))
        };
        if suspects_2 {
            break;
        }
        assert!(Instant::now() < deadline, "node 2 never suspected");
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        !shared_suspected(&h0, NodeId(1)),
        "live node wrongly suspected"
    );
    for n in &cluster {
        n.handle().shutdown();
    }
}

/// Helper: peek at the failure detector through the handle.
fn shared_suspected(h: &stabilizer_transport::NodeHandle, node: NodeId) -> bool {
    h.is_suspected(node)
}

#[test]
fn exhausted_connect_retries_surface_the_unreachable_peer() {
    // Nothing ever listens at peer 1's address: with a finite retry
    // budget the writer must give up and *report* it instead of spinning
    // silently forever.
    let opts = Options::default().connect_retry_limit(4);
    let cfg = cfg(Some(opts));
    let (mut ls, mut addrs) = listeners(3);
    // Point node 0 at a port that is bound by nobody.
    let dead = TcpListener::bind("127.0.0.1:0").unwrap();
    addrs[1] = dead.local_addr().unwrap();
    drop(dead); // release the port: connects now fail fast
    let acks = Arc::new(AckTypeRegistry::new());
    let peers: Vec<(NodeId, std::net::SocketAddr)> =
        (1..3).map(|j| (NodeId(j as u16), addrs[j])).collect();
    let n0 = spawn_node(cfg, NodeId(0), acks, ls.remove(0), peers).unwrap();
    let h0 = n0.handle();

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let failures = h0.connect_failures();
        if failures.contains(&NodeId(1)) {
            // Only the genuinely dead peer is reported; node 2's writer
            // keeps retrying its (also unreachable) peer within the same
            // budget, so it may appear too — but node 0 itself never does.
            assert!(!failures.contains(&NodeId(0)));
            break;
        }
        assert!(
            Instant::now() < deadline,
            "writer never surfaced the permanent connect failure"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    h0.shutdown();
}

#[test]
fn garbage_first_frame_is_rejected_without_crashing() {
    use std::io::Write;
    let cfg = cfg(None);
    let cluster = stabilizer_transport::spawn_local_cluster(&cfg).unwrap();
    let h = cluster[0].handle();
    // Find node 0's listener port by publishing through the normal path
    // first (ensures the cluster is healthy), then probing with garbage.
    let seq = h
        .publish(Bytes::from_static(b"sane"), Duration::from_secs(1))
        .unwrap();
    assert!(h
        .waitfor(NodeId(0), "AllRemote", seq, Duration::from_secs(10))
        .unwrap());

    // Connect to every node's port range is unknown here; instead attack
    // through a fresh listener-less connection to node 1's address via
    // the cluster's own connectivity: send a non-hello frame to any
    // accepting socket by reusing a raw TCP connection to node 0's
    // listener. We can discover it from the OS: connect to each port the
    // runtime opened is not exposed, so approximate by opening our own
    // listener and verifying the framing rejects garbage directly.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let t = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = std::io::BufReader::new(stream);
        // The runtime's reader would parse_hello and drop; emulate that
        // exact path through the public framing API.
        match stabilizer_transport::framing::read_frame(&mut reader) {
            Ok(Some(msg)) => stabilizer_transport::framing::parse_hello(&msg).is_none(),
            _ => true, // undecodable = also rejected
        }
    });
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(&[0xFF; 16]).unwrap();
    drop(s);
    assert!(t.join().unwrap(), "garbage accepted as a hello");

    // The cluster is still healthy afterwards.
    let seq = h
        .publish(Bytes::from_static(b"still alive"), Duration::from_secs(1))
        .unwrap();
    assert!(h
        .waitfor(NodeId(0), "AllRemote", seq, Duration::from_secs(10))
        .unwrap());
    for n in &cluster {
        n.handle().shutdown();
    }
}
