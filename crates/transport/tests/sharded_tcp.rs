//! End-to-end tests for the sharded TCP runtime: real sockets, real
//! threads, S shards per node, application semantics identical to the
//! unsharded [`stabilizer_transport::NodeHandle`].

use bytes::Bytes;
use parking_lot::Mutex;
use stabilizer_core::{NodeId, SeqNo};
use stabilizer_shard::RoutePolicy;
use stabilizer_transport::{spawn_sharded_local_cluster, ShardedTcpNode};
use std::sync::Arc;
use std::time::Duration;

const CFG: &str = "
az East e1 e2
az West w1
option shards 2
predicate AllRemote MIN($ALLWNODES-$MYWNODE)
predicate OneRemote MAX($ALLWNODES-$MYWNODE)
";

fn cluster() -> Vec<ShardedTcpNode> {
    let cfg = stabilizer_core::ClusterConfig::parse(CFG).expect("config parses");
    spawn_sharded_local_cluster(&cfg, RoutePolicy::RoundRobin).expect("cluster boots")
}

fn shutdown(nodes: &[ShardedTcpNode]) {
    for n in nodes {
        n.handle().shutdown();
    }
}

#[test]
fn publish_waitfor_roundtrip_across_shards() {
    let nodes = cluster();
    let h = nodes[0].handle();
    assert_eq!(h.num_shards(), 2);
    // Publish more messages than shards so both sub-streams carry data.
    let mut last = 0;
    for i in 0..6u32 {
        last = h
            .publish(
                Bytes::from(format!("m{i}").into_bytes()),
                Duration::from_secs(1),
            )
            .expect("publish");
    }
    assert_eq!(last, 6, "global sequence numbers are gapless");
    assert!(
        h.waitfor(NodeId(0), "AllRemote", last, Duration::from_secs(10))
            .expect("known predicate"),
        "aggregated frontier covers the last global publish"
    );
    let (frontier, _) = h.stability_frontier(NodeId(0), "AllRemote").unwrap();
    assert!(frontier >= last);
    shutdown(&nodes);
}

#[test]
fn deliveries_reach_mirrors_in_global_fifo_order() {
    let nodes = cluster();
    let log: Arc<Mutex<Vec<SeqNo>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let log = Arc::clone(&log);
        nodes[2].handle().on_deliver(move |origin, seq, payload| {
            assert_eq!(origin, NodeId(0));
            assert_eq!(payload, &Bytes::from(format!("p{seq}").into_bytes()));
            log.lock().push(seq);
        });
    }
    let h = nodes[0].handle();
    let mut last = 0;
    for i in 1..=50u64 {
        last = h
            .publish(
                Bytes::from(format!("p{i}").into_bytes()),
                Duration::from_secs(1),
            )
            .expect("publish");
    }
    assert!(h
        .waitfor(NodeId(0), "AllRemote", last, Duration::from_secs(10))
        .unwrap());
    // Deliveries are asynchronous upcalls; give the dispatcher a moment.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while log.lock().len() < 50 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let seqs = log.lock().clone();
    assert_eq!(
        seqs,
        (1..=50).collect::<Vec<SeqNo>>(),
        "global FIFO order despite round-robin sharding"
    );
    assert_eq!(nodes[2].handle().delivered_global(NodeId(0)), 50);
    shutdown(&nodes);
}

#[test]
fn concurrent_publishers_get_gapless_globals() {
    let nodes = cluster();
    let h = nodes[0].handle();
    let mut seen: Vec<SeqNo> = Vec::new();
    let mut joins = Vec::new();
    for _ in 0..4 {
        let h = h.clone();
        joins.push(std::thread::spawn(move || {
            let mut mine = Vec::new();
            for _ in 0..25 {
                mine.push(
                    h.publish(Bytes::from_static(b"x"), Duration::from_secs(5))
                        .expect("publish"),
                );
            }
            mine
        }));
    }
    for j in joins {
        seen.extend(j.join().expect("publisher thread"));
    }
    seen.sort_unstable();
    assert_eq!(
        seen,
        (1..=100).collect::<Vec<SeqNo>>(),
        "4 threads x 25 publishes produce globals 1..=100 with no gap or dup"
    );
    assert!(h
        .waitfor(NodeId(0), "AllRemote", 100, Duration::from_secs(10))
        .unwrap());
    shutdown(&nodes);
}

#[test]
fn monitor_fires_monotonically_on_aggregate() {
    let nodes = cluster();
    let h = nodes[0].handle();
    let seqs: Arc<Mutex<Vec<SeqNo>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let seqs = Arc::clone(&seqs);
        h.monitor_stability_frontier(NodeId(0), "OneRemote", move |u| {
            seqs.lock().push(u.seq);
        });
    }
    let mut last = 0;
    for _ in 0..10 {
        last = h
            .publish(Bytes::from_static(b"tick"), Duration::from_secs(1))
            .expect("publish");
    }
    assert!(h
        .waitfor(NodeId(0), "OneRemote", last, Duration::from_secs(10))
        .unwrap());
    // Monitors run on the dispatcher thread; wait for the tail event.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while seqs.lock().last().copied() != Some(last) && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let seqs = seqs.lock().clone();
    assert!(!seqs.is_empty(), "monitor fired");
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "aggregated frontier advances strictly monotonically: {seqs:?}"
    );
    assert_eq!(seqs.last().copied(), Some(last));
    shutdown(&nodes);
}

#[test]
fn key_hash_routing_and_remote_stream_watching() {
    let cfg = stabilizer_core::ClusterConfig::parse(CFG).expect("config parses");
    let nodes = spawn_sharded_local_cluster(&cfg, RoutePolicy::KeyHash).expect("cluster boots");
    let origin = nodes[0].handle();
    let mirror = nodes[2].handle();
    // A mirror registering a predicate over the origin's stream sees the
    // aggregated frontier in global terms.
    mirror
        .register_predicate(NodeId(0), "mine", "MAX($3)")
        .expect("remote predicate registers");
    let mut last = 0;
    for i in 0..8u32 {
        // Two alternating keys: each key's messages stay on one shard.
        let key = if i % 2 == 0 {
            b"alpha".as_ref()
        } else {
            b"beta".as_ref()
        };
        last = origin
            .publish_with_key(
                Bytes::from(format!("k{i}").into_bytes()),
                key,
                Duration::from_secs(1),
            )
            .expect("publish");
    }
    assert_eq!(last, 8);
    assert!(mirror
        .waitfor(NodeId(0), "mine", last, Duration::from_secs(10))
        .expect("registered key"));
    shutdown(&nodes);
}

#[test]
fn change_predicate_bumps_generation_everywhere() {
    let nodes = cluster();
    let h = nodes[0].handle();
    let seq = h
        .publish(Bytes::from_static(b"gen"), Duration::from_secs(1))
        .expect("publish");
    assert!(h
        .waitfor(NodeId(0), "AllRemote", seq, Duration::from_secs(10))
        .unwrap());
    let (_, gen_before) = h.stability_frontier(NodeId(0), "AllRemote").unwrap();
    h.change_predicate(NodeId(0), "AllRemote", "MAX($ALLWNODES-$MYWNODE)")
        .expect("change predicate");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let (_, generation) = h.stability_frontier(NodeId(0), "AllRemote").unwrap();
        if generation > gen_before {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "aggregate adopted the new generation"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The relaxed predicate still covers new publishes.
    let seq = h
        .publish(Bytes::from_static(b"gen2"), Duration::from_secs(1))
        .expect("publish");
    assert!(h
        .waitfor(NodeId(0), "AllRemote", seq, Duration::from_secs(10))
        .unwrap());
    shutdown(&nodes);
}

#[test]
fn single_shard_matches_unsharded_semantics() {
    let cfg = stabilizer_core::ClusterConfig::parse(
        "
az East e1 e2
az West w1
predicate AllRemote MIN($ALLWNODES-$MYWNODE)
",
    )
    .expect("config parses");
    // No `option shards` line: defaults to 1 shard.
    let nodes = spawn_sharded_local_cluster(&cfg, RoutePolicy::RoundRobin).expect("boots");
    let h = nodes[0].handle();
    assert_eq!(h.num_shards(), 1);
    let seq = h
        .publish(Bytes::from_static(b"solo"), Duration::from_secs(1))
        .expect("publish");
    assert_eq!(seq, 1);
    assert!(h
        .waitfor(NodeId(0), "AllRemote", seq, Duration::from_secs(10))
        .unwrap());
    shutdown(&nodes);
}
