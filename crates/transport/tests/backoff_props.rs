//! Property tests for the reconnect backoff: for every `(base, max,
//! seed)` the jittered schedule stays inside the equal-jitter envelope
//! `[cur/2, cur)` of the capped doubling sequence, is fully determined
//! by its seed, and restarts from the base window after a reset.

use proptest::prelude::*;
use stabilizer_transport::backoff::{link_seed, Backoff};
use std::time::Duration;

/// The deterministic envelope the `k`-th delay must fall in:
/// `cur_k = min(base * 2^k, max)`, delay in `[max(cur_k/2, 1ns), cur_k)`.
fn envelope(base_ns: u64, max_ns: u64, steps: usize) -> Vec<(u64, u64)> {
    let max_ns = max_ns.max(base_ns);
    let mut cur = base_ns;
    (0..steps)
        .map(|_| {
            let lo = (cur / 2).max(1);
            let bounds = (lo, cur);
            cur = (cur * 2).min(max_ns);
            bounds
        })
        .collect()
}

proptest! {
    /// Every delay sits inside the capped-doubling jitter window, for
    /// arbitrary base/max (including degenerate max < base, which the
    /// constructor clamps) and any seed.
    #[test]
    fn delays_stay_within_jitter_envelope(
        base_ms in 1u64..200,
        max_ms in 1u64..2_000,
        seed in any::<u64>(),
    ) {
        let mut b = Backoff::new(
            Duration::from_millis(base_ms),
            Duration::from_millis(max_ms),
            seed,
        );
        let env = envelope(base_ms * 1_000_000, max_ms * 1_000_000, 16);
        for (k, &(lo, hi)) in env.iter().enumerate() {
            let d = b.next_delay().as_nanos() as u64;
            prop_assert!(
                d >= lo && d < hi,
                "delay {k} = {d}ns outside [{lo}, {hi})"
            );
        }
        prop_assert_eq!(b.attempts(), 16);
    }

    /// The schedule is a pure function of the seed: same seed replays
    /// byte-identically, and a reset replays the prefix again.
    #[test]
    fn schedule_is_deterministic_per_seed(
        base_ms in 1u64..100,
        max_ms in 100u64..1_000,
        seed in any::<u64>(),
    ) {
        let schedule = |seed: u64| {
            let mut b = Backoff::new(
                Duration::from_millis(base_ms),
                Duration::from_millis(max_ms),
                seed,
            );
            (0..12).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        prop_assert_eq!(schedule(seed), schedule(seed));
        // A different seed diverges somewhere in the window (jitter is
        // 50% of each step, so 12 identical draws from two splitmix
        // streams would be a collision of astronomically low odds).
        prop_assert_ne!(schedule(seed), schedule(seed ^ 0x9e37_79b9));
    }

    /// After `reset()` the very next delay is drawn from the base
    /// window again, however far the schedule had escalated.
    #[test]
    fn reset_returns_to_base_window(
        base_ms in 2u64..100,
        grow in 1usize..12,
        seed in any::<u64>(),
    ) {
        let base = Duration::from_millis(base_ms);
        let mut b = Backoff::new(base, Duration::from_millis(base_ms * 64), seed);
        for _ in 0..grow {
            b.next_delay();
        }
        b.reset();
        prop_assert_eq!(b.attempts(), 0);
        let d = b.next_delay();
        prop_assert!(
            d >= base / 2 && d < base,
            "post-reset delay {d:?} not in [{:?}, {base:?})", base / 2
        );
    }

    /// Link seeds separate directions and clusters: the derived seed for
    /// `me -> peer` never equals `peer -> me` (distinct links must not
    /// share a retry schedule), and it is stable per input.
    #[test]
    fn link_seed_distinguishes_directions(
        cluster in any::<u64>(),
        me in 0u16..512,
        peer in 0u16..512,
    ) {
        // The shim has no prop_assume; dodge the diagonal directly.
        let peer = if peer == me { peer ^ 1 } else { peer };
        prop_assert_ne!(link_seed(cluster, me, peer), link_seed(cluster, peer, me));
        prop_assert_eq!(link_seed(cluster, me, peer), link_seed(cluster, me, peer));
    }
}
