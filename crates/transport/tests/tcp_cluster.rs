//! End-to-end tests of the threaded TCP runtime on localhost: the same
//! protocol that the simulator exercises, over real sockets.

use bytes::Bytes;
use stabilizer_core::{ClusterConfig, NodeId};
use stabilizer_transport::spawn_local_cluster;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CFG: &str = "\
az East e1 e2
az West w1
predicate AllRemote MIN($ALLWNODES-$MYWNODE)
predicate OneRemote MAX($ALLWNODES-$MYWNODE)
";

fn cluster() -> Vec<stabilizer_transport::TcpNode> {
    spawn_local_cluster(&ClusterConfig::parse(CFG).unwrap()).unwrap()
}

#[test]
fn publish_waitfor_roundtrip() {
    let nodes = cluster();
    let h = nodes[0].handle();
    let seq = h
        .publish(Bytes::from_static(b"hello wan"), Duration::from_secs(1))
        .unwrap();
    assert!(h
        .waitfor(NodeId(0), "AllRemote", seq, Duration::from_secs(10))
        .unwrap());
    let (frontier, _) = h.stability_frontier(NodeId(0), "AllRemote").unwrap();
    assert!(frontier >= seq);
    for n in &nodes {
        n.handle().shutdown();
    }
}

#[test]
fn deliveries_reach_every_peer_in_order() {
    let nodes = cluster();
    let h0 = nodes[0].handle();
    let seen: Arc<parking_lot::Mutex<Vec<u64>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
    {
        let seen = Arc::clone(&seen);
        nodes[2].handle().on_deliver(move |origin, seq, payload| {
            assert_eq!(origin, NodeId(0));
            assert_eq!(payload.len(), 32);
            seen.lock().push(seq);
        });
    }
    let mut last = 0;
    for _ in 0..50 {
        last = h0
            .publish(Bytes::from(vec![9u8; 32]), Duration::from_secs(1))
            .unwrap();
    }
    assert!(h0
        .waitfor(NodeId(0), "AllRemote", last, Duration::from_secs(10))
        .unwrap());
    let seen = seen.lock();
    assert_eq!(
        *seen,
        (1..=50).collect::<Vec<u64>>(),
        "FIFO delivery violated"
    );
    for n in &nodes {
        n.handle().shutdown();
    }
}

#[test]
fn monitor_fires_monotonically() {
    let nodes = cluster();
    let h = nodes[0].handle();
    let high = Arc::new(AtomicU64::new(0));
    {
        let high = Arc::clone(&high);
        h.monitor_stability_frontier(NodeId(0), "AllRemote", move |u| {
            let prev = high.swap(u.seq, Ordering::SeqCst);
            assert!(u.seq >= prev, "frontier regressed {prev} -> {}", u.seq);
        });
    }
    let mut last = 0;
    for _ in 0..20 {
        last = h
            .publish(Bytes::from(vec![0u8; 64]), Duration::from_secs(1))
            .unwrap();
    }
    assert!(h
        .waitfor(NodeId(0), "AllRemote", last, Duration::from_secs(10))
        .unwrap());
    assert_eq!(high.load(Ordering::SeqCst), last);
    for n in &nodes {
        n.handle().shutdown();
    }
}

#[test]
fn change_predicate_over_tcp() {
    let nodes = cluster();
    let h = nodes[0].handle();
    let seq = h
        .publish(Bytes::from_static(b"x"), Duration::from_secs(1))
        .unwrap();
    assert!(h
        .waitfor(NodeId(0), "OneRemote", seq, Duration::from_secs(10))
        .unwrap());
    // Swap OneRemote to the stronger all-remotes form; frontier catches up.
    h.change_predicate(NodeId(0), "OneRemote", "MIN($ALLWNODES-$MYWNODE)")
        .unwrap();
    assert!(h
        .waitfor(NodeId(0), "OneRemote", seq, Duration::from_secs(10))
        .unwrap());
    for n in &nodes {
        n.handle().shutdown();
    }
}

#[test]
fn waitfor_times_out_without_acks() {
    let nodes = cluster();
    let h = nodes[1].handle();
    // Waiting on a sequence that was never published times out cleanly.
    let ok = h
        .waitfor(NodeId(1), "AllRemote", 999, Duration::from_millis(200))
        .unwrap();
    assert!(!ok);
    for n in &nodes {
        n.handle().shutdown();
    }
}

#[test]
fn remote_stream_watching_over_tcp() {
    let nodes = cluster();
    // Node 2 watches node 0's stream with its own predicate.
    let h2 = nodes[2].handle();
    h2.register_predicate(NodeId(0), "mine", "MAX($3)").unwrap(); // $3 == node id 2 (1-based)
    let h0 = nodes[0].handle();
    let seq = h0
        .publish(Bytes::from_static(b"watched"), Duration::from_secs(1))
        .unwrap();
    assert!(h2
        .waitfor(NodeId(0), "mine", seq, Duration::from_secs(10))
        .unwrap());
    assert_eq!(h2.received_of(NodeId(0)), seq);
    for n in &nodes {
        n.handle().shutdown();
    }
}

#[test]
fn concurrent_publishers_share_one_handle_safely() {
    let nodes = cluster();
    let h = nodes[0].handle();
    let mut threads = Vec::new();
    for _ in 0..4 {
        let h = h.clone();
        threads.push(std::thread::spawn(move || {
            let mut seqs = Vec::new();
            for _ in 0..25 {
                seqs.push(
                    h.publish(Bytes::from(vec![0u8; 128]), Duration::from_secs(2))
                        .unwrap(),
                );
            }
            seqs
        }));
    }
    let mut all: Vec<u64> = threads
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect();
    all.sort_unstable();
    // 100 unique, gapless sequence numbers despite concurrent callers.
    assert_eq!(all, (1..=100).collect::<Vec<u64>>());
    assert!(h
        .waitfor(NodeId(0), "AllRemote", 100, Duration::from_secs(15))
        .unwrap());
    for n in &nodes {
        n.handle().shutdown();
    }
}

#[test]
fn deny_mode_rejects_predicate_at_install_over_tcp() {
    use stabilizer_core::CoreError;
    // Same deployment plus install-time analysis enforcement.
    let cfg = ClusterConfig::parse(&format!("{CFG}option analysis deny\n")).unwrap();
    let nodes = spawn_local_cluster(&cfg).unwrap();
    // At w1 (node 2, alone in its AZ) $MYAZWNODES-$MYWNODE is empty: the
    // predicate compiles — the empty set silently drops out of the
    // reduction — but deny-mode analysis rejects the install.
    let err = nodes[2]
        .handle()
        .register_predicate(NodeId(2), "AzOrFirst", "MAX($3, $MYAZWNODES-$MYWNODE)")
        .unwrap_err();
    match &err {
        CoreError::PredicateRejected { key, report } => {
            assert_eq!(key, "AzOrFirst");
            assert!(report.contains("empty-set"), "report:\n{report}");
        }
        other => panic!("expected PredicateRejected, got {other:?}"),
    }
    assert!(nodes[2]
        .handle()
        .stability_frontier(NodeId(2), "AzOrFirst")
        .is_none());
    // The same source installs fine at e2 (node 1): its operands are w1
    // plus its AZ peer e1, both remote.
    nodes[1]
        .handle()
        .register_predicate(NodeId(1), "AzOrFirst", "MAX($3, $MYAZWNODES-$MYWNODE)")
        .expect("predicate is clean at a node with an AZ peer");
    for n in &nodes {
        n.handle().shutdown();
    }
}
