//! Property tests for the transport framing layer: arbitrary messages
//! round-trip byte-exactly through the length-prefixed wire format, and
//! malformed streams — truncated, corrupted, oversized — are rejected
//! gracefully (an error or clean EOF, never a panic) without
//! desynchronizing the frames that preceded them.

use bytes::Bytes;
use proptest::prelude::*;
use stabilizer_core::{Ack, NodeId, WireMsg};
use stabilizer_dsl::AckTypeId;
use stabilizer_transport::framing::{read_frame, write_frame, MAX_FRAME};
use std::io::Cursor;

fn arb_wiremsg() -> impl Strategy<Value = WireMsg> {
    prop_oneof![
        (
            0u16..16,
            1u64..1_000_000,
            proptest::collection::vec(any::<u8>(), 0..2048)
        )
            .prop_map(|(origin, seq, payload)| WireMsg::Data {
                origin: NodeId(origin),
                seq,
                payload: Bytes::from(payload),
            }),
        proptest::collection::vec((0u16..16, 0u16..8, any::<u64>()), 0..24).prop_map(|acks| {
            WireMsg::AckBatch(
                acks.into_iter()
                    .map(|(s, t, q)| Ack {
                        stream: NodeId(s),
                        ty: AckTypeId(t),
                        seq: q,
                    })
                    .collect(),
            )
        }),
        Just(WireMsg::Heartbeat),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any sequence of messages round-trips through a frame stream, in
    /// order, ending with a clean EOF.
    #[test]
    fn frame_streams_roundtrip(msgs in proptest::collection::vec(arb_wiremsg(), 1..12)) {
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for m in &msgs {
            let got = read_frame(&mut cur).unwrap();
            prop_assert_eq!(got.as_ref(), Some(m));
        }
        prop_assert!(read_frame(&mut cur).unwrap().is_none());
    }

    /// Truncating a valid stream anywhere never panics: every frame
    /// fully inside the cut still decodes, and the cut itself reads as
    /// a clean EOF (truncated prefix) or an error (truncated body) —
    /// never as a bogus message.
    #[test]
    fn truncation_never_panics_or_fabricates(
        msgs in proptest::collection::vec(arb_wiremsg(), 1..8),
        cut_ppm in 0u32..1_000_000,
    ) {
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
            boundaries.push(buf.len());
        }
        let cut = (buf.len() as u64 * u64::from(cut_ppm) / 1_000_000) as usize;
        let whole_frames = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        let mut cur = Cursor::new(&buf[..cut]);
        for m in msgs.iter().take(whole_frames) {
            let got = read_frame(&mut cur).unwrap();
            prop_assert_eq!(got.as_ref(), Some(m));
        }
        if cut > boundaries[whole_frames] {
            // Mid-frame cut: prefix-only reads as clean EOF, mid-body is
            // an error; either way no message is fabricated.
            match read_frame(&mut cur) {
                Ok(None) | Err(_) => {}
                Ok(Some(m)) => prop_assert!(false, "fabricated message from a cut: {m:?}"),
            }
        } else {
            prop_assert!(read_frame(&mut cur).unwrap().is_none());
        }
    }

    /// Corrupting one byte of a frame body never panics, and every frame
    /// *before* the corrupted one still decodes (no desync upstream).
    #[test]
    fn corruption_is_contained_to_its_frame(
        msgs in proptest::collection::vec(arb_wiremsg(), 2..8),
        victim_ppm in 0u32..1_000_000,
        byte_ppm in 0u32..1_000_000,
        flip in 1u8..=255,
    ) {
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
            boundaries.push(buf.len());
        }
        let victim = (msgs.len() as u64 * u64::from(victim_ppm) / 1_000_000) as usize;
        let (start, end) = (boundaries[victim], boundaries[victim + 1]);
        // Corrupt a body byte (offset >= 4 skips the length prefix, so
        // framing stays aligned and the damage is the decoder's to catch).
        let body = end - start - 4;
        let off = start + 4 + (body as u64 * u64::from(byte_ppm) / 1_000_000) as usize;
        let off = off.min(end - 1);
        buf[off] ^= flip;
        let mut cur = Cursor::new(buf);
        for m in msgs.iter().take(victim) {
            let got = read_frame(&mut cur).unwrap();
            prop_assert_eq!(got.as_ref(), Some(m));
        }
        // The victim frame either errors out or decodes to *something*
        // (a flipped payload byte is still a valid message); both are
        // acceptable — the property is no panic and no upstream damage.
        let _ = read_frame(&mut cur);
    }

    /// A length prefix beyond the limit is rejected before any
    /// allocation of that size is attempted.
    #[test]
    fn oversized_prefix_is_rejected(extra in 1u32..u32::MAX - MAX_FRAME) {
        let mut buf = (MAX_FRAME + extra).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0; 8]);
        prop_assert!(read_frame(&mut Cursor::new(buf)).is_err());
    }

    /// Arbitrary garbage bytes never panic the reader.
    #[test]
    fn arbitrary_bytes_never_panic(junk in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut cur = Cursor::new(junk);
        // Drain until EOF or error; only termination matters.
        while let Ok(Some(_)) = read_frame(&mut cur) {}
    }
}
