//! Live telemetry endpoint on the TCP runtimes: spawn with
//! `serve_addr`, scrape all four routes over real HTTP while the
//! cluster is running, and check the bodies parse.

use bytes::Bytes;
use stabilizer_core::{AckTypeRegistry, ClusterConfig, NodeId};
use stabilizer_shard::RoutePolicy;
use stabilizer_telemetry::{http_get, parse_json, Telemetry};
use stabilizer_transport::{
    spawn_node_with, spawn_sharded_node, ShardedSpawnOptions, SpawnOptions,
};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn wait_until(mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "condition not reached in 10s");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn bind_pair() -> (Vec<TcpListener>, Vec<SocketAddr>) {
    let mut listeners = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..2 {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        addrs.push(l.local_addr().expect("addr"));
        listeners.push(l);
    }
    (listeners, addrs)
}

fn peers_of(i: usize, addrs: &[SocketAddr]) -> Vec<(NodeId, SocketAddr)> {
    (0..addrs.len())
        .filter(|j| *j != i)
        .map(|j| (NodeId(j as u16), addrs[j]))
        .collect()
}

#[test]
fn tcp_runtime_serves_all_routes_live() {
    let cfg = ClusterConfig::parse("az East a b\npredicate k MIN($ALLWNODES)\n").expect("config");
    let telemetry = Telemetry::new_wall_clock();
    let acks = Arc::new(AckTypeRegistry::new());
    let (listeners, addrs) = bind_pair();
    let mut nodes = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let node = spawn_node_with(
            cfg.clone(),
            NodeId(i as u16),
            Arc::clone(&acks),
            listener,
            peers_of(i, &addrs),
            SpawnOptions {
                observer: Some(Box::new(telemetry.observer(NodeId(i as u16)))),
                telemetry: Some(Arc::clone(&telemetry)),
                serve_addr: (i == 0).then(|| "127.0.0.1:0".to_string()),
                ..SpawnOptions::default()
            },
        )
        .expect("spawn");
        nodes.push(node);
    }
    let h0 = nodes[0].handle();
    let h1 = nodes[1].handle();
    let serve = h0.serve_addr().expect("node 0 serves").to_string();
    assert!(h1.serve_addr().is_none(), "node 1 got no serve_addr");

    let seq = h0
        .publish(Bytes::from_static(b"hello"), Duration::from_secs(5))
        .expect("publish");
    telemetry.note_publish_now(NodeId(0), seq, 5);
    wait_until(|| matches!(h0.stability_frontier(NodeId(0), "k"), Some((f, _)) if f >= seq));

    let (code, prom) = http_get(&serve, "/metrics").expect("GET /metrics");
    assert_eq!(code, 200);
    assert!(prom.contains("stab_build_info{"), "{prom}");
    assert!(prom.contains("stab_uptime_seconds"), "{prom}");
    assert!(
        prom.contains("stab_stability_latency_ns_bucket{key=\"k\""),
        "{prom}"
    );

    let (code, json) = http_get(&serve, "/metrics.json").expect("GET /metrics.json");
    assert_eq!(code, 200);
    let parsed = parse_json(&json).expect("json parses");
    assert!(parsed.get("exemplars").is_some(), "{json}");

    let (code, trace) = http_get(&serve, "/trace?n=5").expect("GET /trace");
    assert_eq!(code, 200);
    for line in trace.lines() {
        parse_json(line).expect("trace line parses");
    }

    // Both nodes cover the published seq, so nothing is stalled.
    let (code, stall) = http_get(&serve, "/stall").expect("GET /stall");
    assert_eq!(code, 200);
    let parsed = parse_json(&stall).expect("stall parses");
    let reports = parsed
        .get("reports")
        .and_then(|r| r.as_arr())
        .expect("reports array");
    assert!(
        reports
            .iter()
            .all(|r| r.get("stalled").and_then(|s| s.as_bool()) == Some(false)),
        "{stall}"
    );

    for node in &nodes {
        node.handle().shutdown();
    }
    // The endpoint goes down with the node.
    std::thread::sleep(Duration::from_millis(100));
    assert!(http_get(&serve, "/metrics").is_err());
}

#[test]
fn sharded_runtime_serves_aggregated_routes() {
    let cfg = ClusterConfig::parse("az East a b\noption shards 2\npredicate k MIN($ALLWNODES)\n")
        .expect("config");
    let telemetry = Telemetry::new_wall_clock_sharded(2);
    let acks = Arc::new(AckTypeRegistry::new());
    let (listeners, addrs) = bind_pair();
    let mut nodes = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let node = spawn_sharded_node(
            cfg.clone(),
            NodeId(i as u16),
            Arc::clone(&acks),
            listener,
            peers_of(i, &addrs),
            ShardedSpawnOptions {
                policy: RoutePolicy::RoundRobin,
                telemetry: Some(Arc::clone(&telemetry)),
                jitter_seed: i as u64,
                serve_addr: (i == 0).then(|| "127.0.0.1:0".to_string()),
            },
        )
        .expect("spawn sharded");
        nodes.push(node);
    }
    let h0 = nodes[0].handle();
    let serve = h0.serve_addr().expect("node 0 serves").to_string();

    let mut last = 0;
    for _ in 0..4 {
        last = h0
            .publish(Bytes::from_static(b"x"), Duration::from_secs(5))
            .expect("publish");
    }
    wait_until(|| matches!(h0.stability_frontier(NodeId(0), "k"), Some((f, _)) if f >= last));

    let (code, prom) = http_get(&serve, "/metrics").expect("GET /metrics");
    assert_eq!(code, 200);
    assert!(prom.contains("shards=\"2\""), "{prom}");
    assert!(prom.contains("stab_shard_queue_depth{"), "{prom}");

    // /stall reports carry per-shard blame; nothing stalls here.
    let (code, stall) = http_get(&serve, "/stall").expect("GET /stall");
    assert_eq!(code, 200);
    let parsed = parse_json(&stall).expect("stall parses");
    let reports = parsed
        .get("reports")
        .and_then(|r| r.as_arr())
        .expect("reports array");
    assert!(!reports.is_empty(), "{stall}");
    assert!(reports.iter().all(|r| r.get("shard").is_some()), "{stall}");

    for node in &nodes {
        node.handle().shutdown();
    }
}
