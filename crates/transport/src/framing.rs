//! Length-prefixed framing over TCP streams.
//!
//! Frame layout: `u32` little-endian payload length, then the encoded
//! [`WireMsg`]. The first frame on every outbound connection is a hello
//! carrying the sender's node id, so the accepting side can demultiplex
//! peers without configuration-order coupling.

use stabilizer_core::{CoreError, WireMsg};
use std::io::{Read, Write};

/// Maximum accepted frame size (1 GiB would be absurd for a control or
/// 64 KiB-capped data message; this guards against corrupt prefixes).
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Write one frame, returning the number of bytes put on the wire
/// (length prefix included) so the transport can account traffic.
///
/// Data payloads are written straight from their shared buffer: only the
/// length prefix and the 15-byte message header are materialized, so a
/// payload fanned out to N peers is **not** copied into N contiguous
/// scratch buffers first. Pair with a buffered writer to keep the
/// prefix+payload pair in one TCP segment for small messages.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame<W: Write>(w: &mut W, msg: &WireMsg) -> std::io::Result<usize> {
    // Reserve the length prefix, encode the body prefix after it, then
    // patch the real length in — one small buffer, no payload bytes.
    let mut head = Vec::with_capacity(4 + 32);
    head.extend_from_slice(&[0u8; 4]);
    let payload = msg.encode_prefix(&mut head);
    let body_len = head.len() - 4 + payload.map_or(0, bytes::Bytes::len);
    head[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
    w.write_all(&head)?;
    if let Some(p) = payload {
        w.write_all(p)?;
    }
    Ok(4 + body_len)
}

/// Sentinel shard index marking a hello frame on sharded connections.
pub const HELLO_SHARD: u16 = u16::MAX;

/// Write one **sharded** frame: `u32` little-endian length (covering the
/// shard index and the body), then the `u16` little-endian shard index,
/// then the encoded message. Returns bytes put on the wire.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_shard_frame<W: Write>(w: &mut W, shard: u16, msg: &WireMsg) -> std::io::Result<usize> {
    let mut head = Vec::with_capacity(6 + 32);
    head.extend_from_slice(&[0u8; 4]);
    head.extend_from_slice(&shard.to_le_bytes());
    let payload = msg.encode_prefix(&mut head);
    let body_len = head.len() - 4 + payload.map_or(0, bytes::Bytes::len);
    head[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
    w.write_all(&head)?;
    if let Some(p) = payload {
        w.write_all(p)?;
    }
    Ok(4 + body_len)
}

/// Read one sharded frame; `Ok(None)` on clean EOF at a frame boundary.
/// Returns `(shard, message, wire_bytes)`.
///
/// # Errors
///
/// I/O errors, oversized or undersized frames, or undecodable bodies.
pub fn read_shard_frame_counted<R: Read>(
    r: &mut R,
) -> std::io::Result<Option<(u16, WireMsg, usize)>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    if len < 2 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "sharded frame lacks shard index",
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let shard = u16::from_le_bytes(body[..2].try_into().unwrap());
    let msg = WireMsg::decode(&body[2..]).map_err(|e: CoreError| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    })?;
    Ok(Some((shard, msg, 4 + len as usize)))
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// I/O errors, oversized frames, or undecodable bodies.
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<WireMsg>> {
    Ok(read_frame_counted(r)?.map(|(msg, _)| msg))
}

/// [`read_frame`] that also reports the wire size of the frame (length
/// prefix included), for transport traffic accounting.
///
/// # Errors
///
/// I/O errors, oversized frames, or undecodable bodies.
pub fn read_frame_counted<R: Read>(r: &mut R) -> std::io::Result<Option<(WireMsg, usize)>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let msg = WireMsg::decode(&body).map_err(|e: CoreError| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    })?;
    Ok(Some((msg, 4 + len as usize)))
}

/// Encode a hello frame announcing `node_id` (a zero-length `Data`
/// message is reserved for this; real data always has `seq >= 1`).
pub fn hello(node_id: u16) -> WireMsg {
    WireMsg::Data {
        origin: stabilizer_core::NodeId(node_id),
        seq: 0,
        payload: bytes::Bytes::new(),
    }
}

/// If `msg` is a hello, return the announced node id.
pub fn parse_hello(msg: &WireMsg) -> Option<u16> {
    match msg {
        WireMsg::Data {
            origin,
            seq: 0,
            payload,
        } if payload.is_empty() => Some(origin.0),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use stabilizer_core::NodeId;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let msgs = vec![
            WireMsg::Heartbeat,
            WireMsg::Data {
                origin: NodeId(2),
                seq: 5,
                payload: Bytes::from_static(b"xyz"),
            },
            WireMsg::AckBatch(vec![]),
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for m in &msgs {
            assert_eq!(read_frame(&mut cur).unwrap().as_ref(), Some(m));
        }
        assert_eq!(read_frame(&mut cur).unwrap(), None);
    }

    #[test]
    fn clean_eof_mid_prefix_is_none_mid_body_is_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireMsg::Heartbeat).unwrap();
        let mut cur = Cursor::new(&buf[..2]); // truncated length prefix
        assert!(cur.get_ref().len() < 4);
        assert!(read_frame(&mut cur).unwrap().is_none());
        let mut cur = Cursor::new(&buf[..4]); // prefix but no body
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(read_frame(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn wire_sizes_match_both_directions() {
        let msg = WireMsg::Data {
            origin: NodeId(1),
            seq: 3,
            payload: Bytes::from_static(b"hello"),
        };
        let mut buf = Vec::new();
        let wrote = write_frame(&mut buf, &msg).unwrap();
        assert_eq!(wrote, buf.len());
        let (got, read) = read_frame_counted(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(got, msg);
        assert_eq!(read, wrote);
    }

    #[test]
    fn shard_frames_roundtrip() {
        let msgs = vec![
            (0u16, WireMsg::Heartbeat),
            (
                3,
                WireMsg::Data {
                    origin: NodeId(1),
                    seq: 9,
                    payload: Bytes::from_static(b"payload"),
                },
            ),
            (HELLO_SHARD, hello(4)),
        ];
        let mut buf = Vec::new();
        let mut sizes = Vec::new();
        for (shard, m) in &msgs {
            sizes.push(write_shard_frame(&mut buf, *shard, m).unwrap());
        }
        let mut cur = Cursor::new(buf);
        for ((shard, m), wrote) in msgs.iter().zip(sizes) {
            let (s, got, read) = read_shard_frame_counted(&mut cur).unwrap().unwrap();
            assert_eq!(s, *shard);
            assert_eq!(&got, m);
            assert_eq!(read, wrote);
        }
        assert!(read_shard_frame_counted(&mut cur).unwrap().is_none());
    }

    #[test]
    fn shard_frame_without_index_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(0);
        assert!(read_shard_frame_counted(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn hello_roundtrip() {
        let h = hello(6);
        assert_eq!(parse_hello(&h), Some(6));
        let not_hello = WireMsg::Data {
            origin: NodeId(6),
            seq: 1,
            payload: Bytes::new(),
        };
        assert_eq!(parse_hello(&not_hello), None);
        assert_eq!(parse_hello(&WireMsg::Heartbeat), None);
    }
}
