//! # Stabilizer TCP runtime
//!
//! Runs the sans-IO [`StabilizerNode`](stabilizer_core::StabilizerNode)
//! over real TCP sockets with a thread-per-connection layout. The paper's
//! prototype uses an asynchronous runtime for the same purpose; plain
//! threads plus crossbeam channels give identical control/data-plane
//! separation with a dependency footprint limited to the approved crate
//! set (see DESIGN.md).
//!
//! [`spawn_local_cluster`] boots an N-node deployment on localhost for
//! tests and demos; [`spawn_node`] wires one node given a listener plus
//! peer addresses, for genuinely distributed runs.
//!
//! ```no_run
//! use stabilizer_transport::spawn_local_cluster;
//! use stabilizer_core::{ClusterConfig, NodeId};
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ClusterConfig::parse("
//!     az East e1 e2
//!     az West w1
//!     predicate AllRemote MIN($ALLWNODES-$MYWNODE)
//! ")?;
//! let cluster = spawn_local_cluster(&cfg)?;
//! let h = cluster[0].handle();
//! let seq = h.publish(Bytes::from_static(b"hi"), Duration::from_secs(1))?;
//! assert!(h.waitfor(NodeId(0), "AllRemote", seq, Duration::from_secs(5))?);
//! for n in &cluster { n.handle().shutdown(); }
//! # Ok(()) }
//! ```

pub mod backoff;
pub mod framing;
pub mod handle;
pub mod runtime;
pub mod sharded;

pub use handle::{NodeHandle, StateGuard};
pub use runtime::{
    spawn_local_cluster, spawn_node, spawn_node_with, MetricsDump, SpawnOptions, TcpNode,
    TransportMetrics,
};
pub use sharded::{
    spawn_sharded_local_cluster, spawn_sharded_local_cluster_with, spawn_sharded_node,
    ShardedHandle, ShardedSpawnOptions, ShardedTcpNode,
};
