//! The sharded TCP runtime: S per-core stream shards behind one node.
//!
//! Each shard is a full sans-IO [`StabilizerNode`] with its own mutex,
//! driven by its own **worker thread**, so inbound protocol processing
//! scales across cores instead of serializing on one state-machine lock.
//! A [`ShardedFrontier`] aggregator min-combines the per-shard stability
//! frontiers into the node-level frontier and reassembles per-shard FIFO
//! deliveries into global FIFO order, keeping the application-visible
//! semantics (`publish`, `waitfor`, `monitor_stability_frontier`, FIFO
//! delivery) exactly those of the unsharded [`NodeHandle`].
//!
//! Thread layout per node:
//!
//! * one **accept** thread, spawning a **reader** thread per inbound
//!   connection; readers parse sharded frames (`[len][shard][body]`, see
//!   [`crate::framing::read_shard_frame_counted`]) and dispatch each
//!   message to its shard's worker over a crossbeam channel;
//! * one **worker** thread per shard, owning all `on_message` processing
//!   for that shard's sub-stream;
//! * one **writer** thread per peer, multiplexing every shard's outbound
//!   traffic onto a single buffered connection with the shard index in
//!   the frame header;
//! * one **dispatcher** thread running application callbacks (delivery
//!   upcalls, frontier monitors) outside every lock, in the exact order
//!   node-level events were produced under the aggregator lock;
//! * one **ticker** thread fanning the ACK-flush / heartbeat / failure /
//!   retransmit timers across shards and sampling per-shard telemetry
//!   (queue-depth gauges, per-shard progress gauges).
//!
//! Locking discipline, strictly ordered to stay deadlock-free:
//! `publish` lock (router + global sequencer) → one shard mutex →
//! aggregator mutex → leaf locks (`completed`, `senders`, `suspects`).
//! Node-level events are enqueued to the dispatcher *under* the
//! aggregator lock, so cross-shard delivery order is fixed exactly once;
//! callbacks then run with no lock held.

use crate::backoff::{link_seed, Backoff};
use crate::framing::{
    hello, parse_hello, read_shard_frame_counted, write_shard_frame, HELLO_SHARD,
};
use crate::handle::{DeliverFn, MonitorFn};
use crate::runtime::TransportMetrics;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use stabilizer_core::{
    AckTypeId, AckTypeRegistry, Action, ClusterConfig, CoreError, FrontierUpdate, Metrics, NodeId,
    RuntimeObserver, SeqNo, StabilizerNode, WaitToken, WireMsg, RECEIVED,
};
use stabilizer_shard::{encode_global, RoutePolicy, ShardRouter, ShardedFrontier, GLOBAL_HEADER};
use stabilizer_telemetry::{
    Gauge, LogHistogram, MetricsObserver, MetricsRegistry, ServerRoutes, StallProvider, Telemetry,
    TelemetryServer,
};
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Node-level events, ordered once under the aggregator lock and drained
/// by the dispatcher thread.
enum NodeEvent {
    Deliver {
        origin: NodeId,
        seq: SeqNo,
        payload: Bytes,
    },
    Frontier(FrontierUpdate),
    /// Global reassembly fast-forwarded out of band (§III-E): delivery
    /// of `stream` resumes after global `seq`.
    CatchUp {
        stream: NodeId,
        seq: SeqNo,
    },
}

/// Global-sequence assignment and shard routing for local publishes.
/// One lock holder at a time keeps `(global, shard)` transactional: a
/// failed shard publish never leaves a hole in the global sequence.
struct PublishState {
    router: ShardRouter,
    next_global: SeqNo,
}

/// Aggregator plus the origin-side per-shard stability bookkeeping that
/// must be read under the same lock (the shard→global mapping).
struct AggState {
    frontier: ShardedFrontier,
    /// `stamps[g-1]` = local publish time + 1 of own-stream global `g`
    /// (0 = unstamped); only maintained when telemetry is attached.
    stamps: Vec<u64>,
    /// Per `(key, shard)`: highest own-stream shard frontier already
    /// folded into that shard's stability histogram.
    covered: HashMap<(String, u16), SeqNo>,
    hists: HashMap<(String, u16), Arc<LogHistogram>>,
}

impl AggState {
    /// Fold a per-shard frontier advance of the own stream into the
    /// per-shard stability-latency histogram, translating shard-local
    /// sequence numbers back to globals through the mapping.
    fn record_shard_stability(
        &mut self,
        registry: &MetricsRegistry,
        me: NodeId,
        shard: u16,
        update: &FrontierUpdate,
        now: u64,
    ) {
        let from = {
            let cur = self.covered.entry((update.key.clone(), shard)).or_insert(0);
            if update.seq <= *cur {
                return;
            }
            let from = *cur;
            *cur = update.seq;
            from
        };
        let hist = match self.hists.get(&(update.key.clone(), shard)) {
            Some(h) => Arc::clone(h),
            None => {
                let sh = shard.to_string();
                let h = registry.histogram(
                    "stab_shard_stability_latency_ns",
                    &[("key", &update.key), ("shard", &sh)],
                );
                self.hists
                    .insert((update.key.clone(), shard), Arc::clone(&h));
                h
            }
        };
        let globals = self.frontier.shard_globals(me, shard);
        for q in from + 1..=update.seq {
            let Some(&g) = globals.get((q - 1) as usize) else {
                break;
            };
            if let Some(&stamp) = self.stamps.get((g - 1) as usize) {
                if stamp != 0 {
                    hist.record(now.saturating_sub(stamp - 1));
                }
            }
        }
    }
}

/// Per-shard gauges sampled by the ticker (labels `node` + `shard`).
struct ShardGauges {
    queue_depth: Gauge,
    send_buffer_bytes: Gauge,
    data_msgs_sent: Gauge,
    deliveries: Gauge,
    frontier_updates: Gauge,
    retransmits: Gauge,
}

impl ShardGauges {
    fn new(t: &Telemetry, me: NodeId, shard: u16) -> Self {
        let id = me.0.to_string();
        let sh = shard.to_string();
        let labels: &[(&str, &str)] = &[("node", &id), ("shard", &sh)];
        let reg = t.registry();
        ShardGauges {
            queue_depth: reg.gauge("stab_shard_queue_depth", labels),
            send_buffer_bytes: reg.gauge("stab_shard_send_buffer_bytes", labels),
            data_msgs_sent: reg.gauge("stab_shard_data_msgs_sent", labels),
            deliveries: reg.gauge("stab_shard_deliveries", labels),
            frontier_updates: reg.gauge("stab_shard_frontier_updates", labels),
            retransmits: reg.gauge("stab_shard_retransmits", labels),
        }
    }
}

/// State shared between the handle and the sharded runtime threads.
pub struct ShardedShared {
    me: NodeId,
    cfg: ClusterConfig,
    num_shards: u16,
    shards: Vec<Mutex<StabilizerNode>>,
    agg: Mutex<AggState>,
    publish: Mutex<PublishState>,
    completed: Mutex<HashSet<WaitToken>>,
    completed_cv: Condvar,
    monitors: Mutex<HashMap<(NodeId, String), Vec<MonitorFn>>>,
    deliver_fns: Mutex<Vec<DeliverFn>>,
    senders: Mutex<HashMap<NodeId, Sender<(u16, WireMsg)>>>,
    shard_txs: Vec<Sender<(NodeId, WireMsg)>>,
    event_tx: Sender<NodeEvent>,
    /// Per peer: how many shards currently suspect it.
    suspects: Mutex<Vec<u32>>,
    running: AtomicBool,
    started: Instant,
    telemetry: Option<Arc<Telemetry>>,
    metrics: Option<TransportMetrics>,
    shard_gauges: Vec<ShardGauges>,
    /// Live scrape endpoint (present iff
    /// [`ShardedSpawnOptions::serve_addr`] and `telemetry` are both
    /// set); joined on shutdown.
    telemetry_server: Mutex<Option<TelemetryServer>>,
}

impl ShardedShared {
    fn now_nanos(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Mutate one shard under its lock, then run its emitted actions
    /// through the aggregator with no shard lock held.
    fn with_shard<R>(&self, shard: u16, f: impl FnOnce(&mut StabilizerNode) -> R) -> R {
        let (r, actions) = {
            let mut node = self.shards[shard as usize].lock();
            let r = f(&mut node);
            (r, node.take_actions())
        };
        self.process_shard_actions(shard, actions);
        r
    }

    /// Route one shard's actions: sends to the per-peer writers, shard
    /// deliveries and frontier advances through the aggregator (which
    /// orders the resulting node-level events), suspicion into the
    /// deduplicating per-peer counts.
    fn process_shard_actions(&self, shard: u16, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    if let Some(tx) = self.senders.lock().get(&to) {
                        let _ = tx.send((shard, msg)); // writer gone => shutting down
                    }
                }
                Action::Deliver {
                    origin, payload, ..
                } => {
                    let mut agg = self.agg.lock();
                    let (ready, out) = agg
                        .frontier
                        .on_shard_deliver(shard, origin, &payload)
                        .expect("sharded payload carried no global-sequence header");
                    for (global, app_payload) in ready {
                        let _ = self.event_tx.send(NodeEvent::Deliver {
                            origin,
                            seq: global,
                            payload: app_payload,
                        });
                    }
                    self.apply_agg(out);
                }
                Action::Frontier(update) => {
                    let now = self.now_nanos();
                    let mut agg = self.agg.lock();
                    if update.stream == self.me {
                        if let Some(t) = &self.telemetry {
                            agg.record_shard_stability(t.registry(), self.me, shard, &update, now);
                        }
                    }
                    let out = agg.frontier.on_shard_frontier(shard, &update);
                    self.apply_agg(out);
                }
                // Shard-level waits are never created; node-level waits
                // live in the aggregator.
                Action::WaitDone { .. } => {}
                Action::Suspected { node } => {
                    self.suspects.lock()[node.0 as usize] += 1;
                }
                Action::Recovered { node } => {
                    let mut counts = self.suspects.lock();
                    let c = &mut counts[node.0 as usize];
                    *c = c.saturating_sub(1);
                }
                // Shards hold identical predicates, so auto-exclusion
                // breaks them in lockstep; like the unsharded runtime
                // this surfaces through monitor silence.
                Action::PredicateBroken { .. } => {}
                Action::CatchUp {
                    stream,
                    seq,
                    app_mark,
                } => {
                    let mut agg = self.agg.lock();
                    let (ready, out) = agg
                        .frontier
                        .fast_forward_origin(stream, shard, seq, app_mark);
                    let _ = self.event_tx.send(NodeEvent::CatchUp {
                        stream,
                        seq: agg.frontier.delivered_global(stream),
                    });
                    for (global, payload) in ready {
                        let _ = self.event_tx.send(NodeEvent::Deliver {
                            origin: stream,
                            seq: global,
                            payload,
                        });
                    }
                    self.apply_agg(out);
                }
            }
        }
    }

    /// Keep each shard machine's outgoing snapshot mark equal to the
    /// global of its last non-replayable own-stream message (the
    /// requester-side aggregator relies on every skipped global being
    /// ≤ mark and every replayable one being > mark). Run from the
    /// ticker's transfer branch: a request racing an eviction can see a
    /// stale mark, which only parks the requester until its next
    /// re-request picks up a fresh snapshot.
    fn refresh_transfer_marks(&self) {
        for s in 0..self.num_shards {
            let floor = {
                let node = self.shards[s as usize].lock();
                node.first_replayable().saturating_sub(1)
            };
            if floor == 0 {
                continue;
            }
            let mark = {
                let agg = self.agg.lock();
                agg.frontier
                    .shard_globals(self.me, s)
                    .get(floor as usize - 1)
                    .copied()
            };
            if let Some(mark) = mark {
                self.shards[s as usize].lock().set_app_mark(mark);
            }
        }
    }

    /// Emit aggregated events. Called with the aggregator lock held so
    /// the dispatcher sees node-level events in a single global order;
    /// `completed` and the condvar are leaf locks.
    fn apply_agg(&self, out: stabilizer_shard::AggOutput) {
        for update in out.updates {
            let _ = self.event_tx.send(NodeEvent::Frontier(update));
        }
        if !out.completed.is_empty() {
            let mut done = self.completed.lock();
            for token in out.completed {
                done.insert(token);
            }
            self.completed_cv.notify_all();
        }
    }

    /// Stop all runtime threads (idempotent).
    fn shutdown(&self) {
        self.running.store(false, Ordering::SeqCst);
        self.senders.lock().clear(); // disconnect writer channels
        if let Some(mut server) = self.telemetry_server.lock().take() {
            server.shutdown();
        }
    }

    /// Frontier blame for every `(shard, stream, key)`; sequence numbers
    /// in the reports are per-shard.
    fn explain_all(&self) -> Vec<(u16, stabilizer_core::StallReport)> {
        let mut reports = Vec::new();
        for s in 0..self.num_shards {
            let shard = self.shards[s as usize].lock();
            for report in shard.explain_all() {
                reports.push((s, report));
            }
        }
        reports
    }
}

/// A sharded node running on the TCP runtime. Dropping it does not stop
/// the node; call [`ShardedHandle::shutdown`].
pub struct ShardedTcpNode {
    handle: ShardedHandle,
}

impl ShardedTcpNode {
    /// The application handle.
    pub fn handle(&self) -> ShardedHandle {
        self.handle.clone()
    }
}

/// Extra knobs for [`spawn_sharded_node`].
pub struct ShardedSpawnOptions {
    /// Publish routing policy.
    pub policy: RoutePolicy,
    /// Telemetry hub: registers this node's transport counters, the
    /// per-shard gauges/histograms, and node-level latency histograms
    /// (delivery and frontier upcalls feed a
    /// [`MetricsObserver`] on the dispatcher thread).
    pub telemetry: Option<Arc<Telemetry>>,
    /// Seed for reconnect backoff jitter.
    pub jitter_seed: u64,
    /// Serve the attached telemetry over HTTP on this address (port 0
    /// picks an ephemeral port, readable back via
    /// [`ShardedHandle::serve_addr`]). Routes: `/metrics` (Prometheus
    /// text, per-shard series aggregated in one registry),
    /// `/metrics.json`, `/trace[?n=N]`, and `/stall` (per-shard frontier
    /// blame). No-op without `telemetry`.
    pub serve_addr: Option<String>,
}

impl Default for ShardedSpawnOptions {
    fn default() -> Self {
        ShardedSpawnOptions {
            policy: RoutePolicy::RoundRobin,
            telemetry: None,
            jitter_seed: 0,
            serve_addr: None,
        }
    }
}

/// Launch sharded node `me` of `cfg` (`cfg.options().shards` shards),
/// listening on `listener` and connecting out to every peer.
///
/// # Errors
///
/// Fails if a configured predicate does not compile.
pub fn spawn_sharded_node(
    cfg: ClusterConfig,
    me: NodeId,
    acks: Arc<AckTypeRegistry>,
    listener: TcpListener,
    peer_addrs: Vec<(NodeId, SocketAddr)>,
    opts: ShardedSpawnOptions,
) -> Result<ShardedTcpNode, CoreError> {
    // As in the unsharded runtime, a link only exists between nodes that
    // share at least one stream; every shard machine carries the same
    // placement, so one node-level filter covers them all.
    let peer_addrs: Vec<(NodeId, SocketAddr)> = peer_addrs
        .into_iter()
        .filter(|(peer, _)| cfg.placement().linked(me, *peer))
        .collect();
    let num_shards = cfg.options().shards.max(1);
    // Shard machines carry the 8-byte global header on every payload;
    // widen their cap so the application-visible cap is unchanged.
    let mut inner_opts = cfg.options().clone();
    inner_opts.max_payload_bytes += GLOBAL_HEADER;
    let inner_cfg = cfg.clone().with_options(inner_opts);
    let mut shards = Vec::with_capacity(num_shards as usize);
    for _ in 0..num_shards {
        shards.push(Mutex::new(StabilizerNode::new(
            inner_cfg.clone(),
            me,
            Arc::clone(&acks),
        )?));
    }
    let mut frontier = ShardedFrontier::new(cfg.num_nodes(), num_shards as usize);
    for (key, _) in cfg.predicates() {
        frontier.ensure_key(me, key);
    }

    let metrics = opts
        .telemetry
        .as_ref()
        .map(|t| TransportMetrics::new(t, me));
    let shard_gauges = match &opts.telemetry {
        Some(t) => (0..num_shards)
            .map(|s| ShardGauges::new(t, me, s))
            .collect(),
        None => Vec::new(),
    };
    if let Some(t) = &opts.telemetry {
        t.record_placement(cfg.placement());
        // Every shard installs the same predicates at the same vantage,
        // so shard 0 speaks for all of them.
        let shard0 = shards[0].lock();
        let mut min_tol = std::collections::BTreeMap::new();
        for (_stream, key, tol) in shard0.predicate_tolerances() {
            let e = min_tol.entry(key.to_owned()).or_insert(tol);
            *e = (*e).min(tol);
        }
        drop(shard0);
        for (key, tol) in min_tol {
            t.record_predicate_tolerance(&key, tol);
        }
    }
    let observer = opts.telemetry.as_ref().map(|t| t.observer(me));

    let (event_tx, event_rx) = unbounded::<NodeEvent>();
    let mut shard_txs = Vec::with_capacity(num_shards as usize);
    let mut shard_rxs = Vec::with_capacity(num_shards as usize);
    for _ in 0..num_shards {
        let (tx, rx) = unbounded::<(NodeId, WireMsg)>();
        shard_txs.push(tx);
        shard_rxs.push(rx);
    }

    let shared = Arc::new(ShardedShared {
        me,
        num_shards,
        shards,
        agg: Mutex::new(AggState {
            frontier,
            stamps: Vec::new(),
            covered: HashMap::new(),
            hists: HashMap::new(),
        }),
        publish: Mutex::new(PublishState {
            router: ShardRouter::new(num_shards, opts.policy),
            next_global: 0,
        }),
        completed: Mutex::new(HashSet::new()),
        completed_cv: Condvar::new(),
        monitors: Mutex::new(HashMap::new()),
        deliver_fns: Mutex::new(Vec::new()),
        senders: Mutex::new(HashMap::new()),
        shard_txs,
        event_tx,
        suspects: Mutex::new(vec![0; cfg.num_nodes()]),
        running: AtomicBool::new(true),
        started: Instant::now(),
        telemetry: opts.telemetry,
        metrics,
        shard_gauges,
        telemetry_server: Mutex::new(None),
        cfg,
    });
    if let (Some(addr), Some(telemetry)) = (opts.serve_addr.as_deref(), shared.telemetry.clone()) {
        // `/stall` diagnoses every shard machine's frontiers live. A
        // weak ref keeps the provider from pinning the runtime after
        // shutdown takes the server down.
        let weak = Arc::downgrade(&shared);
        let stall: StallProvider = Arc::new(move || match weak.upgrade() {
            Some(shared) => {
                stabilizer_core::render_sharded_stall_reports_json(&shared.explain_all())
            }
            None => "{\"reports\":[]}".to_string(),
        });
        let routes = ServerRoutes::new(telemetry).with_stall(stall);
        let server = TelemetryServer::bind(addr, routes)
            .map_err(|e| CoreError::Config(format!("telemetry serve_addr {addr}: {e}")))?;
        *shared.telemetry_server.lock() = Some(server);
    }
    let retry_limit = shared.cfg.options().connect_retry_limit;

    // Dispatcher thread: application callbacks, outside every lock.
    {
        let shared2 = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("stabs-{}-dispatch", me.0))
            .spawn(move || dispatcher_loop(shared2, event_rx, observer))
            .expect("spawn dispatcher");
    }

    // Worker thread per shard.
    for (s, rx) in shard_rxs.into_iter().enumerate() {
        let shared2 = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("stabs-{}-s{}", me.0, s))
            .spawn(move || worker_loop(shared2, s as u16, rx))
            .expect("spawn shard worker");
    }

    // Writer thread per peer.
    for (peer, addr) in &peer_addrs {
        let (tx, rx) = unbounded::<(u16, WireMsg)>();
        shared.senders.lock().insert(*peer, tx);
        let shared2 = Arc::clone(&shared);
        let peer = *peer;
        let addr = *addr;
        let seed = link_seed(opts.jitter_seed, me.0, peer.0);
        std::thread::Builder::new()
            .name(format!("stabs-{}-w{}", me.0, peer.0))
            .spawn(move || writer_loop(shared2, peer, addr, rx, retry_limit, seed))
            .expect("spawn writer");
    }

    // Accept thread.
    {
        let shared2 = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("stabs-{}-accept", me.0))
            .spawn(move || accept_loop(shared2, listener))
            .expect("spawn acceptor");
    }

    // Ticker thread.
    {
        let shared2 = Arc::clone(&shared);
        let opts = shared.cfg.options().clone();
        std::thread::Builder::new()
            .name(format!("stabs-{}-tick", me.0))
            .spawn(move || ticker_loop(shared2, opts))
            .expect("spawn ticker");
    }

    // Flush actions queued during shard construction (configured
    // predicates can emit initial frontier updates) now that the writer
    // channels and the dispatcher are in place.
    for s in 0..num_shards {
        shared.with_shard(s, |_| ());
    }

    Ok(ShardedTcpNode {
        handle: ShardedHandle { shared },
    })
}

/// Launch an in-process sharded cluster on localhost, one runtime per
/// topology node, all with the same routing policy.
///
/// # Errors
///
/// Propagates listener-bind and predicate-compile failures.
pub fn spawn_sharded_local_cluster(
    cfg: &ClusterConfig,
    policy: RoutePolicy,
) -> Result<Vec<ShardedTcpNode>, CoreError> {
    spawn_sharded_local_cluster_with(cfg, policy, None)
}

/// [`spawn_sharded_local_cluster`] with a shared telemetry hub.
///
/// # Errors
///
/// Propagates listener-bind and predicate-compile failures.
pub fn spawn_sharded_local_cluster_with(
    cfg: &ClusterConfig,
    policy: RoutePolicy,
    telemetry: Option<Arc<Telemetry>>,
) -> Result<Vec<ShardedTcpNode>, CoreError> {
    let n = cfg.num_nodes();
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| CoreError::Config(format!("bind: {e}")))?;
        addrs.push(
            l.local_addr()
                .map_err(|e| CoreError::Config(format!("addr: {e}")))?,
        );
        listeners.push(l);
    }
    let acks = Arc::new(AckTypeRegistry::new());
    let mut nodes = Vec::with_capacity(n);
    for (i, listener) in listeners.into_iter().enumerate() {
        let peer_addrs: Vec<(NodeId, SocketAddr)> = (0..n)
            .filter(|j| *j != i)
            .map(|j| (NodeId(j as u16), addrs[j]))
            .collect();
        nodes.push(spawn_sharded_node(
            cfg.clone(),
            NodeId(i as u16),
            Arc::clone(&acks),
            listener,
            peer_addrs,
            ShardedSpawnOptions {
                policy,
                telemetry: telemetry.clone(),
                jitter_seed: i as u64,
                serve_addr: None,
            },
        )?);
    }
    Ok(nodes)
}

/// Handle to a sharded node: the [`NodeHandle`](crate::NodeHandle) API
/// surface over S shards, with global sequence numbers throughout.
///
/// Cloning is cheap; all clones talk to the same node.
#[derive(Clone)]
pub struct ShardedHandle {
    shared: Arc<ShardedShared>,
}

impl ShardedHandle {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.shared.me
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u16 {
        self.shared.num_shards
    }

    /// Publish on this node's stream (round-robin routed); returns the
    /// **global** sequence number. Retries transparently on send-buffer
    /// backpressure until `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`CoreError::WouldBlock`] if the routed shard's buffer stayed
    /// full for the whole timeout, or [`CoreError::PayloadTooLarge`].
    pub fn publish(&self, payload: Bytes, timeout: Duration) -> Result<SeqNo, CoreError> {
        self.publish_routed(payload, None, timeout)
    }

    /// [`ShardedHandle::publish`] with a routing key: under
    /// [`RoutePolicy::KeyHash`] all publishes sharing `key` land on one
    /// shard.
    ///
    /// # Errors
    ///
    /// As [`ShardedHandle::publish`].
    pub fn publish_with_key(
        &self,
        payload: Bytes,
        key: &[u8],
        timeout: Duration,
    ) -> Result<SeqNo, CoreError> {
        self.publish_routed(payload, Some(key), timeout)
    }

    fn publish_routed(
        &self,
        payload: Bytes,
        key: Option<&[u8]>,
        timeout: Duration,
    ) -> Result<SeqNo, CoreError> {
        let max = self.shared.cfg.options().max_payload_bytes;
        if payload.len() > max {
            return Err(CoreError::PayloadTooLarge {
                size: payload.len(),
                max,
            });
        }
        let deadline = Instant::now() + timeout;
        loop {
            match self.try_publish(&payload, key) {
                Err(CoreError::WouldBlock { .. }) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                other => return other,
            }
        }
    }

    fn try_publish(&self, payload: &Bytes, key: Option<&[u8]>) -> Result<SeqNo, CoreError> {
        let sh = &self.shared;
        let mut pubst = sh.publish.lock();
        let shard = pubst.router.route(key);
        let global = pubst.next_global + 1;
        let framed = encode_global(global, payload);
        let (result, actions) = {
            let mut node = sh.shards[shard as usize].lock();
            let r = node.publish(framed);
            (r, node.take_actions())
        };
        match result {
            Ok(_shard_seq) => {
                pubst.next_global = global;
                {
                    let mut agg = sh.agg.lock();
                    if let Some(t) = &sh.telemetry {
                        let slot = (global - 1) as usize;
                        if agg.stamps.len() <= slot {
                            agg.stamps.resize(slot + 1, 0);
                        }
                        agg.stamps[slot] = sh.now_nanos() + 1;
                        t.note_publish_now(sh.me, global, payload.len());
                    }
                    let out = agg.frontier.learn_mapping(sh.me, shard, global);
                    sh.apply_agg(out);
                }
                // Still under the publish lock: enqueuing the Send here
                // keeps same-shard Data frames in sequence order on the
                // writer channel even with concurrent publishers.
                sh.process_shard_actions(shard, actions);
                Ok(global)
            }
            Err(e) => {
                // Only keyless (round-robin) routes advanced the cursor.
                if key.is_none() || pubst.router.policy() == RoutePolicy::RoundRobin {
                    pubst.router.rollback_last();
                }
                drop(pubst);
                sh.process_shard_actions(shard, actions);
                Err(e)
            }
        }
    }

    /// Highest global sequence number published locally.
    pub fn last_published(&self) -> SeqNo {
        self.shared.publish.lock().next_global
    }

    /// Register a predicate for `stream` under `key` on every shard and
    /// make the aggregated key queryable.
    ///
    /// # Errors
    ///
    /// DSL compile errors (deterministic, so no shard registers when the
    /// first fails).
    pub fn register_predicate(
        &self,
        stream: NodeId,
        key: &str,
        source: &str,
    ) -> Result<(), CoreError> {
        for s in 0..self.shared.num_shards {
            self.shared
                .with_shard(s, |n| n.register_predicate(stream, key, source))?;
        }
        self.shared.agg.lock().frontier.ensure_key(stream, key);
        self.sync_key(stream, key);
        Ok(())
    }

    /// Replace the predicate under `key` on every shard, bumping the
    /// generation everywhere in lockstep.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownPredicate`] or a DSL compile error.
    pub fn change_predicate(
        &self,
        stream: NodeId,
        key: &str,
        source: &str,
    ) -> Result<(), CoreError> {
        for s in 0..self.shared.num_shards {
            self.shared
                .with_shard(s, |n| n.change_predicate(stream, key, source))?;
        }
        self.sync_key(stream, key);
        Ok(())
    }

    /// Push each shard's current `(frontier, generation)` for
    /// `(stream, key)` into the aggregator, so the aggregate adopts a
    /// new generation even on shards whose frontier starts at zero
    /// (which emit no update action).
    fn sync_key(&self, stream: NodeId, key: &str) {
        for s in 0..self.shared.num_shards {
            let f = self.shared.shards[s as usize]
                .lock()
                .stability_frontier(stream, key);
            if let Some((seq, generation)) = f {
                let mut agg = self.shared.agg.lock();
                let out = agg.frontier.on_shard_frontier(
                    s,
                    &FrontierUpdate {
                        stream,
                        key: key.to_owned(),
                        seq,
                        generation,
                    },
                );
                self.shared.apply_agg(out);
            }
        }
    }

    /// Current aggregated `(frontier, generation)` of a predicate, in
    /// global sequence numbers.
    pub fn stability_frontier(&self, stream: NodeId, key: &str) -> Option<(SeqNo, u32)> {
        self.shared.agg.lock().frontier.frontier(stream, key)
    }

    /// Block until the aggregated frontier of `(stream, key)` reaches
    /// the global sequence `seq`, or `timeout` elapses; `true` on
    /// success.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownPredicate`] for an unregistered key.
    pub fn waitfor(
        &self,
        stream: NodeId,
        key: &str,
        seq: SeqNo,
        timeout: Duration,
    ) -> Result<bool, CoreError> {
        let token = {
            let mut agg = self.shared.agg.lock();
            let (token, out) = agg.frontier.waitfor(stream, key, seq)?;
            self.shared.apply_agg(out);
            token
        };
        let deadline = Instant::now() + timeout;
        let mut done = self.shared.completed.lock();
        loop {
            if done.remove(&token) {
                return Ok(true);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            self.shared.completed_cv.wait_for(&mut done, deadline - now);
        }
    }

    /// Register `lambda` to run on every **aggregated** frontier advance
    /// of `(stream, key)`.
    pub fn monitor_stability_frontier(
        &self,
        stream: NodeId,
        key: &str,
        lambda: impl FnMut(&FrontierUpdate) + Send + 'static,
    ) {
        self.shared
            .monitors
            .lock()
            .entry((stream, key.to_owned()))
            .or_default()
            .push(Box::new(lambda));
    }

    /// Register a delivery upcall; payloads arrive in **global** FIFO
    /// order per origin, header already stripped.
    pub fn on_deliver(&self, f: impl FnMut(NodeId, SeqNo, &Bytes) + Send + 'static) {
        self.shared.deliver_fns.lock().push(Box::new(f));
    }

    /// Register an application-defined stability level on every shard
    /// (the shared registry deduplicates by name).
    pub fn register_ack_type(&self, name: &str) -> AckTypeId {
        let mut ty = AckTypeId(0);
        for s in 0..self.shared.num_shards {
            ty = self.shared.with_shard(s, |n| n.register_ack_type(name));
        }
        ty
    }

    /// Report stability level `ty` for `stream` up to the **global**
    /// sequence `seq`, translated into per-shard sequence numbers
    /// through the mapping learned so far.
    pub fn report_stability(&self, stream: NodeId, ty: AckTypeId, seq: SeqNo) {
        let progress: Vec<SeqNo> = {
            let agg = self.shared.agg.lock();
            (0..self.shared.num_shards)
                .map(|s| agg.frontier.shard_progress(stream, s, seq))
                .collect()
        };
        for (s, p) in progress.into_iter().enumerate() {
            if p > 0 {
                self.shared
                    .with_shard(s as u16, |n| n.report_stability(stream, ty, p));
            }
        }
    }

    /// Highest global sequence of `origin` delivered to the application.
    pub fn delivered_global(&self, origin: NodeId) -> SeqNo {
        self.shared.agg.lock().frontier.delivered_global(origin)
    }

    /// Node-level waits still blocked.
    pub fn pending_waiters(&self) -> usize {
        self.shared.agg.lock().frontier.pending_waiters()
    }

    /// Whether any shard's failure detector currently suspects `node`.
    pub fn is_suspected(&self, node: NodeId) -> bool {
        self.shared.suspects.lock()[node.0 as usize] > 0
    }

    /// Start §III-E catch-up on every shard sub-stream: each shard
    /// machine asks its per-shard donors for a snapshot plus
    /// retained-log replay. Use after joining a fresh node into a
    /// running cluster. No-op unless `transfer_millis` is configured.
    pub fn begin_catch_up(&self) {
        let now = self.shared.now_nanos();
        for s in 0..self.shared.num_shards {
            self.shared.with_shard(s, |n| n.begin_catch_up(now));
        }
    }

    /// Live transfer sessions summed across shards.
    pub fn active_transfers(&self) -> usize {
        self.shared
            .shards
            .iter()
            .map(|s| s.lock().active_transfers())
            .sum()
    }

    /// Traffic counters summed across shards (`data_bytes_sent` includes
    /// the 8-byte global header each sharded payload carries).
    pub fn metrics(&self) -> Metrics {
        let mut total = Metrics::default();
        for s in &self.shared.shards {
            let m = s.lock().metrics();
            total.data_msgs_sent += m.data_msgs_sent;
            total.data_bytes_sent += m.data_bytes_sent;
            total.control_msgs_sent += m.control_msgs_sent;
            total.acks_sent += m.acks_sent;
            total.deliveries += m.deliveries;
            total.acks_received += m.acks_received;
            total.acks_stale += m.acks_stale;
            total.retransmits += m.retransmits;
            total.predicate_evals += m.predicate_evals;
            total.frontier_updates += m.frontier_updates;
            total.transfer_requests += m.transfer_requests;
            total.transfer_chunks_sent += m.transfer_chunks_sent;
            total.transfer_bytes_sent += m.transfer_bytes_sent;
            total.transfer_chunks_received += m.transfer_chunks_received;
            total.transfer_fast_forwards += m.transfer_fast_forwards;
        }
        total
    }

    /// One shard's own traffic counters.
    pub fn shard_metrics(&self, shard: u16) -> Metrics {
        self.shared.shards[shard as usize].lock().metrics()
    }

    /// Frontier blame for every `(shard, stream, key)`: each shard
    /// machine diagnoses its own sub-stream (sequence numbers in the
    /// reports are per-shard). Render with
    /// [`stabilizer_core::render_sharded_stall_reports_json`].
    pub fn explain_all(&self) -> Vec<(u16, stabilizer_core::StallReport)> {
        self.shared.explain_all()
    }

    /// Bound address of the live telemetry endpoint, when spawned with
    /// [`ShardedSpawnOptions::serve_addr`] (resolves port 0 to the
    /// actual port).
    pub fn serve_addr(&self) -> Option<SocketAddr> {
        self.shared
            .telemetry_server
            .lock()
            .as_ref()
            .map(|s| s.local_addr())
    }

    /// Ask the runtime to stop its threads. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown();
    }
}

impl std::fmt::Debug for ShardedHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHandle")
            .field("me", &self.shared.me)
            .field("shards", &self.shared.num_shards)
            .finish()
    }
}

fn dispatcher_loop(
    shared: Arc<ShardedShared>,
    rx: Receiver<NodeEvent>,
    mut observer: Option<MetricsObserver>,
) {
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(event) => {
                let now = shared.now_nanos();
                match event {
                    NodeEvent::Deliver {
                        origin,
                        seq,
                        payload,
                    } => {
                        if let Some(obs) = observer.as_mut() {
                            RuntimeObserver::on_deliver(obs, now, origin, seq, &payload);
                        }
                        for f in shared.deliver_fns.lock().iter_mut() {
                            f(origin, seq, &payload);
                        }
                    }
                    NodeEvent::Frontier(update) => {
                        if let Some(obs) = observer.as_mut() {
                            RuntimeObserver::on_frontier(obs, now, &update);
                        }
                        let mut monitors = shared.monitors.lock();
                        if let Some(fns) = monitors.get_mut(&(update.stream, update.key.clone())) {
                            for f in fns.iter_mut() {
                                f(&update);
                            }
                        }
                    }
                    NodeEvent::CatchUp { stream, seq } => {
                        if let Some(obs) = observer.as_mut() {
                            RuntimeObserver::on_catch_up(obs, now, stream, seq);
                        }
                    }
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if !shared.running.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn worker_loop(shared: Arc<ShardedShared>, shard: u16, rx: Receiver<(NodeId, WireMsg)>) {
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok((from, msg)) => {
                let now = shared.now_nanos();
                shared.with_shard(shard, |n| n.on_message(now, from, msg));
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if !shared.running.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn accept_loop(shared: Arc<ShardedShared>, listener: TcpListener) {
    listener.set_nonblocking(true).ok();
    while shared.running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).ok();
                let shared2 = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stabs-{}-r", shared.me.0))
                    .spawn(move || reader_loop(shared2, stream))
                    .expect("spawn reader");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn reader_loop(shared: Arc<ShardedShared>, stream: TcpStream) {
    let mut reader = std::io::BufReader::new(stream);
    // First frame must be the hello announcing the peer, on the sentinel
    // shard index.
    let peer = match read_shard_frame_counted(&mut reader) {
        Ok(Some((shard, msg, _))) if shard == HELLO_SHARD => match parse_hello(&msg) {
            Some(id) => NodeId(id),
            None => return, // protocol violation: drop connection
        },
        _ => return,
    };
    while shared.running.load(Ordering::SeqCst) {
        match read_shard_frame_counted(&mut reader) {
            Ok(Some((shard, msg, wire_len))) => {
                if let Some(m) = &shared.metrics {
                    m.frames_in.inc();
                    m.bytes_in.add(wire_len as u64);
                }
                if (shard as usize) < shared.shard_txs.len() {
                    // Worker gone => shutting down.
                    let _ = shared.shard_txs[shard as usize].send((peer, msg));
                }
                // Unknown shard index: tolerated (a peer configured with
                // more shards), the traffic is simply not processable.
            }
            Ok(None) | Err(_) => return, // EOF or broken pipe
        }
    }
}

fn writer_loop(
    shared: Arc<ShardedShared>,
    peer: NodeId,
    addr: SocketAddr,
    rx: Receiver<(u16, WireMsg)>,
    retry_limit: u64,
    jitter_seed: u64,
) {
    let mut backoff = Backoff::new(
        Duration::from_millis(10),
        Duration::from_millis(500),
        jitter_seed,
    );
    let mut repair_on_connect = false;
    'reconnect: while shared.running.load(Ordering::SeqCst) {
        let stream = match connect_with_retry(&shared, addr, &mut backoff, retry_limit) {
            Some(s) => s,
            None => return,
        };
        let mut stream = std::io::BufWriter::with_capacity(64 * 1024, stream);
        backoff.reset();
        if repair_on_connect {
            if let Some(m) = &shared.metrics {
                m.reconnects.inc();
            }
        }
        match write_shard_frame(&mut stream, HELLO_SHARD, &hello(shared.me.0))
            .and_then(|n| stream.flush().map(|()| n))
        {
            Ok(wire_len) => {
                if let Some(m) = &shared.metrics {
                    m.frames_out.inc();
                    m.bytes_out.add(wire_len as u64);
                }
            }
            Err(_) => continue 'reconnect,
        }
        if repair_on_connect {
            // Repair every shard sub-stream: resend unacked data and
            // re-announce acks, exactly as the unsharded runtime does
            // per node.
            for s in 0..shared.num_shards {
                shared.with_shard(s, |n| {
                    let from = n.recorder().get(n.me(), peer, RECEIVED) + 1;
                    n.resend_from(peer, from);
                    n.announce_acks_to(peer);
                });
            }
        }
        repair_on_connect = true;
        loop {
            match rx.recv_timeout(Duration::from_millis(100)) {
                Ok((shard, msg)) => {
                    match write_shard_frame(&mut stream, shard, &msg) {
                        Ok(wire_len) => {
                            if let Some(m) = &shared.metrics {
                                m.frames_out.inc();
                                m.bytes_out.add(wire_len as u64);
                            }
                        }
                        Err(_) => continue 'reconnect,
                    }
                    if rx.is_empty() && stream.flush().is_err() {
                        continue 'reconnect;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if stream.flush().is_err() {
                        continue 'reconnect;
                    }
                    if !shared.running.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    let _ = stream.flush();
                    return;
                }
            }
        }
    }
}

/// Connect with capped, seeded-jitter backoff; `None` on shutdown or
/// after `retry_limit` consecutive failures (`0` = never give up).
fn connect_with_retry(
    shared: &Arc<ShardedShared>,
    addr: SocketAddr,
    backoff: &mut Backoff,
    retry_limit: u64,
) -> Option<TcpStream> {
    while shared.running.load(Ordering::SeqCst) {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
            Ok(s) => {
                s.set_nodelay(true).ok();
                return Some(s);
            }
            Err(_) => {
                if retry_limit > 0 && backoff.attempts() + 1 >= retry_limit {
                    return None;
                }
                let delay = backoff.next_delay();
                if let Some(m) = &shared.metrics {
                    m.connect_attempts.inc();
                    m.backoff_sleep_ns.add(delay.as_nanos() as u64);
                }
                std::thread::sleep(delay);
            }
        }
    }
    None
}

fn ticker_loop(shared: Arc<ShardedShared>, opts: stabilizer_core::Options) {
    let mut last_flush = Instant::now();
    let mut last_heartbeat = Instant::now();
    let mut last_failure = Instant::now();
    let mut last_retransmit = Instant::now();
    let mut last_transfer = Instant::now();
    let mut last_sample = Instant::now();
    let sample_every = Duration::from_millis(20);
    let tick = Duration::from_micros(if opts.ack_flush_micros > 0 {
        opts.ack_flush_micros.min(1000)
    } else {
        1000
    });
    while shared.running.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        let now = Instant::now();
        if opts.ack_flush_micros > 0
            && now.duration_since(last_flush) >= Duration::from_micros(opts.ack_flush_micros)
        {
            for s in 0..shared.num_shards {
                shared.with_shard(s, StabilizerNode::on_ack_flush);
            }
            last_flush = now;
        }
        if opts.heartbeat_millis > 0
            && now.duration_since(last_heartbeat) >= Duration::from_millis(opts.heartbeat_millis)
        {
            for s in 0..shared.num_shards {
                shared.with_shard(s, StabilizerNode::on_heartbeat);
            }
            last_heartbeat = now;
        }
        if opts.failure_timeout_millis > 0
            && now.duration_since(last_failure)
                >= Duration::from_millis(opts.failure_timeout_millis / 2)
        {
            let t = shared.now_nanos();
            for s in 0..shared.num_shards {
                shared.with_shard(s, |n| n.on_failure_check(t));
            }
            last_failure = now;
        }
        if opts.retransmit_millis > 0
            && now.duration_since(last_retransmit)
                >= Duration::from_millis((opts.retransmit_millis / 2).max(1))
        {
            let t = shared.now_nanos();
            for s in 0..shared.num_shards {
                shared.with_shard(s, |n| n.on_retransmit_check(t));
            }
            last_retransmit = now;
        }
        if opts.transfer_millis > 0
            && now.duration_since(last_transfer)
                >= Duration::from_millis((opts.transfer_millis / 2).max(1))
        {
            shared.refresh_transfer_marks();
            let t = shared.now_nanos();
            for s in 0..shared.num_shards {
                shared.with_shard(s, |n| n.on_transfer_tick(t));
            }
            last_transfer = now;
        }
        if let Some(telemetry) = &shared.telemetry {
            if now.duration_since(last_sample) >= sample_every {
                let mut total = Metrics::default();
                let mut total_buf = 0usize;
                for s in 0..shared.num_shards as usize {
                    let (m, buf) = {
                        let node = shared.shards[s].lock();
                        (node.metrics(), node.send_buffer_bytes())
                    };
                    if let Some(g) = shared.shard_gauges.get(s) {
                        g.queue_depth.set(shared.shard_txs[s].len() as i64);
                        g.send_buffer_bytes.set(buf as i64);
                        g.data_msgs_sent.set(m.data_msgs_sent as i64);
                        g.deliveries.set(m.deliveries as i64);
                        g.frontier_updates.set(m.frontier_updates as i64);
                        g.retransmits.set(m.retransmits as i64);
                    }
                    total.data_msgs_sent += m.data_msgs_sent;
                    total.data_bytes_sent += m.data_bytes_sent;
                    total.control_msgs_sent += m.control_msgs_sent;
                    total.acks_sent += m.acks_sent;
                    total.deliveries += m.deliveries;
                    total.acks_received += m.acks_received;
                    total.acks_stale += m.acks_stale;
                    total.retransmits += m.retransmits;
                    total.predicate_evals += m.predicate_evals;
                    total.frontier_updates += m.frontier_updates;
                    total_buf += buf;
                }
                if let Some(m) = &shared.metrics {
                    m.send_buffer_bytes.set(total_buf as i64);
                    m.pending_waiters
                        .set(shared.agg.lock().frontier.pending_waiters() as i64);
                }
                telemetry.record_node_metrics(shared.me, &total);
                last_sample = now;
            }
        }
    }
}
