//! Capped exponential backoff with deterministic, seeded jitter for the
//! writer threads' reconnect loops.
//!
//! Plain exponential backoff synchronizes: every writer that lost its
//! peer at the same instant retries at the same instants, producing
//! connection stampedes exactly when the peer is busiest (coming back
//! up). Jitter decorrelates the retries. The jitter source is a seeded
//! splitmix64 stream rather than global entropy so a chaos run that
//! fixes its seed gets reproducible retry timing — and no new dependency
//! is pulled into the transport crate.

use std::time::Duration;

/// Advance a splitmix64 state and return the next value.
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Capped exponential backoff with jitter: the `k`-th delay is drawn
/// uniformly from `[cur/2, cur)` where `cur = min(base * 2^k, max)`
/// (the "equal jitter" scheme — never collapses to zero, so a dead peer
/// is not hammered, but no two seeds align for long).
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    max: Duration,
    cur: Duration,
    rng: u64,
    attempts: u64,
}

impl Backoff {
    /// Backoff starting at `base`, doubling up to `max`, jittered from
    /// `seed`.
    pub fn new(base: Duration, max: Duration, seed: u64) -> Self {
        Backoff {
            base,
            max: max.max(base),
            cur: base,
            rng: seed,
            attempts: 0,
        }
    }

    /// Number of delays handed out since the last [`Backoff::reset`].
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Next delay to sleep before retrying.
    pub fn next_delay(&mut self) -> Duration {
        self.attempts += 1;
        let cur = self.cur.as_nanos() as u64;
        let half = (cur / 2).max(1);
        let jittered = half + splitmix_next(&mut self.rng) % half;
        self.cur = (self.cur * 2).min(self.max);
        Duration::from_nanos(jittered)
    }

    /// A connect succeeded: restart the schedule from `base`.
    pub fn reset(&mut self) {
        self.cur = self.base;
        self.attempts = 0;
    }
}

/// Derive a per-link jitter seed from a cluster seed and the directed
/// link identity, so every writer thread jitters independently but
/// reproducibly.
pub fn link_seed(cluster_seed: u64, me: u16, peer: u16) -> u64 {
    let mut s = cluster_seed ^ ((me as u64) << 32) ^ ((peer as u64) << 16) ^ 0x5bd1_e995;
    splitmix_next(&mut s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let mut b = Backoff::new(ms(10), ms(500), 42);
        let delays: Vec<Duration> = (0..10).map(|_| b.next_delay()).collect();
        // Each delay sits in [cur/2, cur) for the doubling-then-capped cur.
        let mut cur = ms(10);
        for d in &delays {
            assert!(
                *d >= cur / 2 && *d < cur,
                "{d:?} outside [{:?}, {cur:?})",
                cur / 2
            );
            cur = (cur * 2).min(ms(500));
        }
        // The tail is capped: every late delay is below the max but at
        // least half of it.
        assert!(delays[9] >= ms(250) && delays[9] < ms(500));
        assert_eq!(b.attempts(), 10);
    }

    #[test]
    fn same_seed_same_schedule_different_seed_diverges() {
        let schedule = |seed| {
            let mut b = Backoff::new(ms(10), ms(500), seed);
            (0..8).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(schedule(7), schedule(7));
        assert_ne!(schedule(7), schedule(8));
    }

    #[test]
    fn reset_restarts_from_base() {
        let mut b = Backoff::new(ms(10), ms(500), 1);
        for _ in 0..6 {
            b.next_delay();
        }
        b.reset();
        assert_eq!(b.attempts(), 0);
        let d = b.next_delay();
        assert!(d >= ms(5) && d < ms(10), "{d:?} not from the base window");
    }

    #[test]
    fn link_seeds_are_distinct_per_direction() {
        assert_ne!(link_seed(1, 0, 1), link_seed(1, 1, 0));
        assert_ne!(link_seed(1, 0, 1), link_seed(2, 0, 1));
        assert_eq!(link_seed(3, 4, 5), link_seed(3, 4, 5));
    }
}
