//! The threaded TCP runtime: drives the sans-IO [`StabilizerNode`] with
//! real sockets and wall-clock timers.
//!
//! Thread layout per node:
//!
//! * one **accept** thread taking inbound connections, each handed to a
//!   **reader** thread that decodes frames and feeds the state machine;
//! * one **writer** thread per peer, draining a channel of outbound
//!   messages into a (re)connecting socket — data lost while a link is
//!   down is repaired on reconnect from the send buffer
//!   ([`StabilizerNode::resend_from`]) plus a full ACK re-announcement;
//! * one **ticker** thread running the ACK-flush / heartbeat / failure
//!   timers.
//!
//! Locking discipline: the node mutex is held only while mutating the
//! state machine; emitted [`Action`]s are executed *after* release so
//! user callbacks (monitors, delivery upcalls) can re-enter the handle
//! without deadlocking. Attached [`RuntimeObserver`]s are the one
//! exception: they run *before* release, so an external checker that
//! locks the state machine and then reads an observer's log never sees
//! machine state the log has not caught up with.

use crate::backoff::{link_seed, Backoff};
use crate::framing::{hello, parse_hello, read_frame_counted, write_frame};
use crate::handle::{DeliverFn, MonitorFn, NodeHandle};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use stabilizer_core::{
    AckTypeRegistry, Action, ClusterConfig, CoreError, NodeId, RuntimeObserver, Snapshot,
    StabilizerNode, WaitToken, WireMsg, RECEIVED,
};
use stabilizer_telemetry::{
    Counter, Gauge, ServerRoutes, StallProvider, Telemetry, TelemetryServer,
};
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Transport-level counters and gauges for one node, registered in the
/// attached [`Telemetry`] hub's registry. Handles are plain atomics, so
/// the I/O threads record without locking.
pub struct TransportMetrics {
    /// Frames written to peers (hello and repair traffic included).
    pub frames_out: Counter,
    /// Bytes written to peers (length prefixes included).
    pub bytes_out: Counter,
    /// Frames read from peers (the hello excluded — consumed before the
    /// reader attaches accounting).
    pub frames_in: Counter,
    /// Bytes read from peers.
    pub bytes_in: Counter,
    /// Successful connects after the first per link (i.e. reconnects).
    pub reconnects: Counter,
    /// Failed connect attempts (each is followed by a backoff sleep).
    pub connect_attempts: Counter,
    /// Total nanoseconds writer threads spent in backoff sleeps.
    pub backoff_sleep_ns: Counter,
    /// Current send-buffer occupancy (sampled by the ticker).
    pub send_buffer_bytes: Gauge,
    /// Blocked `waitfor`s (sampled by the ticker).
    pub pending_waiters: Gauge,
}

impl TransportMetrics {
    pub(crate) fn new(t: &Telemetry, me: NodeId) -> Self {
        let id = me.0.to_string();
        let labels: &[(&str, &str)] = &[("node", &id)];
        let reg = t.registry();
        TransportMetrics {
            frames_out: reg.counter("stab_tcp_frames_out_total", labels),
            bytes_out: reg.counter("stab_tcp_bytes_out_total", labels),
            frames_in: reg.counter("stab_tcp_frames_in_total", labels),
            bytes_in: reg.counter("stab_tcp_bytes_in_total", labels),
            reconnects: reg.counter("stab_tcp_reconnects_total", labels),
            connect_attempts: reg.counter("stab_tcp_connect_attempts_total", labels),
            backoff_sleep_ns: reg.counter("stab_tcp_backoff_sleep_ns_total", labels),
            send_buffer_bytes: reg.gauge("stab_tcp_send_buffer_bytes", labels),
            pending_waiters: reg.gauge("stab_tcp_pending_waiters", labels),
        }
    }
}

/// Periodic Prometheus text dump written by the ticker thread.
pub struct MetricsDump {
    /// File to (re)write; each dump replaces the previous snapshot.
    pub path: PathBuf,
    /// Dump cadence.
    pub every: Duration,
}

/// State shared between the handle and the runtime threads.
pub struct Shared {
    /// This node's id.
    pub me: NodeId,
    /// The protocol state machine.
    pub node: Mutex<StabilizerNode>,
    /// Tokens of completed `waitfor`s.
    pub completed: Mutex<HashSet<WaitToken>>,
    /// Signalled when `completed` grows.
    pub completed_cv: Condvar,
    /// Frontier monitors, keyed by `(stream, key)`.
    pub monitors: Mutex<HashMap<(NodeId, String), Vec<MonitorFn>>>,
    /// Delivery upcalls.
    pub deliver_fns: Mutex<Vec<DeliverFn>>,
    /// Per-peer outbound channels.
    pub senders: Mutex<HashMap<NodeId, Sender<WireMsg>>>,
    /// External observers, invoked under the node lock.
    pub observers: Mutex<Vec<Box<dyn RuntimeObserver>>>,
    /// Peers a writer permanently gave up connecting to (only populated
    /// when `connect_retry_limit` is configured).
    pub connect_failed: Mutex<Vec<NodeId>>,
    /// Cleared on shutdown.
    pub running: AtomicBool,
    /// Multiplier on every ticker interval, stored as `f64` bits
    /// (clock-skew fault injection; 1.0 = nominal cadence). Read by the
    /// ticker each iteration, so a change takes effect within one tick.
    pub timer_scale_bits: AtomicU64,
    /// Monotonic epoch for failure-detector timestamps.
    pub started: Instant,
    /// Telemetry hub, when attached via [`SpawnOptions::telemetry`].
    pub telemetry: Option<Arc<Telemetry>>,
    /// Transport counters (present iff `telemetry` is).
    pub(crate) metrics: Option<TransportMetrics>,
    /// Live scrape endpoint (present iff [`SpawnOptions::serve_addr`]
    /// and `telemetry` are both set); joined on shutdown.
    pub(crate) telemetry_server: Mutex<Option<TelemetryServer>>,
}

impl Shared {
    /// Mutate the state machine under the lock, then execute the emitted
    /// actions *outside* it (observers excepted, see module docs).
    pub fn with_node<R>(&self, f: impl FnOnce(&mut StabilizerNode) -> R) -> R {
        let (r, actions) = {
            let mut node = self.node.lock();
            let r = f(&mut node);
            let actions = node.take_actions();
            self.observe(&actions);
            (r, actions)
        };
        self.process(actions);
        r
    }

    /// Feed every action to the attached observers. Called with the node
    /// lock held so observer logs are never behind the machine state.
    fn observe(&self, actions: &[Action]) {
        let mut observers = self.observers.lock();
        if observers.is_empty() {
            return;
        }
        let now = self.now_nanos();
        for action in actions {
            for obs in observers.iter_mut() {
                match action {
                    // Donor-side transfer-chunk sends are the one kind of
                    // send surfaced to observers (catch-up progress is
                    // otherwise invisible on the donor).
                    Action::Send {
                        to,
                        msg:
                            WireMsg::TransferChunk {
                                stream,
                                seq,
                                payload,
                                done,
                            },
                    } => obs.on_transfer_chunk(now, *to, *stream, *seq, payload.len(), *done),
                    Action::Send { .. } => {}
                    Action::Deliver {
                        origin,
                        seq,
                        payload,
                    } => obs.on_deliver(now, *origin, *seq, payload),
                    Action::Frontier(update) => obs.on_frontier(now, update),
                    Action::WaitDone { token } => obs.on_wait_done(now, *token),
                    Action::Suspected { node } => obs.on_suspected(now, *node),
                    Action::Recovered { node } => obs.on_recovered(now, *node),
                    Action::CatchUp { stream, seq, .. } => obs.on_catch_up(now, *stream, *seq),
                    Action::PredicateBroken { .. } => {}
                }
            }
        }
    }

    /// Execute actions: forward sends to writer channels, run callbacks,
    /// wake waiters.
    pub fn process(&self, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    if let Some(tx) = self.senders.lock().get(&to) {
                        let _ = tx.send(msg); // writer gone => shutting down
                    }
                }
                Action::Deliver {
                    origin,
                    seq,
                    payload,
                } => {
                    for f in self.deliver_fns.lock().iter_mut() {
                        f(origin, seq, &payload);
                    }
                }
                Action::Frontier(update) => {
                    let mut monitors = self.monitors.lock();
                    if let Some(fns) = monitors.get_mut(&(update.stream, update.key.clone())) {
                        for f in fns.iter_mut() {
                            f(&update);
                        }
                    }
                }
                Action::WaitDone { token } => {
                    self.completed.lock().insert(token);
                    self.completed_cv.notify_all();
                }
                Action::Suspected { .. }
                | Action::Recovered { .. }
                | Action::CatchUp { .. }
                | Action::PredicateBroken { .. } => {
                    // Surfaced through `is_suspected`, the observers, and
                    // monitor silence; a production deployment would plug
                    // an alerting hook here.
                }
            }
        }
    }

    /// Scale every ticker interval by `scale` — the wall-clock twin of
    /// the simulator's skewed local clock (`scale < 1` fires timers
    /// early, `> 1` late). Takes effect within one ticker iteration; 1.0
    /// restores the nominal cadence.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn set_timer_scale(&self, scale: f64) {
        assert!(
            scale.is_finite() && scale > 0.0,
            "timer scale must be positive and finite"
        );
        self.timer_scale_bits
            .store(scale.to_bits(), Ordering::SeqCst);
    }

    /// The current timer-interval multiplier (1.0 = nominal).
    pub fn timer_scale(&self) -> f64 {
        f64::from_bits(self.timer_scale_bits.load(Ordering::SeqCst))
    }

    /// Surface a membership (re)join — catch-up requested on `streams`
    /// peer streams — to the attached observers.
    pub(crate) fn notify_join(&self, streams: usize) {
        if streams == 0 {
            return;
        }
        let now = self.now_nanos();
        for obs in self.observers.lock().iter_mut() {
            obs.on_join(now, streams);
        }
    }

    /// A writer exhausted its connect-retry budget for `peer`.
    fn connect_gave_up(&self, peer: NodeId) {
        self.connect_failed.lock().push(peer);
        let now = self.now_nanos();
        for obs in self.observers.lock().iter_mut() {
            obs.on_connect_failed(now, peer);
        }
    }

    /// Stop all runtime threads (idempotent).
    pub fn shutdown(&self) {
        self.running.store(false, Ordering::SeqCst);
        self.senders.lock().clear(); // disconnect writer channels
        if let Some(mut server) = self.telemetry_server.lock().take() {
            server.shutdown();
        }
    }

    pub(crate) fn now_nanos(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }
}

/// A node running on the TCP runtime. Dropping the cluster handle does
/// not stop nodes; call [`NodeHandle::shutdown`].
pub struct TcpNode {
    handle: NodeHandle,
}

impl TcpNode {
    /// The application handle.
    pub fn handle(&self) -> NodeHandle {
        self.handle.clone()
    }
}

/// Extra knobs for [`spawn_node_with`]. `Default` reproduces
/// [`spawn_node`]'s behavior exactly.
#[derive(Default)]
pub struct SpawnOptions {
    /// Observer invoked for every emitted action (under the node lock).
    pub observer: Option<Box<dyn RuntimeObserver>>,
    /// Restart from this control-plane snapshot instead of booting
    /// fresh: the recorder is restored, every remote stream is
    /// fast-forwarded to its snapshotted RECEIVED cell (§III-E state
    /// transfer), and the writers re-announce ACKs on their first
    /// connect so peers resynchronize immediately.
    pub snapshot: Option<Snapshot>,
    /// Seed for the reconnect backoff jitter (per-link streams are
    /// derived from it, so two nodes never share a retry schedule).
    pub jitter_seed: u64,
    /// Telemetry hub to feed: registers this node's transport counters
    /// and lets the ticker mirror the control-plane [`Metrics`]
    /// (`stabilizer_core::Metrics`) into gauges. Attach the hub's
    /// [`MetricsObserver`](stabilizer_telemetry::MetricsObserver) via
    /// [`SpawnOptions::observer`] (or an
    /// [`ObserverChain`](stabilizer_core::ObserverChain)) to also get
    /// latency histograms.
    pub telemetry: Option<Arc<Telemetry>>,
    /// Periodically write a Prometheus text snapshot of the attached
    /// telemetry (no-op without `telemetry`).
    pub metrics_dump: Option<MetricsDump>,
    /// Serve the attached telemetry over HTTP on this address (e.g.
    /// `127.0.0.1:9464`; port 0 picks an ephemeral port, readable back
    /// via [`NodeHandle::serve_addr`]). Routes: `/metrics` (Prometheus
    /// text with exemplars), `/metrics.json`, `/trace[?n=N]`, and
    /// `/stall` (live frontier blame from
    /// [`StabilizerNode::explain_all`]). No-op without `telemetry`.
    pub serve_addr: Option<String>,
}

/// Launch node `me` of `cfg`, listening on `listener` and connecting out
/// to `peer_addrs[j]` for every peer `j`.
///
/// # Errors
///
/// Fails if a configured predicate does not compile.
pub fn spawn_node(
    cfg: ClusterConfig,
    me: NodeId,
    acks: Arc<AckTypeRegistry>,
    listener: TcpListener,
    peer_addrs: Vec<(NodeId, SocketAddr)>,
) -> Result<TcpNode, CoreError> {
    spawn_node_with(cfg, me, acks, listener, peer_addrs, SpawnOptions::default())
}

/// [`spawn_node`] with chaos/recovery knobs: an action observer, a
/// restart-from-snapshot path, and a seeded reconnect jitter.
///
/// # Errors
///
/// Fails if a configured predicate does not compile (both the fresh and
/// the restore path recompile every predicate).
pub fn spawn_node_with(
    cfg: ClusterConfig,
    me: NodeId,
    acks: Arc<AckTypeRegistry>,
    listener: TcpListener,
    peer_addrs: Vec<(NodeId, SocketAddr)>,
    mut opts: SpawnOptions,
) -> Result<TcpNode, CoreError> {
    // Under partial replication a link only exists between nodes sharing
    // at least one stream; skip the writer thread (and the reconnect
    // spin) for everyone else. Full replication keeps every link.
    let peer_addrs: Vec<(NodeId, SocketAddr)> = peer_addrs
        .into_iter()
        .filter(|(peer, _)| cfg.placement().linked(me, *peer))
        .collect();
    let restored = opts.snapshot.is_some();
    let metrics_dump = opts.metrics_dump.take();
    let mut join_streams = 0;
    let node = match opts.snapshot {
        None => StabilizerNode::new(cfg.clone(), me, acks)?,
        Some(snapshot) => {
            let mut node = StabilizerNode::restore(cfg.clone(), me, acks, snapshot)?;
            // §III-E state transfer: the mirror resumes every remote
            // stream exactly where its durable acknowledgment left off.
            for (peer, _) in &peer_addrs {
                let high = node.recorder().get(*peer, me, RECEIVED);
                node.fast_forward_stream(*peer, high);
            }
            // Then ask every live donor for a snapshot + retained-log
            // replay, covering whatever was published past the durable
            // acknowledgment while this node was down (no-op unless
            // `transfer_millis` is configured).
            join_streams = node.begin_catch_up(0);
            node
        }
    };
    let metrics = opts
        .telemetry
        .as_ref()
        .map(|t| TransportMetrics::new(t, me));
    if let Some(t) = &opts.telemetry {
        t.record_placement(cfg.placement());
        // f* per key as the availability prover computed it at install
        // time; a key registered on several streams reports the weakest.
        let mut min_tol = std::collections::BTreeMap::new();
        for (_stream, key, tol) in node.predicate_tolerances() {
            let e = min_tol.entry(key.to_owned()).or_insert(tol);
            *e = (*e).min(tol);
        }
        for (key, tol) in min_tol {
            t.record_predicate_tolerance(&key, tol);
        }
    }
    let shared = Arc::new(Shared {
        me,
        node: Mutex::new(node),
        completed: Mutex::new(HashSet::new()),
        completed_cv: Condvar::new(),
        monitors: Mutex::new(HashMap::new()),
        deliver_fns: Mutex::new(Vec::new()),
        senders: Mutex::new(HashMap::new()),
        observers: Mutex::new(opts.observer.into_iter().collect()),
        connect_failed: Mutex::new(Vec::new()),
        running: AtomicBool::new(true),
        timer_scale_bits: AtomicU64::new(1.0f64.to_bits()),
        started: Instant::now(),
        telemetry: opts.telemetry,
        metrics,
        telemetry_server: Mutex::new(None),
    });
    if let (Some(addr), Some(telemetry)) = (opts.serve_addr.as_deref(), shared.telemetry.clone()) {
        // `/stall` locks the node and diagnoses every (stream, key)
        // frontier live. A weak ref keeps the provider from pinning the
        // runtime after shutdown takes the server down.
        let weak = Arc::downgrade(&shared);
        let stall: StallProvider = Arc::new(move || match weak.upgrade() {
            Some(shared) => {
                let node = shared.node.lock();
                stabilizer_core::render_stall_reports_json(&node.explain_all())
            }
            None => "{\"reports\":[]}".to_string(),
        });
        let routes = ServerRoutes::new(telemetry).with_stall(stall);
        let server = TelemetryServer::bind(addr, routes)
            .map_err(|e| CoreError::Config(format!("telemetry serve_addr {addr}: {e}")))?;
        *shared.telemetry_server.lock() = Some(server);
    }
    let retry_limit = cfg.options().connect_retry_limit;

    // Writer thread per peer.
    for (peer, addr) in &peer_addrs {
        let (tx, rx) = unbounded::<WireMsg>();
        shared.senders.lock().insert(*peer, tx);
        let shared2 = Arc::clone(&shared);
        let peer = *peer;
        let addr = *addr;
        let seed = link_seed(opts.jitter_seed, me.0, peer.0);
        std::thread::Builder::new()
            .name(format!("stab-{}-w{}", me.0, peer.0))
            .spawn(move || writer_loop(shared2, peer, addr, rx, restored, retry_limit, seed))
            .expect("spawn writer");
    }

    // Accept thread.
    {
        let shared2 = Arc::clone(&shared);
        listener.set_nonblocking(false).ok();
        std::thread::Builder::new()
            .name(format!("stab-{}-accept", me.0))
            .spawn(move || accept_loop(shared2, listener))
            .expect("spawn acceptor");
    }

    // Ticker thread.
    {
        let shared2 = Arc::clone(&shared);
        let opts = cfg.options().clone();
        std::thread::Builder::new()
            .name(format!("stab-{}-tick", me.0))
            .spawn(move || ticker_loop(shared2, opts, metrics_dump))
            .expect("spawn ticker");
    }

    // Flush actions queued during construction (a restore re-evaluates
    // every predicate, which can emit frontier updates) now that the
    // writer channels and observers are in place.
    shared.notify_join(join_streams);
    shared.with_node(|_| ());

    Ok(TcpNode {
        handle: NodeHandle { shared },
    })
}

/// Launch an in-process cluster on localhost (one runtime per topology
/// node), for tests and single-machine demos.
///
/// # Errors
///
/// Propagates listener-bind and predicate-compile failures.
pub fn spawn_local_cluster(cfg: &ClusterConfig) -> Result<Vec<TcpNode>, CoreError> {
    let n = cfg.num_nodes();
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| CoreError::Config(format!("bind: {e}")))?;
        addrs.push(
            l.local_addr()
                .map_err(|e| CoreError::Config(format!("addr: {e}")))?,
        );
        listeners.push(l);
    }
    let acks = Arc::new(AckTypeRegistry::new());
    let mut nodes = Vec::with_capacity(n);
    for (i, listener) in listeners.into_iter().enumerate() {
        let peer_addrs: Vec<(NodeId, SocketAddr)> = (0..n)
            .filter(|j| *j != i)
            .map(|j| (NodeId(j as u16), addrs[j]))
            .collect();
        nodes.push(spawn_node(
            cfg.clone(),
            NodeId(i as u16),
            Arc::clone(&acks),
            listener,
            peer_addrs,
        )?);
    }
    Ok(nodes)
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    listener.set_nonblocking(true).ok();
    while shared.running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).ok();
                let shared2 = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stab-{}-r", shared.me.0))
                    .spawn(move || reader_loop(shared2, stream))
                    .expect("spawn reader");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn reader_loop(shared: Arc<Shared>, stream: TcpStream) {
    let mut reader = std::io::BufReader::new(stream);
    // First frame must be the hello announcing the peer.
    let peer = match read_frame_counted(&mut reader) {
        Ok(Some((msg, _))) => match parse_hello(&msg) {
            Some(id) => NodeId(id),
            None => return, // protocol violation: drop connection
        },
        _ => return,
    };
    while shared.running.load(Ordering::SeqCst) {
        match read_frame_counted(&mut reader) {
            Ok(Some((msg, wire_len))) => {
                if let Some(m) = &shared.metrics {
                    m.frames_in.inc();
                    m.bytes_in.add(wire_len as u64);
                }
                let now = shared.now_nanos();
                shared.with_node(|n| n.on_message(now, peer, msg));
            }
            Ok(None) | Err(_) => return, // EOF or broken pipe
        }
    }
}

fn writer_loop(
    shared: Arc<Shared>,
    peer: NodeId,
    addr: SocketAddr,
    rx: Receiver<WireMsg>,
    mut repair_on_connect: bool,
    retry_limit: u64,
    jitter_seed: u64,
) {
    let mut backoff = Backoff::new(
        Duration::from_millis(10),
        Duration::from_millis(500),
        jitter_seed,
    );
    let mut connects = 0u64;
    'reconnect: while shared.running.load(Ordering::SeqCst) {
        let stream = match connect_with_retry(&shared, addr, &mut backoff, retry_limit) {
            ConnectOutcome::Connected(s) => s,
            ConnectOutcome::Shutdown => return,
            ConnectOutcome::GaveUp => {
                shared.connect_gave_up(peer);
                return;
            }
        };
        // Buffer writes so a frame's length prefix, header, and payload
        // coalesce into one syscall/segment; flushed whenever the
        // outbound queue is momentarily empty, so latency is bounded by
        // the batch, not a timer.
        let mut stream = std::io::BufWriter::with_capacity(64 * 1024, stream);
        backoff.reset();
        connects += 1;
        if connects > 1 {
            if let Some(m) = &shared.metrics {
                m.reconnects.inc();
            }
        }
        match write_frame(&mut stream, &hello(shared.me.0)).and_then(|n| stream.flush().map(|()| n))
        {
            Ok(wire_len) => {
                if let Some(m) = &shared.metrics {
                    m.frames_out.inc();
                    m.bytes_out.add(wire_len as u64);
                }
            }
            Err(_) => continue 'reconnect,
        }
        if repair_on_connect {
            // Repair the stream: resend unacked data and re-announce acks.
            // Fresh nodes skip this on their very first connect (nothing
            // to repair); restored nodes run it immediately so peers see
            // the recovered ACK state without waiting for new traffic.
            shared.with_node(|n| {
                let from = n.recorder().get(n.me(), peer, RECEIVED) + 1;
                n.resend_from(peer, from);
                n.announce_acks_to(peer);
            });
        }
        repair_on_connect = true;
        loop {
            match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(msg) => {
                    match write_frame(&mut stream, &msg) {
                        Ok(wire_len) => {
                            if let Some(m) = &shared.metrics {
                                m.frames_out.inc();
                                m.bytes_out.add(wire_len as u64);
                            }
                        }
                        Err(_) => continue 'reconnect,
                    }
                    if rx.is_empty() && stream.flush().is_err() {
                        continue 'reconnect;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if stream.flush().is_err() {
                        continue 'reconnect;
                    }
                    if !shared.running.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    let _ = stream.flush();
                    return;
                }
            }
        }
    }
}

enum ConnectOutcome {
    Connected(TcpStream),
    Shutdown,
    GaveUp,
}

/// Connect with capped exponential backoff and seeded jitter. Gives up
/// after `retry_limit` consecutive failures (`0` = never), so a
/// misconfigured or permanently dead peer surfaces as a
/// [`RuntimeObserver::on_connect_failed`] instead of a silent spin.
fn connect_with_retry(
    shared: &Arc<Shared>,
    addr: SocketAddr,
    backoff: &mut Backoff,
    retry_limit: u64,
) -> ConnectOutcome {
    while shared.running.load(Ordering::SeqCst) {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
            Ok(s) => {
                s.set_nodelay(true).ok();
                return ConnectOutcome::Connected(s);
            }
            Err(_) => {
                if retry_limit > 0 && backoff.attempts() + 1 >= retry_limit {
                    return ConnectOutcome::GaveUp;
                }
                let delay = backoff.next_delay();
                if let Some(m) = &shared.metrics {
                    m.connect_attempts.inc();
                    m.backoff_sleep_ns.add(delay.as_nanos() as u64);
                }
                std::thread::sleep(delay);
            }
        }
    }
    ConnectOutcome::Shutdown
}

fn ticker_loop(shared: Arc<Shared>, opts: stabilizer_core::Options, dump: Option<MetricsDump>) {
    let mut last_flush = Instant::now();
    let mut last_heartbeat = Instant::now();
    let mut last_failure = Instant::now();
    let mut last_retransmit = Instant::now();
    let mut last_transfer = Instant::now();
    let mut last_sample = Instant::now();
    let mut last_dump = Instant::now();
    let sample_every = Duration::from_millis(20);
    let tick = Duration::from_micros(if opts.ack_flush_micros > 0 {
        opts.ack_flush_micros.min(1000)
    } else {
        1000
    });
    while shared.running.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        let now = Instant::now();
        // Clock-skew fault injection: stretch (or shrink) every interval
        // by the current scale. Re-read each iteration so a mid-run
        // change takes effect within one tick.
        let scale = shared.timer_scale();
        let scaled = |d: Duration| -> Duration {
            if scale == 1.0 {
                d
            } else {
                Duration::from_nanos(((d.as_nanos() as f64 * scale) as u64).max(1))
            }
        };
        if opts.ack_flush_micros > 0
            && now.duration_since(last_flush)
                >= scaled(Duration::from_micros(opts.ack_flush_micros))
        {
            shared.with_node(|n| n.on_ack_flush());
            last_flush = now;
        }
        if opts.heartbeat_millis > 0
            && now.duration_since(last_heartbeat)
                >= scaled(Duration::from_millis(opts.heartbeat_millis))
        {
            shared.with_node(|n| n.on_heartbeat());
            last_heartbeat = now;
        }
        if opts.failure_timeout_millis > 0
            && now.duration_since(last_failure)
                >= scaled(Duration::from_millis(opts.failure_timeout_millis / 2))
        {
            let t = shared.now_nanos();
            shared.with_node(|n| n.on_failure_check(t));
            last_failure = now;
        }
        if opts.retransmit_millis > 0
            && now.duration_since(last_retransmit)
                >= scaled(Duration::from_millis((opts.retransmit_millis / 2).max(1)))
        {
            let t = shared.now_nanos();
            shared.with_node(|n| n.on_retransmit_check(t));
            last_retransmit = now;
        }
        if opts.transfer_millis > 0
            && now.duration_since(last_transfer)
                >= scaled(Duration::from_millis((opts.transfer_millis / 2).max(1)))
        {
            let t = shared.now_nanos();
            shared.with_node(|n| n.on_transfer_tick(t));
            last_transfer = now;
        }
        if let Some(telemetry) = &shared.telemetry {
            if now.duration_since(last_sample) >= sample_every {
                let (buf, waiters, core) = {
                    let node = shared.node.lock();
                    (
                        node.send_buffer_bytes(),
                        node.pending_waiters(),
                        node.metrics(),
                    )
                };
                if let Some(m) = &shared.metrics {
                    m.send_buffer_bytes.set(buf as i64);
                    m.pending_waiters.set(waiters as i64);
                }
                telemetry.record_node_metrics(shared.me, &core);
                last_sample = now;
            }
            if let Some(dump) = &dump {
                if now.duration_since(last_dump) >= dump.every {
                    let _ = std::fs::write(&dump.path, telemetry.render_prometheus());
                    last_dump = now;
                }
            }
        }
    }
}
