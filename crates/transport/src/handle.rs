//! The application-facing handle for a running Stabilizer node: the
//! paper's §III-D interfaces (`waitfor`, `monitor_stability_frontier`,
//! `register_predicate`, `change_predicate`) in blocking form.

use crate::runtime::Shared;
use bytes::Bytes;
use stabilizer_core::{
    AckTypeId, CoreError, FrontierUpdate, NodeId, RuntimeObserver, SeqNo, Snapshot, StabilizerNode,
    StallReport, WaitToken,
};
use std::ops::Deref;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Callback invoked on every frontier advance of a watched predicate.
pub type MonitorFn = Box<dyn FnMut(&FrontierUpdate) + Send>;
/// Callback invoked when a mirrored payload is delivered.
pub type DeliverFn = Box<dyn FnMut(NodeId, SeqNo, &Bytes) + Send>;

/// Handle to a node running on the threaded TCP runtime.
///
/// Cloning is cheap; all clones talk to the same node.
#[derive(Clone)]
pub struct NodeHandle {
    pub(crate) shared: Arc<Shared>,
}

impl NodeHandle {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.shared.me
    }

    /// Publish a payload on this node's stream.
    ///
    /// Retries transparently on send-buffer backpressure until
    /// `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`CoreError::WouldBlock`] if the buffer stayed full for the whole
    /// timeout, or [`CoreError::PayloadTooLarge`].
    pub fn publish(&self, payload: Bytes, timeout: Duration) -> Result<SeqNo, CoreError> {
        let deadline = Instant::now() + timeout;
        loop {
            let result = self.shared.with_node(|node| node.publish(payload.clone()));
            match result {
                Err(CoreError::WouldBlock { .. }) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                other => return other,
            }
        }
    }

    /// Register a predicate for `stream` under `key` (§III-D
    /// `register_predicate`).
    ///
    /// # Errors
    ///
    /// DSL compile errors.
    pub fn register_predicate(
        &self,
        stream: NodeId,
        key: &str,
        source: &str,
    ) -> Result<(), CoreError> {
        self.shared
            .with_node(|node| node.register_predicate(stream, key, source))
    }

    /// Replace a predicate at runtime (§III-D `change_predicate`).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownPredicate`] or DSL compile errors.
    pub fn change_predicate(
        &self,
        stream: NodeId,
        key: &str,
        source: &str,
    ) -> Result<(), CoreError> {
        self.shared
            .with_node(|node| node.change_predicate(stream, key, source))
    }

    /// Current `(frontier, generation)` of a predicate.
    pub fn stability_frontier(&self, stream: NodeId, key: &str) -> Option<(SeqNo, u32)> {
        self.shared.node.lock().stability_frontier(stream, key)
    }

    /// Block until the predicate's frontier reaches `seq` or `timeout`
    /// elapses; returns `true` on success (§III-D `waitfor`).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownPredicate`] for an unregistered key.
    pub fn waitfor(
        &self,
        stream: NodeId,
        key: &str,
        seq: SeqNo,
        timeout: Duration,
    ) -> Result<bool, CoreError> {
        let token = self
            .shared
            .with_node(|node| node.waitfor(stream, key, seq))?;
        let deadline = Instant::now() + timeout;
        let mut done = self.shared.completed.lock();
        loop {
            if done.remove(&token) {
                return Ok(true);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            self.shared.completed_cv.wait_for(&mut done, deadline - now);
        }
    }

    /// Register `lambda` to run on every frontier advance of
    /// `(stream, key)` (§III-D `monitor_stability_frontier`).
    pub fn monitor_stability_frontier(
        &self,
        stream: NodeId,
        key: &str,
        lambda: impl FnMut(&FrontierUpdate) + Send + 'static,
    ) {
        self.shared
            .monitors
            .lock()
            .entry((stream, key.to_owned()))
            .or_default()
            .push(Box::new(lambda));
    }

    /// Register a delivery upcall for mirrored data.
    pub fn on_deliver(&self, f: impl FnMut(NodeId, SeqNo, &Bytes) + Send + 'static) {
        self.shared.deliver_fns.lock().push(Box::new(f));
    }

    /// Register an application-defined stability level.
    pub fn register_ack_type(&self, name: &str) -> AckTypeId {
        self.shared.with_node(|node| node.register_ack_type(name))
    }

    /// Report application-level stability for a stream (e.g. `verified`).
    pub fn report_stability(&self, stream: NodeId, ty: AckTypeId, seq: SeqNo) {
        self.shared
            .with_node(|node| node.report_stability(stream, ty, seq));
    }

    /// Highest sequence number published locally.
    pub fn last_published(&self) -> SeqNo {
        self.shared.node.lock().last_published()
    }

    /// Whether the failure detector currently suspects `node`.
    pub fn is_suspected(&self, node: NodeId) -> bool {
        self.shared.node.lock().is_suspected(node)
    }

    /// Ask every peer for a §III-E snapshot + retained-log replay. The
    /// restore path does this automatically; call it manually to force a
    /// re-sync (no-op when `transfer_millis` is 0).
    pub fn begin_catch_up(&self) {
        let now = self.shared.now_nanos();
        let streams = self.shared.with_node(|node| node.begin_catch_up(now));
        self.shared.notify_join(streams);
    }

    /// Number of in-flight state-transfer sessions (inbound + outbound).
    pub fn active_transfers(&self) -> usize {
        self.shared.node.lock().active_transfers()
    }

    /// Diagnose why `key`'s frontier on `stream` sits where it does
    /// (`None` if no such predicate is installed).
    pub fn explain_frontier(&self, stream: NodeId, key: &str) -> Option<StallReport> {
        self.shared.node.lock().explain_frontier(stream, key)
    }

    /// Diagnose every installed `(stream, key)` frontier.
    pub fn explain_all(&self) -> Vec<StallReport> {
        self.shared.node.lock().explain_all()
    }

    /// Bound address of the live telemetry endpoint, when spawned with
    /// [`SpawnOptions::serve_addr`](crate::SpawnOptions::serve_addr)
    /// (resolves port 0 to the actual port).
    pub fn serve_addr(&self) -> Option<std::net::SocketAddr> {
        self.shared
            .telemetry_server
            .lock()
            .as_ref()
            .map(|s| s.local_addr())
    }

    /// Current traffic counters.
    pub fn metrics(&self) -> stabilizer_core::Metrics {
        self.shared.node.lock().metrics()
    }

    /// Highest in-order sequence this node has received of `stream`
    /// (its own `received` counter).
    pub fn received_of(&self, stream: NodeId) -> SeqNo {
        let node = self.shared.node.lock();
        let me = node.me();
        node.recorder().get(stream, me, stabilizer_core::RECEIVED)
    }

    /// Highest in-order sequence this node has *delivered* of `stream`.
    pub fn delivered_of(&self, stream: NodeId) -> SeqNo {
        let node = self.shared.node.lock();
        let me = node.me();
        node.recorder().get(stream, me, stabilizer_core::DELIVERED)
    }

    /// Attach a [`RuntimeObserver`]; it sees every action emitted from
    /// this point on, invoked under the state-machine lock.
    pub fn attach_observer(&self, obs: Box<dyn RuntimeObserver>) {
        self.shared.observers.lock().push(obs);
    }

    /// Lock the state machine for read access. While the guard lives the
    /// runtime threads are paused at the lock, so the view is a
    /// consistent cut — and any attached observer's log is at least as
    /// fresh as it (observers run under this same lock).
    ///
    /// Hold the guard briefly: every runtime thread of this node blocks
    /// on it.
    pub fn lock_state(&self) -> StateGuard<'_> {
        StateGuard(self.shared.node.lock())
    }

    /// Control-plane snapshot (§III-E) for restart-from-snapshot via
    /// [`SpawnOptions`](crate::runtime::SpawnOptions).
    pub fn snapshot(&self) -> Snapshot {
        self.shared.node.lock().snapshot()
    }

    /// Non-blocking `waitfor`: registers the wait and returns its token;
    /// completion shows up in [`RuntimeObserver::on_wait_done`] and in
    /// [`NodeHandle::wait_is_done`].
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownPredicate`] for an unregistered key.
    pub fn begin_waitfor(
        &self,
        stream: NodeId,
        key: &str,
        seq: SeqNo,
    ) -> Result<WaitToken, CoreError> {
        self.shared.with_node(|node| node.waitfor(stream, key, seq))
    }

    /// Whether a wait registered with [`NodeHandle::begin_waitfor`] has
    /// completed (consumes the completion).
    pub fn wait_is_done(&self, token: WaitToken) -> bool {
        self.shared.completed.lock().remove(&token)
    }

    /// Peers a writer thread permanently gave up connecting to (empty
    /// unless `connect_retry_limit` is configured).
    pub fn connect_failures(&self) -> Vec<NodeId> {
        self.shared.connect_failed.lock().clone()
    }

    /// Scale this node's timer cadence (clock-skew fault injection):
    /// every ticker interval — ACK flush, heartbeat, failure detector,
    /// retransmit, transfer pacing — runs at `scale ×` its configured
    /// length. 1.0 restores nominal.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn set_timer_scale(&self, scale: f64) {
        self.shared.set_timer_scale(scale);
    }

    /// The current timer-interval multiplier (1.0 = nominal).
    pub fn timer_scale(&self) -> f64 {
        self.shared.timer_scale()
    }

    /// Inject a wire message as if it had arrived from `from` — the
    /// chaos harness's seam for forging protocol traffic (mutation
    /// checks that prove the invariant checker catches corrupted state).
    #[doc(hidden)]
    pub fn inject_message(&self, from: NodeId, msg: stabilizer_core::WireMsg) {
        let now = self.shared.now_nanos();
        self.shared
            .with_node(|node| node.on_message(now, from, msg));
    }

    /// Ask the runtime to stop its threads. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown();
    }
}

/// Read guard over the state machine returned by
/// [`NodeHandle::lock_state`]; dereferences to [`StabilizerNode`].
pub struct StateGuard<'a>(parking_lot::MutexGuard<'a, StabilizerNode>);

impl Deref for StateGuard<'_> {
    type Target = StabilizerNode;

    fn deref(&self) -> &StabilizerNode {
        &self.0
    }
}

impl std::ops::DerefMut for StateGuard<'_> {
    fn deref_mut(&mut self) -> &mut StabilizerNode {
        &mut self.0
    }
}

impl std::fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeHandle")
            .field("me", &self.shared.me)
            .finish()
    }
}
