//! The `replicate` config directive: span-carrying parser and
//! pretty-printer.
//!
//! Grammar (one directive per line, whitespace-separated):
//!
//! ```text
//! replicate <stream> [node ...]
//! ```
//!
//! `<stream>` is the name of the origin node whose stream is being placed;
//! the node list is its replica set. Every token carries a byte-offset
//! [`Span`] into the directive line so config-level diagnostics can point
//! at the offending name, mirroring the predicate DSL's caret rendering.

use crate::PlaceError;
use stabilizer_dsl::Span;
use std::fmt;

/// A name token with its byte span in the directive line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedName {
    /// The bare name as written.
    pub name: String,
    /// Byte range of the name within the directive line.
    pub span: Span,
}

/// One parsed `replicate` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicateDirective {
    /// The stream (origin node) being placed.
    pub stream: SpannedName,
    /// The declared replica set, in written order (may repeat; the
    /// placement map dedups).
    pub nodes: Vec<SpannedName>,
    /// Span of the whole directive (keyword through last name).
    pub span: Span,
}

impl ReplicateDirective {
    /// Construct a directive programmatically (spans are zero-width).
    pub fn new(stream: &str, nodes: &[&str]) -> Self {
        ReplicateDirective {
            stream: SpannedName {
                name: stream.to_owned(),
                span: Span::default(),
            },
            nodes: nodes
                .iter()
                .map(|n| SpannedName {
                    name: (*n).to_owned(),
                    span: Span::default(),
                })
                .collect(),
            span: Span::default(),
        }
    }
}

impl fmt::Display for ReplicateDirective {
    /// Canonical rendering: `replicate <stream> <node> ...`. Parsing the
    /// rendering reproduces the directive (modulo spans).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "replicate {}", self.stream.name)?;
        for n in &self.nodes {
            write!(f, " {}", n.name)?;
        }
        Ok(())
    }
}

/// Parse one `replicate` directive line.
///
/// # Errors
///
/// Returns [`PlaceError::Syntax`] if the line does not start with the
/// `replicate` keyword or names no stream. (Name resolution — unknown
/// stream/node, empty set — happens later against the topology, where
/// the error can be precise.)
pub fn parse_replicate(line: &str) -> Result<ReplicateDirective, PlaceError> {
    let syntax = |msg: &str| PlaceError::Syntax {
        line: line.trim().to_owned(),
        msg: msg.to_owned(),
    };
    let mut tokens = tokenize(line);
    let Some(kw) = tokens.next() else {
        return Err(syntax("empty directive"));
    };
    if kw.name != "replicate" {
        return Err(syntax("expected 'replicate' keyword"));
    }
    let stream = tokens.next().ok_or_else(|| syntax("missing stream name"))?;
    let nodes: Vec<SpannedName> = tokens.collect();
    let end = nodes.last().map_or(stream.span.end, |n| n.span.end);
    Ok(ReplicateDirective {
        span: Span::new(kw.span.start, end),
        stream,
        nodes,
    })
}

/// Split a line into whitespace-separated name tokens with byte spans.
fn tokenize(line: &str) -> impl Iterator<Item = SpannedName> + '_ {
    line.split_whitespace().map(move |word| {
        // `split_whitespace` yields subslices of `line`, so pointer
        // arithmetic recovers the byte offset.
        let start = word.as_ptr() as usize - line.as_ptr() as usize;
        SpannedName {
            name: word.to_owned(),
            span: Span::new(start, start + word.len()),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_spans() {
        let d = parse_replicate("replicate  e1 e2  w1").unwrap();
        assert_eq!(d.stream.name, "e1");
        assert_eq!(d.stream.span, Span::new(11, 13));
        assert_eq!(d.nodes.len(), 2);
        assert_eq!(d.nodes[1].name, "w1");
        assert_eq!(d.nodes[1].span, Span::new(18, 20));
        assert_eq!(d.span, Span::new(0, 20));
    }

    #[test]
    fn rejects_wrong_keyword_and_missing_stream() {
        assert!(matches!(
            parse_replicate("replica e1 e2"),
            Err(PlaceError::Syntax { .. })
        ));
        assert!(matches!(
            parse_replicate("replicate"),
            Err(PlaceError::Syntax { .. })
        ));
        assert!(matches!(
            parse_replicate("   "),
            Err(PlaceError::Syntax { .. })
        ));
    }

    #[test]
    fn display_roundtrips() {
        let d = parse_replicate("replicate   e1   e1 e2 w1").unwrap();
        assert_eq!(d.to_string(), "replicate e1 e1 e2 w1");
        let d2 = parse_replicate(&d.to_string()).unwrap();
        assert_eq!(d2.stream.name, d.stream.name);
        assert_eq!(
            d2.nodes.iter().map(|n| &n.name).collect::<Vec<_>>(),
            d.nodes.iter().map(|n| &n.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bare_stream_parses_but_has_no_nodes() {
        // Validation of the empty set happens at map-build time.
        let d = parse_replicate("replicate e1").unwrap();
        assert!(d.nodes.is_empty());
    }
}
