//! # Partial-replication placement
//!
//! Every node in the seed system replicates every stream, so aggregate
//! cluster capacity is flat in node count. Following the partial-replication
//! line of work (Xiang & Vaidya's causally consistent partial replication,
//! Okapi), this crate lets a deployment declare **per-stream replica sets**:
//! a `replicate <stream> [nodes...]` directive in the cluster config names
//! the nodes that store, acknowledge, and stabilize a stream. Nodes outside
//! the set never receive the stream's data, never emit ACKs for it, and are
//! never consulted by its stability-frontier predicates.
//!
//! The central type is [`PlacementMap`]: the validated, immutable resolution
//! of stream → replica set for one cluster. The default ([`PlacementMap::full`])
//! replicates everything everywhere, which preserves the seed semantics
//! byte-for-byte — a `replicate`-free config builds a full placement whose
//! behavior (and replay hash) is identical to before this subsystem existed.
//!
//! Determinism: the map exposes [`PlacementMap::placement_hash`], an FNV-1a
//! hash over the canonical rendering, so replays and cross-process runs can
//! pin that they executed under the same placement.

pub mod directive;

pub use directive::{parse_replicate, ReplicateDirective, SpannedName};

use stabilizer_dsl::{NodeId, Topology};
use std::fmt;

/// A placement validation error, produced while resolving `replicate`
/// directives against a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The directive names a stream (origin node) not in the topology.
    UnknownStream(String),
    /// A replica list entry is not a node in the topology.
    UnknownNode { stream: String, node: String },
    /// The stream's origin node is missing from its own replica set.
    OriginExcluded { stream: String },
    /// The directive lists no replicas at all.
    EmptySet { stream: String },
    /// Two directives target the same stream.
    DuplicateStream { stream: String },
    /// A directive line failed to parse (bad syntax).
    Syntax { line: String, msg: String },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::UnknownStream(s) => {
                write!(
                    f,
                    "replicate: unknown stream '{s}' (streams are named after their origin node)"
                )
            }
            PlaceError::UnknownNode { stream, node } => {
                write!(f, "replicate {stream}: unknown node '{node}'")
            }
            PlaceError::OriginExcluded { stream } => {
                write!(
                    f,
                    "replicate {stream}: origin node '{stream}' must be in its own replica set"
                )
            }
            PlaceError::EmptySet { stream } => {
                write!(f, "replicate {stream}: replica set is empty")
            }
            PlaceError::DuplicateStream { stream } => {
                write!(f, "replicate {stream}: stream already has a replica set")
            }
            PlaceError::Syntax { line, msg } => {
                write!(f, "replicate directive '{line}': {msg}")
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// The validated stream → replica-set resolution for one cluster.
///
/// Streams are identified with their origin node (the Stabilizer model:
/// one totally ordered stream per node), so a map over `n` nodes holds
/// `n` replica sets. Each set is sorted and always contains the origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementMap {
    /// `replicas[stream.0]` is the sorted replica set of that stream.
    replicas: Vec<Vec<NodeId>>,
    /// True when every stream is replicated on every node (the default).
    full: bool,
}

impl PlacementMap {
    /// Full replication over `n` nodes: every stream on every node.
    /// This is the seed semantics and the default when a config carries
    /// no `replicate` directives.
    pub fn full(n: usize) -> Self {
        let everyone: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
        PlacementMap {
            replicas: vec![everyone; n],
            full: true,
        }
    }

    /// Resolve `replicate` directives against `topo`. Streams without a
    /// directive default to full replication; directives are validated for
    /// unknown stream/node names, an origin missing from its own set, an
    /// empty set, and duplicate directives.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlaceError`] encountered, in directive order.
    pub fn from_directives(
        topo: &Topology,
        directives: &[ReplicateDirective],
    ) -> Result<Self, PlaceError> {
        let n = topo.num_nodes();
        let everyone: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
        let mut replicas: Vec<Option<Vec<NodeId>>> = vec![None; n];
        for d in directives {
            let stream = topo
                .node(&d.stream.name)
                .ok_or_else(|| PlaceError::UnknownStream(d.stream.name.clone()))?;
            if replicas[stream.0 as usize].is_some() {
                return Err(PlaceError::DuplicateStream {
                    stream: d.stream.name.clone(),
                });
            }
            if d.nodes.is_empty() {
                return Err(PlaceError::EmptySet {
                    stream: d.stream.name.clone(),
                });
            }
            let mut set = Vec::with_capacity(d.nodes.len());
            for member in &d.nodes {
                let id = topo
                    .node(&member.name)
                    .ok_or_else(|| PlaceError::UnknownNode {
                        stream: d.stream.name.clone(),
                        node: member.name.clone(),
                    })?;
                if !set.contains(&id) {
                    set.push(id);
                }
            }
            if !set.contains(&stream) {
                return Err(PlaceError::OriginExcluded {
                    stream: d.stream.name.clone(),
                });
            }
            set.sort_unstable();
            replicas[stream.0 as usize] = Some(set);
        }
        let replicas: Vec<Vec<NodeId>> = replicas
            .into_iter()
            .map(|r| r.unwrap_or_else(|| everyone.clone()))
            .collect();
        let full = replicas.iter().all(|r| r.len() == n);
        Ok(PlacementMap { replicas, full })
    }

    /// Build directly from resolved `(stream, replica-set)` pairs; unlisted
    /// streams default to full replication. Used by generators and tests
    /// that already work in `NodeId` space.
    ///
    /// # Errors
    ///
    /// Same validation as [`PlacementMap::from_directives`], with node
    /// indices rendered as `$<id>` names in the errors.
    pub fn from_sets(n: usize, sets: &[(NodeId, Vec<NodeId>)]) -> Result<Self, PlaceError> {
        let everyone: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
        let mut replicas: Vec<Option<Vec<NodeId>>> = vec![None; n];
        for (stream, set) in sets {
            let name = format!("${}", stream.0);
            if (stream.0 as usize) >= n {
                return Err(PlaceError::UnknownStream(name));
            }
            if replicas[stream.0 as usize].is_some() {
                return Err(PlaceError::DuplicateStream { stream: name });
            }
            if set.is_empty() {
                return Err(PlaceError::EmptySet { stream: name });
            }
            let mut sorted: Vec<NodeId> = Vec::with_capacity(set.len());
            for &member in set {
                if (member.0 as usize) >= n {
                    return Err(PlaceError::UnknownNode {
                        stream: name,
                        node: format!("${}", member.0),
                    });
                }
                if !sorted.contains(&member) {
                    sorted.push(member);
                }
            }
            if !sorted.contains(stream) {
                return Err(PlaceError::OriginExcluded { stream: name });
            }
            sorted.sort_unstable();
            replicas[stream.0 as usize] = Some(sorted);
        }
        let replicas: Vec<Vec<NodeId>> = replicas
            .into_iter()
            .map(|r| r.unwrap_or_else(|| everyone.clone()))
            .collect();
        let full = replicas.iter().all(|r| r.len() == n);
        Ok(PlacementMap { replicas, full })
    }

    /// Number of nodes (== number of streams) this map covers.
    pub fn num_nodes(&self) -> usize {
        self.replicas.len()
    }

    /// The sorted replica set of `stream`. Always contains the origin.
    pub fn replicas(&self, stream: NodeId) -> &[NodeId] {
        &self.replicas[stream.0 as usize]
    }

    /// True if `node` stores (and acknowledges) `stream`.
    pub fn is_replica(&self, stream: NodeId, node: NodeId) -> bool {
        self.full
            || self.replicas[stream.0 as usize]
                .binary_search(&node)
                .is_ok()
    }

    /// The replicas of `stream` other than `me` — the data fan-out targets
    /// when `me` publishes on its own stream.
    pub fn replica_peers(&self, stream: NodeId, me: NodeId) -> Vec<NodeId> {
        self.replicas[stream.0 as usize]
            .iter()
            .copied()
            .filter(|&r| r != me)
            .collect()
    }

    /// The streams replicated at `node` (always includes `node`'s own).
    pub fn streams_at(&self, node: NodeId) -> Vec<NodeId> {
        (0..self.replicas.len() as u16)
            .map(NodeId)
            .filter(|&s| self.is_replica(s, node))
            .collect()
    }

    /// True if `a` and `b` share at least one stream — i.e. a transport
    /// link between them carries data or ACK traffic. Runtimes keep
    /// heartbeat links everywhere but may skip data links between
    /// unlinked pairs.
    pub fn linked(&self, a: NodeId, b: NodeId) -> bool {
        if self.full || a == b {
            return true;
        }
        (0..self.replicas.len() as u16)
            .map(NodeId)
            .any(|s| self.is_replica(s, a) && self.is_replica(s, b))
    }

    /// True when every stream is replicated on every node — the seed
    /// semantics. Fast paths key off this to stay byte-identical for
    /// `replicate`-free configs.
    pub fn is_full_replication(&self) -> bool {
        self.full
    }

    /// Deterministic FNV-1a hash of the canonical rendering. Two processes
    /// (or a run and its replay) executing under the same placement agree
    /// on this value; a full-replication map over `n` nodes always hashes
    /// the same regardless of how it was constructed.
    pub fn placement_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(&(self.replicas.len() as u64).to_le_bytes());
        if !self.full {
            for set in &self.replicas {
                eat(&(set.len() as u64).to_le_bytes());
                for r in set {
                    eat(&r.0.to_le_bytes());
                }
            }
        }
        h
    }

    /// Pretty-print the non-default placement as `replicate` directive
    /// lines using `topo` names (empty string under full replication).
    /// Feeding the rendering back through the directive parser and
    /// [`PlacementMap::from_directives`] reproduces the map.
    pub fn render(&self, topo: &Topology) -> String {
        if self.full {
            return String::new();
        }
        let n = self.replicas.len();
        let mut out = String::new();
        for (i, set) in self.replicas.iter().enumerate() {
            if set.len() == n {
                continue; // stream at its default; nothing to declare
            }
            out.push_str("replicate ");
            out.push_str(topo.node_name(NodeId(i as u16)));
            for r in set {
                out.push(' ');
                out.push_str(topo.node_name(*r));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo6() -> Topology {
        Topology::builder()
            .az("East", &["e1", "e2", "e3"])
            .az("West", &["w1", "w2", "w3"])
            .build()
            .unwrap()
    }

    fn parse_lines(lines: &[&str]) -> Vec<ReplicateDirective> {
        lines.iter().map(|l| parse_replicate(l).unwrap()).collect()
    }

    #[test]
    fn full_map_replicates_everywhere() {
        let p = PlacementMap::full(4);
        assert!(p.is_full_replication());
        for s in 0..4u16 {
            assert_eq!(p.replicas(NodeId(s)).len(), 4);
            for n in 0..4u16 {
                assert!(p.is_replica(NodeId(s), NodeId(n)));
                assert!(p.linked(NodeId(s), NodeId(n)));
            }
        }
    }

    #[test]
    fn directives_restrict_only_named_streams() {
        let t = topo6();
        let d = parse_lines(&["replicate e1 e1 e2 w1"]);
        let p = PlacementMap::from_directives(&t, &d).unwrap();
        assert!(!p.is_full_replication());
        let e1 = t.node("e1").unwrap();
        let w3 = t.node("w3").unwrap();
        assert_eq!(p.replicas(e1).len(), 3);
        assert!(!p.is_replica(e1, w3));
        // Unnamed streams keep full replication.
        assert_eq!(p.replicas(w3).len(), 6);
        assert!(p.is_replica(w3, e1));
    }

    #[test]
    fn replica_peers_excludes_me() {
        let t = topo6();
        let d = parse_lines(&["replicate e1 e1 e2 w1"]);
        let p = PlacementMap::from_directives(&t, &d).unwrap();
        let e1 = t.node("e1").unwrap();
        let peers = p.replica_peers(e1, e1);
        assert_eq!(peers, vec![t.node("e2").unwrap(), t.node("w1").unwrap()]);
    }

    #[test]
    fn unknown_stream_and_node_are_rejected() {
        let t = topo6();
        let d = parse_lines(&["replicate mars e1"]);
        assert_eq!(
            PlacementMap::from_directives(&t, &d),
            Err(PlaceError::UnknownStream("mars".into()))
        );
        let d = parse_lines(&["replicate e1 e1 mars"]);
        assert!(matches!(
            PlacementMap::from_directives(&t, &d),
            Err(PlaceError::UnknownNode { .. })
        ));
    }

    #[test]
    fn origin_must_be_in_its_own_set() {
        let t = topo6();
        let d = parse_lines(&["replicate e1 e2 w1"]);
        assert_eq!(
            PlacementMap::from_directives(&t, &d),
            Err(PlaceError::OriginExcluded {
                stream: "e1".into()
            })
        );
    }

    #[test]
    fn empty_and_duplicate_sets_are_rejected() {
        let t = topo6();
        let d = parse_lines(&["replicate e1"]);
        assert_eq!(
            PlacementMap::from_directives(&t, &d),
            Err(PlaceError::EmptySet {
                stream: "e1".into()
            })
        );
        let d = parse_lines(&["replicate e1 e1 e2", "replicate e1 e1 w1"]);
        assert_eq!(
            PlacementMap::from_directives(&t, &d),
            Err(PlaceError::DuplicateStream {
                stream: "e1".into()
            })
        );
    }

    #[test]
    fn explicit_full_set_equals_default_hash() {
        // A directive listing every node is semantically full replication:
        // same hash as the replicate-free default, so replays line up.
        let t = topo6();
        let d = parse_lines(&["replicate e1 e1 e2 e3 w1 w2 w3"]);
        let p = PlacementMap::from_directives(&t, &d).unwrap();
        assert!(p.is_full_replication());
        assert_eq!(p.placement_hash(), PlacementMap::full(6).placement_hash());
    }

    #[test]
    fn hash_distinguishes_placements() {
        let t = topo6();
        let a =
            PlacementMap::from_directives(&t, &parse_lines(&["replicate e1 e1 e2 w1"])).unwrap();
        let b =
            PlacementMap::from_directives(&t, &parse_lines(&["replicate e1 e1 e2 w2"])).unwrap();
        assert_ne!(a.placement_hash(), b.placement_hash());
        assert_ne!(a.placement_hash(), PlacementMap::full(6).placement_hash());
    }

    #[test]
    fn render_roundtrips() {
        let t = topo6();
        let d = parse_lines(&["replicate e1 e1 e2 w1", "replicate w2 w2 w3"]);
        let p = PlacementMap::from_directives(&t, &d).unwrap();
        let rendered = p.render(&t);
        let reparsed: Vec<ReplicateDirective> = rendered
            .lines()
            .map(|l| parse_replicate(l).unwrap())
            .collect();
        let p2 = PlacementMap::from_directives(&t, &reparsed).unwrap();
        assert_eq!(p, p2);
        assert_eq!(p.placement_hash(), p2.placement_hash());
        assert_eq!(PlacementMap::full(6).render(&t), "");
    }

    #[test]
    fn linked_requires_a_shared_stream() {
        // Disjoint 3-replica rings over 6 nodes: {0,1,2} and {3,4,5}.
        let sets: Vec<(NodeId, Vec<NodeId>)> = (0..6u16)
            .map(|i| {
                let base = if i < 3 { 0u16 } else { 3 };
                (NodeId(i), (base..base + 3).map(NodeId).collect())
            })
            .collect();
        let p = PlacementMap::from_sets(6, &sets).unwrap();
        assert!(p.linked(NodeId(0), NodeId(2)));
        assert!(p.linked(NodeId(3), NodeId(5)));
        assert!(!p.linked(NodeId(0), NodeId(3)));
        assert_eq!(
            p.streams_at(NodeId(0)),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn from_sets_validates_like_directives() {
        assert!(matches!(
            PlacementMap::from_sets(4, &[(NodeId(1), vec![NodeId(0)])]),
            Err(PlaceError::OriginExcluded { .. })
        ));
        assert!(matches!(
            PlacementMap::from_sets(4, &[(NodeId(9), vec![NodeId(9)])]),
            Err(PlaceError::UnknownStream(_))
        ));
        assert!(matches!(
            PlacementMap::from_sets(4, &[(NodeId(1), vec![NodeId(1), NodeId(7)])]),
            Err(PlaceError::UnknownNode { .. })
        ));
    }
}
